"""Device placement tags.

The functional layer runs entirely in host memory, but every tensor carries a
:class:`Device` tag identifying where it *logically* lives — GPU HBM, CPU
DRAM, or NVMe.  The ZeRO-Infinity engine moves tensors between these tiers
exactly like the real system; capacity accounting and the performance
simulator interpret the tags against hardware models.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache


class DeviceKind(str, Enum):
    """The three memory tiers ZeRO-Infinity spans (paper Sec. 5.1)."""

    GPU = "gpu"
    CPU = "cpu"
    NVME = "nvme"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True, slots=True)
class Device:
    """A memory tier plus an index (GPU rank or NVMe drive id).

    CPU memory is shared per node so its index is always 0.
    """

    kind: DeviceKind
    index: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"device index must be >= 0, got {self.index}")
        if self.kind is DeviceKind.CPU and self.index != 0:
            raise ValueError("CPU device is singular per node; index must be 0")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def is_cpu(self) -> bool:
        return self.kind is DeviceKind.CPU

    @property
    def is_nvme(self) -> bool:
        return self.kind is DeviceKind.NVME

    def __str__(self) -> str:
        if self.kind is DeviceKind.CPU:
            return "cpu"
        return f"{self.kind.value}:{self.index}"

    @staticmethod
    def parse(text: str) -> "Device":
        """Parse ``"gpu:3"``, ``"cpu"`` or ``"nvme:0"``."""
        kind, _, idx = text.partition(":")
        try:
            k = DeviceKind(kind)
        except ValueError as e:
            raise ValueError(f"unknown device kind in {text!r}") from e
        return Device(k, int(idx) if idx else 0)


CPU = Device(DeviceKind.CPU)
GPU0 = Device(DeviceKind.GPU, 0)


@lru_cache(maxsize=None)
def gpu(index: int) -> Device:
    """The GPU device with the given rank-local index."""
    return Device(DeviceKind.GPU, index)


@lru_cache(maxsize=None)
def nvme(index: int = 0) -> Device:
    """The NVMe device with the given drive index."""
    return Device(DeviceKind.NVME, index)
