"""Numeric dtype descriptors for mixed-precision training.

The paper's recipe (Sec. 2, Sec. 3) stores parameters and gradients in FP16
and optimizer state (momentum, variance, master parameters, master gradients)
in FP32 — 20 bytes per parameter in total.  These descriptors tie a numpy
dtype to its byte accounting so memory models and the functional engine agree
on sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class DType:
    """A named numeric type with its numpy realisation and itemsize."""

    name: str
    np_dtype: np.dtype
    itemsize: int

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.name

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.np_dtype)

    def empty(self, shape) -> np.ndarray:
        return np.empty(shape, dtype=self.np_dtype)

    def cast(self, array: np.ndarray) -> np.ndarray:
        """Cast with copy only when necessary."""
        return np.asarray(array, dtype=self.np_dtype)


FP16 = DType("fp16", np.dtype(np.float16), 2)
FP32 = DType("fp32", np.dtype(np.float32), 4)
FP64 = DType("fp64", np.dtype(np.float64), 8)

_BY_NP = {d.np_dtype: d for d in (FP16, FP32, FP64)}
_BY_NAME = {d.name: d for d in (FP16, FP32, FP64)}


def dtype_of(obj) -> DType:
    """Resolve a :class:`DType` from a name, numpy dtype, or array.

    >>> dtype_of("fp16").itemsize
    2
    >>> dtype_of(np.zeros(3, dtype=np.float32)).name
    'fp32'
    """
    if isinstance(obj, DType):
        return obj
    if isinstance(obj, str):
        try:
            return _BY_NAME[obj]
        except KeyError as e:
            raise ValueError(f"unknown dtype name {obj!r}") from e
    if isinstance(obj, np.ndarray):
        obj = obj.dtype
    npd = np.dtype(obj)
    try:
        return _BY_NP[npd]
    except KeyError as e:
        raise ValueError(f"unsupported numpy dtype {npd}") from e


# Byte costs per parameter under the paper's mixed-precision Adam recipe
# (Sec. 3 "each parameter requires 20 bytes of memory"):
#   fp16 parameter (2) + fp16 gradient (2)
#   + fp32 momentum (4) + fp32 variance (4) + fp32 master param (4)
#   + fp32 master gradient (4)
BYTES_PER_PARAM_FP16 = FP16.itemsize
BYTES_PER_GRAD_FP16 = FP16.itemsize
BYTES_PER_PARAM_OPTIMIZER = 4 * FP32.itemsize
BYTES_PER_PARAM_TOTAL = (
    BYTES_PER_PARAM_FP16 + BYTES_PER_GRAD_FP16 + BYTES_PER_PARAM_OPTIMIZER
)
assert BYTES_PER_PARAM_TOTAL == 20
