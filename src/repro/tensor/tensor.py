"""``DeviceTensor``: a numpy array tagged with a logical device.

This is the unit of data the offload engine moves between memory tiers.  It
intentionally does *not* implement arithmetic — compute happens on raw numpy
arrays inside :mod:`repro.nn.functional`; ``DeviceTensor`` exists to carry
placement, enforce move semantics, and centralise byte accounting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.device import CPU, Device
from repro.tensor.dtypes import DType, dtype_of


class DeviceTensor:
    """A contiguous numpy buffer with a device tag and a stable identity.

    Moves (:meth:`to`) mutate the tag in place and, when a
    :class:`~repro.hardware.memory.MemoryLedger` is attached, update the
    per-device byte accounting — mirroring how a real runtime's allocator
    sees cudaMemcpy + free.
    """

    __slots__ = ("_data", "_device", "_dtype", "name", "_ledger")

    def __init__(
        self,
        data: np.ndarray,
        device: Device = CPU,
        *,
        name: str = "",
        ledger=None,
    ) -> None:
        arr = np.ascontiguousarray(data)
        self._data = arr
        self._device = device
        self._dtype = dtype_of(arr)
        self.name = name
        self._ledger = ledger
        if ledger is not None:
            ledger.allocate(device, self.nbytes)

    # --- introspection -----------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        value = np.ascontiguousarray(value)
        if self._ledger is not None:
            self._ledger.free(self._device, self.nbytes)
            self._ledger.allocate(self._device, value.nbytes)
        self._data = value
        self._dtype = dtype_of(value)

    @property
    def device(self) -> Device:
        return self._device

    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def numel(self) -> int:
        return int(self._data.size)

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DeviceTensor({label} shape={self.shape}, dtype={self._dtype},"
            f" device={self._device})"
        )

    # --- movement ------------------------------------------------------------
    def to(self, device: Device) -> "DeviceTensor":
        """Move this tensor to ``device`` (in place; returns self).

        A same-device move is a no-op, matching ``torch.Tensor.to``.
        """
        if device == self._device:
            return self
        if self._ledger is not None:
            self._ledger.free(self._device, self.nbytes)
            self._ledger.allocate(device, self.nbytes)
        self._device = device
        return self

    def astype(self, dtype: DType | str) -> "DeviceTensor":
        """Return a new tensor cast to ``dtype`` on the same device."""
        d = dtype_of(dtype)
        return DeviceTensor(
            self._data.astype(d.np_dtype), self._device, name=self.name
        )

    def copy(self, *, name: Optional[str] = None) -> "DeviceTensor":
        return DeviceTensor(
            self._data.copy(), self._device, name=self.name if name is None else name
        )

    def fill_(self, value: float) -> "DeviceTensor":
        self._data.fill(value)
        return self

    def copy_from(self, other: "DeviceTensor | np.ndarray") -> "DeviceTensor":
        """In-place elementwise copy (shapes must match); dtype converts."""
        src = other.data if isinstance(other, DeviceTensor) else other
        if src.shape != self._data.shape:
            raise ValueError(
                f"shape mismatch in copy_from: {src.shape} -> {self._data.shape}"
            )
        np.copyto(self._data, src, casting="same_kind")
        return self

    def release(self) -> None:
        """Free the buffer (accounting + drop the reference).

        After release the tensor holds a zero-length array; touching it is a
        bug that will surface as a shape error, the closest analogue of a
        use-after-free on a real device.
        """
        if self._ledger is not None:
            self._ledger.free(self._device, self.nbytes)
        self._data = np.empty(0, dtype=self._data.dtype)

    # --- constructors ----------------------------------------------------------
    @staticmethod
    def zeros(
        shape, dtype: DType | str = "fp32", device: Device = CPU, *, name: str = ""
    ) -> "DeviceTensor":
        d = dtype_of(dtype)
        return DeviceTensor(d.zeros(shape), device, name=name)

    @staticmethod
    def empty(
        shape, dtype: DType | str = "fp32", device: Device = CPU, *, name: str = ""
    ) -> "DeviceTensor":
        d = dtype_of(dtype)
        return DeviceTensor(d.empty(shape), device, name=name)
