"""Mixed-precision Adam(W) on flat buffers.

The update is factored as a pure function :func:`adam_step` over 1-D numpy
buffers so that every ZeRO variant can reuse it unchanged:

* the data-parallel baseline calls it on each full parameter;
* ZeRO-1/2/3 call it on each rank's optimizer-state shard;
* the NVMe offload path calls it chunk-by-chunk from inside a
  :class:`~repro.nvme.store.ChunkedSwapper` stream.

State per element is the paper's 16 bytes: fp32 momentum, fp32 variance,
fp32 master parameter (+ the fp32 master gradient staged transiently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.nn.parameter import Parameter


@dataclass
class AdamState:
    """Per-parameter(-shard) fp32 state."""

    master: np.ndarray  # fp32 master copy of the (shard of the) parameter
    exp_avg: np.ndarray  # first moment
    exp_avg_sq: np.ndarray  # second moment
    step: int = 0

    @staticmethod
    def init(values: np.ndarray) -> "AdamState":
        master = values.astype(np.float32).reshape(-1).copy()
        return AdamState(
            master=master,
            exp_avg=np.zeros_like(master),
            exp_avg_sq=np.zeros_like(master),
        )

    @property
    def nbytes(self) -> int:
        return int(
            self.master.nbytes + self.exp_avg.nbytes + self.exp_avg_sq.nbytes
        )


def adam_step(
    master: np.ndarray,
    grad: np.ndarray,
    exp_avg: np.ndarray,
    exp_avg_sq: np.ndarray,
    *,
    step: int,
    lr: float,
    beta1: float = 0.9,
    beta2: float = 0.999,
    eps: float = 1e-8,
    weight_decay: float = 0.0,
) -> None:
    """One in-place Adam(W) update on fp32 flat buffers.

    ``step`` is 1-based (bias correction uses it directly).  Decoupled
    weight decay (AdamW) is applied when ``weight_decay > 0``.
    """
    if step < 1:
        raise ValueError("step must be >= 1")
    g = grad.astype(np.float32, copy=False)
    exp_avg *= beta1
    exp_avg += (1.0 - beta1) * g
    exp_avg_sq *= beta2
    exp_avg_sq += (1.0 - beta2) * np.square(g)
    bias1 = 1.0 - beta1**step
    bias2 = 1.0 - beta2**step
    denom = np.sqrt(exp_avg_sq / bias2) + eps
    if weight_decay:
        master -= lr * weight_decay * master
    master -= (lr / bias1) * (exp_avg / denom)


class Adam:
    """Optimizer over :class:`Parameter` objects (baseline, unpartitioned).

    Keeps fp32 master state per parameter; ``step()`` consumes the fp16 (or
    fp32) ``.grad`` of each parameter, updates the master, and writes the
    cast-back value into ``param.data`` — the standard mixed-precision loop.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        *,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self.state: dict[int, AdamState] = {
            p.unique_id: AdamState.init(p.data) for p in self.params
        }

    @property
    def state_bytes(self) -> int:
        return sum(s.nbytes for s in self.state.values())

    def global_grad_norm(self) -> float:
        """L2 norm over all gradients (fp32 accumulation)."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                g = p.grad.astype(np.float32, copy=False)
                total += float(np.square(g).sum())
        return float(np.sqrt(total))

    def step(self, *, grad_scale: float = 1.0) -> None:
        """Apply one update; ``grad_scale`` divides grads (loss-scale undo)."""
        clip_coef = 1.0
        if self.grad_clip is not None:
            norm = self.global_grad_norm() / grad_scale
            if norm > self.grad_clip:
                clip_coef = self.grad_clip / (norm + 1e-12)
        for p in self.params:
            if p.grad is None:
                continue
            st = self.state[p.unique_id]
            st.step += 1
            grad = p.grad.astype(np.float32).reshape(-1)
            if grad_scale != 1.0:
                grad /= grad_scale
            if clip_coef != 1.0:
                grad *= clip_coef
            adam_step(
                st.master,
                grad,
                st.exp_avg,
                st.exp_avg_sq,
                step=st.step,
                lr=self.lr,
                beta1=self.beta1,
                beta2=self.beta2,
                eps=self.eps,
                weight_decay=self.weight_decay,
            )
            p.data = st.master.reshape(p.data.shape).astype(p.data.dtype)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
