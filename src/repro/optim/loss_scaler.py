"""Loss scaling for fp16 training.

fp16 gradients underflow for small loss values; standard practice (Micikevicius
et al., cited by the paper as its mixed-precision recipe) multiplies the loss
by a scale before backward and divides gradients before the update, skipping
steps whose scaled gradients overflowed.
"""

from __future__ import annotations

import numpy as np


class StaticLossScaler:
    """A fixed loss scale (useful for deterministic equivalence tests)."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("loss scale must be positive")
        self.scale = scale

    @property
    def loss_scale(self) -> float:
        return self.scale

    def check_overflow(self, grads) -> bool:
        """Static scaling never skips steps; overflow check is caller-side."""
        return False

    def update(self, overflowed: bool) -> None:
        """No-op for static scaling."""


class DynamicLossScaler:
    """Grow-until-overflow, back-off-on-overflow dynamic scaling.

    The scale doubles every ``growth_interval`` consecutive good steps and
    halves (down to ``min_scale``) on any step whose gradients contain
    inf/NaN.  Steps that overflow must be skipped by the caller.
    """

    def __init__(
        self,
        *,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 2000,
        min_scale: float = 1.0,
    ) -> None:
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError("backoff_factor must be in (0, 1)")
        self.scale = init_scale
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self._good_steps = 0
        self.num_overflows = 0

    @property
    def loss_scale(self) -> float:
        return self.scale

    @staticmethod
    def grads_overflowed(grads) -> bool:
        """True when any gradient buffer contains inf or NaN."""
        for g in grads:
            if g is None:
                continue
            if not np.all(np.isfinite(g)):
                return True
        return False

    def check_overflow(self, grads) -> bool:
        return self.grads_overflowed(grads)

    def update(self, overflowed: bool) -> None:
        """Advance scaler state after a step attempt."""
        if overflowed:
            self.scale = max(self.scale * self.backoff_factor, self.min_scale)
            self._good_steps = 0
            self.num_overflows += 1
        else:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale *= self.growth_factor
                self._good_steps = 0
