"""Optimizers for mixed-precision training.

The paper's recipe (Sec. 2-3): forward/backward in FP16, parameter updates in
FP32 against master copies, with Adam keeping first/second moment statistics
— 16 bytes of optimizer state per parameter on top of the 4 bytes of fp16
param+grad.  :class:`~repro.optim.adam.Adam` implements the element-wise
update on flat numpy buffers so ZeRO partitioners can run it per-shard;
:class:`~repro.optim.loss_scaler.DynamicLossScaler` implements the standard
overflow-backoff loss scaling fp16 training requires.
"""

from repro.optim.adam import Adam, AdamState, adam_step
from repro.optim.loss_scaler import DynamicLossScaler, StaticLossScaler

__all__ = [
    "Adam",
    "AdamState",
    "adam_step",
    "DynamicLossScaler",
    "StaticLossScaler",
]
