"""Fault-plane overhead contract: injection compiled out costs < 2% of a step.

:mod:`repro.faults` leaves its event sites compiled into the storage hot
path — every aio block read/write, every spool commit, every pinned
acquisition, every rank dispatch.  The deal is the one the tracer and the
checker struck before it (``bench_obs_overhead.py``,
``bench_check_overhead.py``): with no plane installed, each site pays one
module-global load plus an ``is None`` test and nothing else.  This bench
measures that gate, counts the events a real offloaded step dispatches,
and *asserts* the contract (measurement model in
:mod:`repro.faults.overhead`).  The machine-readable result lands in
``BENCH_faults.json`` at the repo root.

``tests/test_chaos.py`` proves armed runs recover; this bench proves
disarmed runs are free.
"""

import json
import os

from repro.faults.overhead import measure_faults_overhead

DISABLED_BUDGET = 0.02  # compiled-in fault sites must be invisible
ENABLED_BUDGET = 0.50  # an armed (but quiet) plane may tax this much
ATTEMPTS = 3  # timing on loaded CI boxes flakes; a regression fails all


def test_faults_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(measure_faults_overhead, rounds=1, iterations=1)
    for _ in range(ATTEMPTS - 1):
        if (
            report.disabled_overhead < DISABLED_BUDGET
            and report.enabled_overhead < ENABLED_BUDGET
        ):
            break
        report = measure_faults_overhead()
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_faults.json",
    )
    with open(path, "w") as f:
        json.dump(
            {
                "step_disabled_s": report.step_disabled_s,
                "step_enabled_s": report.step_enabled_s,
                "events_per_step": report.events_per_step,
                "noop_gate_s": report.noop_gate_s,
                "disabled_overhead": report.disabled_overhead,
                "enabled_overhead": report.enabled_overhead,
                "disabled_budget": DISABLED_BUDGET,
                "enabled_budget": ENABLED_BUDGET,
            },
            f,
            indent=2,
        )
        f.write("\n")
    emit("BENCH_faults", report.render())
    assert report.events_per_step > 50, report.render()  # a real I/O step
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
