"""Shared helpers for the figure/table reproduction benches.

Every bench regenerates one table or figure from the paper's evaluation
(Sec. 8) or analysis (Secs. 3-4, 9): it computes the artifact through the
library, renders it as text, prints it, and persists it under
``benchmarks/reports/`` so the reproduction is inspectable after the run.
pytest-benchmark times the underlying computation.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
reproduced figures inline.
"""

from __future__ import annotations

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def report_dir():
    os.makedirs(REPORT_DIR, exist_ok=True)
    yield REPORT_DIR
    # index everything produced across the session for easy browsing
    entries = sorted(
        f for f in os.listdir(REPORT_DIR) if f.endswith(".txt")
    )
    with open(os.path.join(REPORT_DIR, "INDEX.md"), "w") as f:
        f.write("# Reproduced artifacts\n\n")
        f.write(
            "Regenerate with `pytest benchmarks/ --benchmark-only`.\n\n"
        )
        for name in entries:
            title = ""
            with open(os.path.join(REPORT_DIR, name)) as r:
                first = r.readline().strip()
                title = first if first else name
            f.write(f"- [`{name}`]({name}) — {title}\n")


@pytest.fixture
def emit(report_dir):
    """emit(name, text): print a reproduced artifact and save it."""

    def _emit(name: str, text: str) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
        print(banner + text)
        with open(os.path.join(report_dir, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return _emit
