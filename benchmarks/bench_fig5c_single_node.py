"""Figure 5c: democratizing large models — 10B to 1T on one DGX-2 node,
without model parallelism.

Paper: >40 TFlops/GPU up to 100B (making GPT-3-scale fine-tuning possible
on one box), still training at 0.5-1T via NVMe; 3D parallelism cannot go
past ~20B on the same node.  We simulate the Table 1 single-node rows with
their stated device placements and assert the shape: high throughput
(>35 TF/GPU) through 100B, a visible but bounded drop at 0.5-1T, and a 3D
OOM beyond 20B.
"""

from repro.analytics.model_zoo import TABLE1_CONFIGS
from repro.baselines.threed import best_threed_config
from repro.hardware import dgx2_cluster
from repro.sim import SimWorkload, StepSimulator
from repro.sim.step_model import policy_from_config
from repro.utils import Table, ascii_bar_chart

MODELS = ["10B-1node", "50B-1node", "100B-1node", "0.5T-1node", "1T-1node"]


def run_fig5c():
    cluster = dgx2_cluster(1)
    out = {}
    for name in MODELS:
        cfg = TABLE1_CONFIGS[name]
        accum = max(1, round(512 / cfg.total_batch))
        wl = SimWorkload.from_config(cfg, grad_accumulation_steps=accum)
        b = StepSimulator(cluster, wl, policy_from_config(cfg)).simulate()
        td_cfg, td = best_threed_config(
            cluster,
            cfg.params,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            attn_heads=cfg.attn_heads,
            bsz_per_gpu=max(int(cfg.batch_per_gpu), 1),
        )
        out[name] = {
            "tflops": b.tflops_per_gpu,
            "threed_fits": td is not None,
            "placement": f"p:{cfg.param_device.value}/o:{cfg.optimizer_device.value}",
        }
    return out


def test_fig5c_single_node(benchmark, emit):
    results = benchmark.pedantic(run_fig5c, rounds=1, iterations=1)
    t = Table(
        ["model", "placement", "ZeRO-Inf TF/GPU", "3D parallelism"],
        title="Figure 5c — single DGX-2 node, no model parallelism",
        float_fmt="{:.1f}",
    )
    for name in MODELS:
        r = results[name]
        t.add_row(
            [
                name.replace("-1node", ""),
                r["placement"],
                r["tflops"],
                "fits" if r["threed_fits"] else "OOM",
            ]
        )
    chart = ascii_bar_chart(
        [n.replace("-1node", "") for n in MODELS],
        [results[n]["tflops"] for n in MODELS],
        title="TFlops/GPU on one DGX-2 (paper: >40 up to 100B)",
        value_fmt="{:.1f}",
    )
    emit("fig5c_single_node", t.render() + "\n\n" + chart)

    # accessibility claim: strong throughput through 100B on one box
    # (paper: >40 TF/GPU; our NVMe optimizer model is slightly more
    # conservative, landing at ~34-51)
    for name in ("10B-1node", "50B-1node", "100B-1node"):
        assert results[name]["tflops"] > 30.0
    # NVMe-resident trillion-scale still trains, at reduced throughput
    assert 10.0 < results["1T-1node"]["tflops"] < results["100B-1node"]["tflops"]
    # 3D parallelism cannot reach these scales on one node (paper: ~20B cap)
    assert not results["0.5T-1node"]["threed_fits"]
    assert not results["1T-1node"]["threed_fits"]
