"""Overlapped optimizer pipeline: serial reference vs double-buffered stream.

The chunked NVMe optimizer step used to be the last serial tail in the
step: every chunk's state reads and write-backs were awaited inline while
compute idled, and perfscope billed the wait to ``optimizer_io_tail``.
The double-buffered pipeline (``OffloadConfig.optimizer_pipeline``, on by
default) keeps chunk ``k+1``'s reads and chunk ``k-1``'s shadow writes in
flight while chunk ``k`` computes, draining the write tail once at the
transaction's commit barrier.

This bench runs the same seeded NVMe workload through both schedules via
:func:`repro.workloads.calibrate.measure_opt_pipeline`, asserts the two
are **bit-identical** (the overlap is scheduling, never arithmetic), and
requires the pipelined run to cut the ``optimizer_io_tail`` stall time by
at least ``OPTPIPE_TAIL_TARGET`` (30%).  The machine-readable result is
persisted to ``BENCH_optpipe.json`` at the repo root, where
``tools/perf_gate.py`` ratchets both the reduction floor and the serial
(pipeline-off) step rate, so neither schedule can quietly regress.
"""

import json
import os

from repro.workloads.calibrate import OPTPIPE_TAIL_TARGET, measure_opt_pipeline


def test_opt_pipeline_tail_contract(emit, benchmark):
    report = benchmark.pedantic(measure_opt_pipeline, rounds=1, iterations=1)
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_optpipe.json",
    )
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    lines = [
        f"world {report['world']}  steps {report['steps']}"
        f"  chunk_numel {report['chunk_numel']}",
        f"serial    {report['steps_per_s']:.3f} steps/s"
        f"  tail {report['tail_us_serial'] / 1e3:.1f} ms",
        f"pipelined {report['steps_per_s_pipelined']:.3f} steps/s"
        f"  tail {report['tail_us_pipelined'] / 1e3:.1f} ms",
        f"tail reduction {report['tail_reduction']:.1%}"
        f"  (target >= {report['target_reduction']:.0%})",
    ]
    emit("BENCH_optpipe", "\n".join(lines))

    assert report["bit_identical"]
    assert report["tail_reduction"] >= OPTPIPE_TAIL_TARGET
