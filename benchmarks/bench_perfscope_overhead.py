"""Perfscope overhead contract: disabled < 2%, enabled < 10% of a step.

:mod:`repro.obs.perfscope` leaves stall-span call sites compiled into the
wait choke points — demand fetches, pinned-pool eviction, inline bucket
flushes, optimizer I/O drains, retry loops.  Like the tracer and memscope,
that is only tenable if the disabled fast path is effectively free, so
this bench measures both paths on a real engine step and asserts the
contract (measurement model in :mod:`repro.obs.overhead`).
``tests/test_perfscope_overhead.py`` enforces the same bound in tier 1;
the machine-readable result lands in ``BENCH_perfscope.json`` at the repo
root, which ``tools/perf_gate.py`` compares future runs against.
"""

import json
import os

from repro.obs.overhead import measure_perfscope_overhead

DISABLED_BUDGET = 0.02  # always-on stall hooks must be invisible
ENABLED_BUDGET = 0.10  # live tracing may tax the step this much


def test_perfscope_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(
        measure_perfscope_overhead, rounds=1, iterations=1
    )
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_perfscope.json",
    )
    with open(path, "w") as f:
        json.dump(
            {
                "step_disabled_s": report.step_disabled_s,
                "step_enabled_s": report.step_enabled_s,
                "steps_per_s": report.steps_per_s,
                "spans_per_step": report.spans_per_step,
                "stall_ops_per_step": report.stall_ops_per_step,
                "noop_call_s": report.noop_call_s,
                "stall_call_s": report.stall_call_s,
                "ledger_build_s": report.ledger_build_s,
                "stall_fraction": report.stall_fraction,
                "overlap_fraction": report.overlap_fraction,
                "disabled_overhead": report.disabled_overhead,
                "enabled_overhead": report.enabled_overhead,
                "disabled_budget": DISABLED_BUDGET,
                "enabled_budget": ENABLED_BUDGET,
            },
            f,
            indent=2,
        )
        f.write("\n")
    emit("BENCH_perfscope", report.render())
    assert report.spans_per_step > 50  # the step really is instrumented
    assert report.residual_us < 1.0, report.render()  # exact accounting
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
