"""Figure 1: maximum model size, 3D parallelism vs ZeRO-Infinity.

Paper: on 32 NVIDIA V100 DGX-2 nodes (512 GPUs), 3D parallelism tops out
near 650B parameters while ZeRO-Infinity trains 32T — a ~50x leap.  We
solve both capacities from the Sec. 3 memory model and assert the shape:
3D lands in the 0.4-0.9T band and ZeRO-Infinity exceeds 30x beyond it.
"""

from repro.core.config import Strategy
from repro.core.scale import max_model_size
from repro.hardware import dgx2_cluster
from repro.utils import Table, ascii_bar_chart, format_count


def solve_fig1():
    cluster = dgx2_cluster(32)
    threed = max_model_size(Strategy.THREED, cluster, mp_degree=4, bsz_per_gpu=1)
    inf = max_model_size(
        Strategy.ZERO_INF_NVME, cluster, tile_factor=16, bsz_per_gpu=1
    )
    return threed, inf


def test_fig1_max_model_scale(benchmark, emit):
    threed, inf = benchmark(solve_fig1)

    table = Table(
        ["system", "max params (solved)", "paper", "limited by"],
        title="Figure 1 — max model size on 32 DGX-2 nodes (512 V100 GPUs)",
    )
    table.add_row(
        ["3D parallelism", format_count(threed.max_params), "~650B", threed.limiting_factor]
    )
    table.add_row(
        [
            "ZeRO-Infinity (NVMe, tiling 16)",
            format_count(inf.max_params),
            "32T demonstrated",
            inf.limiting_factor,
        ]
    )
    chart = ascii_bar_chart(
        ["3D parallelism", "ZeRO-Infinity"],
        [threed.max_params / 1e12, inf.max_params / 1e12],
        title="max trainable parameters (trillions)",
        value_fmt="{:.2f}T",
    )
    ratio = inf.max_params / threed.max_params
    emit(
        "fig1_model_scale",
        f"{table.render()}\n\n{chart}\n\nscale leap: {ratio:.0f}x"
        f" (paper demonstrates 50x: 32T vs ~650B)",
    )

    # shape assertions (the reproduction contract)
    assert 0.4e12 < threed.max_params < 0.9e12
    assert inf.max_params / threed.max_params > 30
