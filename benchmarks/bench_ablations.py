"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablations (Fig. 6c-e), these sweep the tunables our
implementation exposes and record how each moves the needle, functionally
(real engine) and in the performance model:

* prefetch depth (0/1/2/4): NVMe prefetch hit rate in the real engine;
* pinned-buffer budget: staging reuse vs fresh allocation;
* optimizer streaming chunk size: I/O request count vs staging footprint;
* simulator: prefetch-depth proxy via overlap on/off at several hidden
  sizes (the trend Fig. 6d shows for batch size, re-cut by model width).
"""

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nvme import ChunkedSwapper, PinnedBufferPool, TensorStore
from repro.utils import Table
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=3, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8))) for r in rngs
    ]


def run_prefetch_sweep():
    out = {}
    for depth in (0, 1, 2, 4):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
            prefetch_depth=depth,
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            for step in range(3):
                eng.train_step(batches(step))
            rep = eng.report()
            total = rep.prefetch_hits + rep.prefetch_misses
            out[depth] = {
                "hits": rep.prefetch_hits,
                "misses": rep.prefetch_misses,
                "hit_rate": rep.prefetch_hits / total if total else 0.0,
            }
    return out


def test_ablation_prefetch_depth(benchmark, emit):
    results = benchmark.pedantic(run_prefetch_sweep, rounds=1, iterations=1)
    t = Table(
        ["prefetch depth", "NVMe prefetch hits", "cold misses", "hit rate"],
        title="Ablation — prefetch depth vs NVMe read path (functional engine)",
    )
    for depth, r in sorted(results.items()):
        t.add_row([depth, r["hits"], r["misses"], f"{r['hit_rate']:.0%}"])
    emit("ablation_prefetch_depth", t.render())
    assert results[0]["hits"] == 0  # disabled => every fetch is cold
    assert results[2]["hit_rate"] > 0.5  # the default depth mostly hits
    assert results[4]["hits"] >= results[1]["hits"]


def run_pinned_budget_sweep():
    out = {}
    nbytes = 1 << 16
    for budget_factor in (1, 2, 8):
        pool = PinnedBufferPool(budget_factor * nbytes + 8192, alignment=4096)
        with TensorStore(pool=pool) as store:
            data = np.zeros(nbytes // 4, dtype=np.float32)
            for i in range(16):
                store.write(f"k{i}", data)
            swapper = ChunkedSwapper(store, chunk_numel=nbytes // 4, pool=pool)
            for i in range(16):
                swapper.apply(f"k{i}", lambda c: c + 1)
        out[budget_factor] = {
            "reuse": pool.stats.reuse_hits,
            "acquisitions": pool.stats.acquisitions,
            "peak": pool.stats.peak_bytes,
            "budget": pool.budget_bytes,
        }
    return out


def test_ablation_pinned_budget(benchmark, emit):
    results = benchmark.pedantic(run_pinned_budget_sweep, rounds=1, iterations=1)
    t = Table(
        ["budget (chunks)", "acquisitions", "reuse hits", "peak/budget"],
        title="Ablation — pinned staging budget vs buffer reuse",
    )
    for factor, r in sorted(results.items()):
        t.add_row(
            [factor, r["acquisitions"], r["reuse"], f"{r['peak'] / r['budget']:.0%}"]
        )
    emit("ablation_pinned_budget", t.render())
    for r in results.values():
        assert r["peak"] <= r["budget"]  # the core invariant (Sec. 6.3)
        assert r["reuse"] > 0  # reuse is what makes tiny budgets workable


def run_chunk_size_sweep():
    out = {}
    n = 1 << 18
    for chunk in (1 << 12, 1 << 15, 1 << 18):
        with TensorStore() as store:
            store.write("x", np.zeros(n, dtype=np.float32))
            reads_before = store.engine.stats.read_requests
            ChunkedSwapper(store, chunk_numel=chunk).apply("x", lambda c: c + 1)
            out[chunk] = {
                "read_requests": store.engine.stats.read_requests - reads_before,
                "staging_bytes": 2 * chunk * 4,  # double buffering
            }
    return out


def test_ablation_optimizer_chunk_size(benchmark, emit):
    results = benchmark.pedantic(run_chunk_size_sweep, rounds=1, iterations=1)
    t = Table(
        ["chunk numel", "read requests", "staging footprint (B)"],
        title="Ablation — NVMe optimizer streaming chunk size",
    )
    for chunk, r in sorted(results.items()):
        t.add_row([chunk, r["read_requests"], r["staging_bytes"]])
    emit("ablation_chunk_size", t.render())
    chunks = sorted(results)
    # smaller chunks => more requests but proportionally less staging memory
    assert results[chunks[0]]["read_requests"] > results[chunks[-1]]["read_requests"]
    assert results[chunks[0]]["staging_bytes"] < results[chunks[-1]]["staging_bytes"]


def run_bucketing_sweep():
    from repro.baselines.ddp import DDPTrainer
    from repro.core.fused import FusedZeroTrainer

    def fused_factory():
        return factory()

    rngs = spawn_rngs(0, WORLD)
    b = [
        (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8))) for r in rngs
    ]
    out = {}
    ddp = DDPTrainer(fused_factory, WORLD, lr=1e-3)
    ddp.train_step(b)
    out["ddp (per-param allreduce)"] = {
        "collectives": ddp.comm.stats.total_calls,
        "bytes": ddp.comm.stats.total_bytes,
    }
    for bucket, label in [
        (1 << 30, "fused (1 bucket)"),
        (2048, "fused (2 KB-elem buckets)"),
    ]:
        fz = FusedZeroTrainer(fused_factory, WORLD, lr=1e-3, bucket_numel=bucket)
        fz.train_step(b)
        out[label] = {
            "collectives": fz.comm.stats.total_calls,
            "bytes": fz.comm.stats.total_bytes,
        }
    return out


def test_ablation_gradient_bucketing(benchmark, emit):
    """Fused flat buffers: collective count collapses, volume stays put."""
    results = benchmark.pedantic(run_bucketing_sweep, rounds=1, iterations=1)
    t = Table(
        ["scheme", "collectives/step", "bytes moved"],
        title="Ablation — per-parameter vs fused bucketed gradient reduction",
    )
    for label, r in results.items():
        t.add_row([label, r["collectives"], r["bytes"]])
    emit("ablation_bucketing", t.render())
    assert (
        results["fused (1 bucket)"]["collectives"]
        < results["ddp (per-param allreduce)"]["collectives"]
    )


def run_owner_vs_sharded():
    out = {}
    for bandwidth_centric in (True, False):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.CPU,
                grad_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.CPU,
            ),
            bandwidth_centric=bandwidth_centric,
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            eng.train_step(batches())
            rep = eng.report()
            loads = rep.host_link_bytes
            out[bandwidth_centric] = {
                "links_used": len(loads),
                "max_link": max(loads.values()),
                "total": sum(loads.values()),
            }
    return out


def test_ablation_bandwidth_centric_links(benchmark, emit):
    """Sec. 6.1 measured functionally: same bytes, spread vs concentrated."""
    results = benchmark.pedantic(run_owner_vs_sharded, rounds=1, iterations=1)
    t = Table(
        ["layout", "host links used", "max bytes on one link", "total bytes"],
        title="Ablation — bandwidth-centric vs owner parameter layout",
    )
    t.add_row(
        [
            "sharded/allgather",
            results[True]["links_used"],
            results[True]["max_link"],
            results[True]["total"],
        ]
    )
    t.add_row(
        [
            "owner/broadcast",
            results[False]["links_used"],
            results[False]["max_link"],
            results[False]["total"],
        ]
    )
    emit("ablation_bandwidth_centric", t.render())
    assert results[True]["links_used"] == WORLD
    assert results[True]["max_link"] < results[False]["max_link"]
