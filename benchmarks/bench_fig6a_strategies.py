"""Figure 6a: maximum model size per device-placement strategy (Table 2)
on a single DGX-2 node.

Paper progression: data parallelism 1.4B -> ZeRO-2 / ZeRO-Offload ~13B
(9x) -> ZeRO-3 ~20B -> ZeRO-Infinity CPU "almost 100B" -> ZeRO-Infinity
NVMe 1T (700x total).  We solve each strategy's capacity with the Sec. 3
memory model and assert the ordering and the headline ratios.
"""

from repro.core.config import Strategy
from repro.core.scale import max_model_size
from repro.hardware import dgx2_cluster
from repro.utils import Table, ascii_bar_chart, format_count

ORDER = [
    (Strategy.DATA_PARALLEL, "1.4B", {}),
    (Strategy.ZERO_2, "13B", {}),
    (Strategy.ZERO_OFFLOAD, "13B", {}),
    (Strategy.THREED, "20B", {"mp_degree": 4}),
    (Strategy.ZERO_3, "20B", {}),
    (Strategy.ZERO_INF_CPU, "~100B", {"tile_factor": 16}),
    (Strategy.ZERO_INF_NVME, "1T", {"tile_factor": 16}),
]


def run_fig6a():
    cluster = dgx2_cluster(1)
    return {
        s: max_model_size(s, cluster, bsz_per_gpu=1, **kw) for s, _, kw in ORDER
    }


def test_fig6a_strategy_scale(benchmark, emit):
    results = benchmark(run_fig6a)
    t = Table(
        ["strategy", "max params (solved)", "paper", "limited by"],
        title="Figure 6a — max model size per strategy, one DGX-2 (16 GPUs)",
    )
    for s, paper, _ in ORDER:
        r = results[s]
        t.add_row([str(s), format_count(r.max_params), paper, r.limiting_factor])
    chart = ascii_bar_chart(
        [str(s) for s, _, _ in ORDER],
        [results[s].max_params / 1e9 for s, _, _ in ORDER],
        title="max parameters (billions, log-ish shape)",
        value_fmt="{:.1f}B",
    )
    dp = results[Strategy.DATA_PARALLEL].max_params
    nvme = results[Strategy.ZERO_INF_NVME].max_params
    emit(
        "fig6a_strategy_scale",
        f"{t.render()}\n\n{chart}\n\n"
        f"total leap vs data parallelism: {nvme / dp:.0f}x (paper: 700x)",
    )

    assert 1.0e9 < dp < 2.5e9
    assert 4 < results[Strategy.ZERO_2].max_params / dp < 15  # "9x"
    assert 50e9 < results[Strategy.ZERO_INF_CPU].max_params < 110e9
    assert nvme > 1e12
    assert nvme / dp > 400  # "700x increase"
