"""Tables 1 and 4-8: the experiment configurations, regenerated and checked.

These tables define every workload the paper evaluates.  The bench prints
each with the parameter count our Eq. (1) implementation derives from the
stated (layers, hidden) pair, asserting it lands on the table's advertised
model size — the consistency check that our model zoo drives the other
benches with the right shapes.
"""

import pytest

from repro.analytics.model_zoo import (
    FIG6A_CONFIGS,
    FIG6B_CONFIGS,
    FIG6C_CONFIG,
    FIG6C_GPU_SWEEP,
    FIG6D_BATCH_SWEEP,
    FIG6D_CONFIG,
    FIG6E_CONFIGS,
    TABLE1_CONFIGS,
)
from repro.utils import Table, format_count


def build_all():
    return {
        "table1": list(TABLE1_CONFIGS.values()),
        "table4": list(FIG6A_CONFIGS.values()),
        "table5": list(FIG6B_CONFIGS.values()),
        "table6": [FIG6C_CONFIG],
        "table7": [FIG6D_CONFIG],
        "table8": list(FIG6E_CONFIGS.values()),
    }


def _config_table(title, configs):
    t = Table(
        [
            "name",
            "nodes",
            "GPUs",
            "mp",
            "layers",
            "hidden",
            "heads",
            "batch/GPU",
            "params (Eq. 1)",
            "param dev",
            "opt dev",
        ],
        title=title,
    )
    for c in configs:
        t.add_row(
            [
                c.name,
                c.num_nodes,
                c.num_gpus,
                c.mp_degree,
                c.num_layers,
                c.hidden_dim,
                c.attn_heads,
                c.batch_per_gpu,
                format_count(c.params),
                c.param_device.value,
                c.optimizer_device.value,
            ]
        )
    return t.render()


# the model size each Table 1 row advertises in its name
_T1_EXPECTED = {
    "10B-1node": 10e9,
    "50B-1node": 50e9,
    "100B-1node": 100e9,
    "0.5T-1node": 0.5e12,
    "1T-1node": 1e12,
    "0.5T-32node": 0.5e12,
    "1T-32node": 1e12,
    "5T-32node": 5e12,
    "10T-32node": 10e12,
    "20T-32node": 20e12,
}


def test_tables_1_and_4_to_8(benchmark, emit):
    tables = benchmark(build_all)
    sections = [
        ("Table 1 — main experiment configurations", tables["table1"]),
        ("Table 4 — Fig. 6a configurations", tables["table4"]),
        ("Table 5 — Fig. 6b configurations", tables["table5"]),
        ("Table 6 — Fig. 6c configuration"
         f" (GPU sweep {list(FIG6C_GPU_SWEEP)})", tables["table6"]),
        ("Table 7 — Fig. 6d configuration"
         f" (batch sweep {list(FIG6D_BATCH_SWEEP)})", tables["table7"]),
        ("Table 8 — Fig. 6e configurations", tables["table8"]),
    ]
    emit(
        "table1_and_appendix_configs",
        "\n\n".join(_config_table(title, cfgs) for title, cfgs in sections),
    )

    # Table 1 rows derive the sizes their names advertise
    for name, expected in _T1_EXPECTED.items():
        got = TABLE1_CONFIGS[name].params
        assert got == pytest.approx(expected, rel=0.13), name
    # Table 4's headline rows.  Eq. (1) counts only the block linears, so
    # small models undershoot their labels (the 1.4B row's embeddings are
    # ~20% of it); and the paper's own "70B" row computes to 100B under its
    # stated (125, 8192) shape — we assert the Eq. (1) values.
    assert FIG6A_CONFIGS["1.4B"].params == pytest.approx(1.13e9, rel=0.02)
    assert FIG6A_CONFIGS["70B"].params == pytest.approx(100.7e9, rel=0.02)
    assert FIG6A_CONFIGS["1000B"].params == pytest.approx(1e12, rel=0.05)
    # Table 5: single-layer models at each hidden size
    for hd, cfg in FIG6B_CONFIGS.items():
        assert cfg.num_layers == 1 and cfg.hidden_dim == hd
    # Tables 6/7: the 8B model
    assert FIG6C_CONFIG.params == pytest.approx(8e9, rel=0.01)
    assert FIG6D_CONFIG.params == pytest.approx(8e9, rel=0.01)
    # Table 8: five hidden sizes, 5 layers each
    assert sorted(FIG6E_CONFIGS) == [2048, 8192, 16384, 32768, 65536]
    assert all(c.num_layers == 5 for c in FIG6E_CONFIGS.values())
