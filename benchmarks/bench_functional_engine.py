"""Functional-layer micro-benchmarks (real numpy execution, real file I/O).

Unlike the figure benches (which model a V100 cluster), these time the
actual code paths of the functional engine on this machine, answering: what
does each ZeRO-Infinity mechanism cost *in this implementation*?

* full training step: DDP baseline vs ZeRO-3 vs ZeRO-Infinity (NVMe);
* parameter gather path: resident vs NVMe, prefetched vs cold;
* tiled vs dense linear forward+backward;
* tensor-store swap throughput.
"""

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.core.tiling import TiledLinear
from repro.nn import GPTModel, Linear, TransformerConfig
from repro.nvme import TensorStore
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 4
VOCAB = 64


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=64, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def batches(seed=0, bsz=2, seq=16):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (bsz, seq)), r.integers(0, VOCAB, (bsz, seq)))
        for r in rngs
    ]


class TestStepLatency:
    def test_ddp_baseline_step(self, benchmark):
        trainer = DDPTrainer(factory, WORLD, lr=1e-3)
        b = batches()
        benchmark(lambda: trainer.train_step(b))

    def test_zero3_step(self, benchmark):
        cfg = ZeroConfig(world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            b = batches()
            benchmark(lambda: eng.train_step(b))

    def test_zero_infinity_nvme_step(self, benchmark):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            b = batches()
            eng.train_step(b)  # warm the trace so prefetching is active
            benchmark(lambda: eng.train_step(b))


class TestGatherPath:
    def _engine(self, device):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=device),
            loss_scale=1.0,
        )
        return ZeroInfinityEngine(cfg, model_factory=factory)

    def test_gather_release_resident(self, benchmark):
        with self._engine(OffloadDevice.NONE) as eng:
            p = eng.model.parameters()[0]

            def cycle():
                eng.partitioner.gather(p)
                eng.partitioner.release(p)

            benchmark(cycle)

    def test_gather_release_nvme(self, benchmark):
        with self._engine(OffloadDevice.NVME) as eng:
            p = eng.model.parameters()[0]

            def cycle():
                eng.partitioner.gather(p)
                eng.partitioner.release(p)

            benchmark(cycle)


class TestTiledLinearCost:
    """Tiling trades a modest dispatch overhead for bounded working memory."""

    def _layers(self, tiles):
        dense = Linear(256, 1024, rng=seeded_rng(0))
        layer = (
            dense if tiles == 1 else TiledLinear.from_linear(dense, out_tiles=tiles)
        )
        x = seeded_rng(1).standard_normal((8, 256)).astype(np.float32)
        g = seeded_rng(2).standard_normal((8, 1024)).astype(np.float32)
        return layer, x, g

    @pytest.mark.parametrize("tiles", [1, 4, 16])
    def test_forward_backward(self, benchmark, tiles):
        layer, x, g = self._layers(tiles)

        def step():
            layer(x)
            layer.backward(g)
            layer.zero_grad()

        benchmark(step)


class TestSwapThroughput:
    @pytest.mark.parametrize("mb", [1, 16])
    def test_write_read_roundtrip(self, benchmark, tmp_path, mb):
        data = np.zeros(mb * (1 << 20) // 4, dtype=np.float32)
        with TensorStore(str(tmp_path / f"spool{mb}")) as store:

            def roundtrip():
                store.write("x", data)
                store.read("x")

            benchmark(roundtrip)
