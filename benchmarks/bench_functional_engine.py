"""Functional-layer micro-benchmarks (real numpy execution, real file I/O).

Unlike the figure benches (which model a V100 cluster), these time the
actual code paths of the functional engine on this machine, answering: what
does each ZeRO-Infinity mechanism cost *in this implementation*?

* full training step: DDP baseline vs ZeRO-3 vs ZeRO-Infinity (NVMe);
* parameter gather path: resident vs NVMe, prefetched vs cold;
* bucketed vs per-parameter communication runtime (``BENCH_bucketing.json``);
* tiled vs dense linear forward+backward;
* tensor-store swap throughput.
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.core.tiling import TiledLinear
from repro.nn import GPTModel, Linear, TransformerConfig
from repro.nvme import TensorStore
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 4
VOCAB = 64


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=64, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def batches(seed=0, bsz=2, seq=16):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (bsz, seq)), r.integers(0, VOCAB, (bsz, seq)))
        for r in rngs
    ]


class TestStepLatency:
    def test_ddp_baseline_step(self, benchmark):
        trainer = DDPTrainer(factory, WORLD, lr=1e-3)
        b = batches()
        benchmark(lambda: trainer.train_step(b))

    def test_zero3_step(self, benchmark):
        cfg = ZeroConfig(world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            b = batches()
            benchmark(lambda: eng.train_step(b))

    def test_zero_infinity_nvme_step(self, benchmark):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            b = batches()
            eng.train_step(b)  # warm the trace so prefetching is active
            benchmark(lambda: eng.train_step(b))


class TestBucketedComm:
    """The bucketed, zero-copy runtime vs the per-parameter hot path.

    Medium transformer sized so parameter movement dominates step time:
    wide layers (large shards per collective) driven with a tiny batch
    (little compute per gathered byte) across 8 ranks.
    """

    WORLD = 8
    STEPS = 5
    WARMUP = 2

    @staticmethod
    def medium_factory():
        cfg = TransformerConfig(
            num_layers=4, hidden_dim=256, num_heads=4, vocab_size=VOCAB, max_seq=8
        )
        return GPTModel(cfg, rng=seeded_rng(11))

    @classmethod
    def medium_batches(cls):
        rngs = spawn_rngs(1, cls.WORLD)
        return [
            (r.integers(0, VOCAB, (1, 4)), r.integers(0, VOCAB, (1, 4)))
            for r in rngs
        ]

    @classmethod
    def _config(cls, bucketed):
        overrides = (
            {} if bucketed else {"coalesce_allgather": False, "reduce_bucket_numel": 0}
        )
        return ZeroConfig(
            world_size=cls.WORLD,
            stage=ZeroStage.PARAMETERS,
            loss_scale=1.0,
            **overrides,
        )

    @classmethod
    def _measure(cls, bucketed):
        """One engine lifetime: timed steps, collective counts, peak alloc."""
        with ZeroInfinityEngine(
            cls._config(bucketed), model_factory=cls.medium_factory, lr=1e-3
        ) as eng:
            b = cls.medium_batches()
            for _ in range(cls.WARMUP):
                eng.train_step(b)
            before = eng.report().total_collective_calls
            t0 = time.perf_counter()
            for _ in range(cls.STEPS):
                eng.train_step(b)
            elapsed = time.perf_counter() - t0
            collectives = eng.report().total_collective_calls - before
            # peak allocation measured outside the timed window: tracemalloc
            # itself slows allocation, so it must not pollute steps/s
            tracemalloc.start()
            eng.train_step(b)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            report = eng.report()
        return {
            "steps_per_s": cls.STEPS / elapsed,
            "collectives_per_step": collectives / cls.STEPS,
            "peak_alloc_bytes": int(peak),
            "bucket_flushes": report.bucket_flushes,
            "grads_bucketed": report.grads_bucketed,
        }

    @classmethod
    def run_comparison(cls):
        bucketed = cls._measure(bucketed=True)
        per_param = cls._measure(bucketed=False)
        return {
            "config": {
                "world_size": cls.WORLD,
                "num_layers": 4,
                "hidden_dim": 256,
                "batch": [1, 4],
                "steps": cls.STEPS,
                "warmup": cls.WARMUP,
            },
            "bucketed": bucketed,
            "per_param": per_param,
            "speedup": bucketed["steps_per_s"] / per_param["steps_per_s"],
            "collective_reduction": (
                per_param["collectives_per_step"]
                / bucketed["collectives_per_step"]
            ),
        }

    def test_bucketed_step(self, benchmark):
        with ZeroInfinityEngine(
            self._config(True), model_factory=self.medium_factory, lr=1e-3
        ) as eng:
            b = self.medium_batches()
            eng.train_step(b)
            benchmark(lambda: eng.train_step(b))

    def test_per_param_step(self, benchmark):
        with ZeroInfinityEngine(
            self._config(False), model_factory=self.medium_factory, lr=1e-3
        ) as eng:
            b = self.medium_batches()
            eng.train_step(b)
            benchmark(lambda: eng.train_step(b))

    def test_comparison_report(self, emit):
        result = self.run_comparison()
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_bucketing.json",
        )
        with open(path, "w") as f:
            json.dump(result, f, indent=2)
        lines = [
            "Bucketed vs per-parameter communication runtime",
            f"  medium transformer: 4 layers x 256 hidden, world={self.WORLD}",
            "",
            f"  {'':12s}{'steps/s':>10s}{'coll/step':>12s}{'peak alloc':>14s}",
        ]
        for name in ("bucketed", "per_param"):
            r = result[name]
            lines.append(
                f"  {name:12s}{r['steps_per_s']:>10.2f}"
                f"{r['collectives_per_step']:>12.0f}"
                f"{r['peak_alloc_bytes'] / 1e6:>12.1f}MB"
            )
        lines.append("")
        lines.append(
            f"  speedup {result['speedup']:.2f}x, "
            f"{result['collective_reduction']:.1f}x fewer collectives"
        )
        emit("BENCH_bucketing", "\n".join(lines))
        assert result["speedup"] >= 1.3, result
        # coalescing factor ~= params per module (weight + bias) plus the
        # per-param reduce-scatters absorbed into bucket flushes
        assert result["collective_reduction"] > 1.5, result


class TestGatherPath:
    def _engine(self, device):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=device),
            loss_scale=1.0,
        )
        return ZeroInfinityEngine(cfg, model_factory=factory)

    def test_gather_release_resident(self, benchmark):
        with self._engine(OffloadDevice.NONE) as eng:
            p = eng.model.parameters()[0]

            def cycle():
                eng.partitioner.gather(p)
                eng.partitioner.release(p)

            benchmark(cycle)

    def test_gather_release_nvme(self, benchmark):
        with self._engine(OffloadDevice.NVME) as eng:
            p = eng.model.parameters()[0]

            def cycle():
                eng.partitioner.gather(p)
                eng.partitioner.release(p)

            benchmark(cycle)


class TestTiledLinearCost:
    """Tiling trades a modest dispatch overhead for bounded working memory."""

    def _layers(self, tiles):
        dense = Linear(256, 1024, rng=seeded_rng(0))
        layer = (
            dense if tiles == 1 else TiledLinear.from_linear(dense, out_tiles=tiles)
        )
        x = seeded_rng(1).standard_normal((8, 256)).astype(np.float32)
        g = seeded_rng(2).standard_normal((8, 1024)).astype(np.float32)
        return layer, x, g

    @pytest.mark.parametrize("tiles", [1, 4, 16])
    def test_forward_backward(self, benchmark, tiles):
        layer, x, g = self._layers(tiles)

        def step():
            layer(x)
            layer.backward(g)
            layer.zero_grad()

        benchmark(step)


class TestSwapThroughput:
    @pytest.mark.parametrize("mb", [1, 16])
    def test_write_read_roundtrip(self, benchmark, tmp_path, mb):
        data = np.zeros(mb * (1 << 20) // 4, dtype=np.float32)
        with TensorStore(str(tmp_path / f"spool{mb}")) as store:

            def roundtrip():
                store.write("x", data)
                store.read("x")

            benchmark(roundtrip)
