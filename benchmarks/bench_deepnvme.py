"""DeepNVMe-style I/O calibration of the async engine (Sec. 6.3).

The paper's DeepNVMe achieves "near peak sequential read and write
bandwidths" through "aggressive parallelization of I/O requests" and block
scheduling.  This bench runs the same kind of sweep the DeepSpeed perf
tools do — block sizes x thread counts against the local disk — and reports
achieved MB/s for the Python stand-in, verifying the design properties that
are hardware-independent:

* more threads never hurt large transfers (parallel sub-block dispatch);
* async submission returns promptly (the overlap budget exists);
* reads land zero-copy in caller buffers.
"""

import time

import numpy as np
import pytest

from repro.nvme import AsyncIOEngine
from repro.utils import Table

MB = 1 << 20


def sweep_write_bandwidth(tmp_dir, *, payload_mb=32):
    data = np.random.default_rng(0).random(payload_mb * MB // 8)
    results = {}
    for threads in (1, 2, 4):
        for block_mb in (1, 8):
            with AsyncIOEngine(
                num_threads=threads, block_bytes=block_mb * MB
            ) as eng:
                path = f"{tmp_dir}/w{threads}_{block_mb}.bin"
                t0 = time.perf_counter()
                eng.write(path, data)
                dt = time.perf_counter() - t0
                results[(threads, block_mb)] = data.nbytes / dt / MB
    return results


def sweep_read_bandwidth(tmp_dir, *, payload_mb=32):
    data = np.random.default_rng(1).random(payload_mb * MB // 8)
    out = np.empty_like(data)
    results = {}
    for threads in (1, 2, 4):
        for block_mb in (1, 8):
            with AsyncIOEngine(
                num_threads=threads, block_bytes=block_mb * MB
            ) as eng:
                path = f"{tmp_dir}/r{threads}_{block_mb}.bin"
                eng.write(path, data)
                t0 = time.perf_counter()
                eng.read(path, out)
                dt = time.perf_counter() - t0
                results[(threads, block_mb)] = data.nbytes / dt / MB
    np.testing.assert_array_equal(out, data)
    return results


def test_deepnvme_calibration(benchmark, emit, tmp_path):
    writes = sweep_write_bandwidth(str(tmp_path))
    reads = benchmark.pedantic(
        sweep_read_bandwidth, args=(str(tmp_path),), rounds=1, iterations=1
    )
    t = Table(
        ["threads", "block MB", "write MB/s", "read MB/s"],
        title="DeepNVMe stand-in: achieved bandwidth on local disk",
        float_fmt="{:.0f}",
    )
    for key in sorted(writes):
        threads, block = key
        t.add_row([threads, block, writes[key], reads[key]])
    emit("deepnvme_calibration", t.render())

    # every configuration must move real data at a sane rate
    assert all(v > 10 for v in writes.values())  # >10 MB/s is "a disk works"
    assert all(v > 10 for v in reads.values())


def test_async_submission_is_prompt(benchmark, tmp_path):
    """Submit must return long before the transfer completes — that gap is
    the overlap the prefetcher and gradient offload live in."""
    data = np.zeros(64 * MB // 8)

    def submit_then_wait():
        with AsyncIOEngine(num_threads=2, block_bytes=4 * MB) as eng:
            t0 = time.perf_counter()
            req = eng.submit_write(str(tmp_path / "big.bin"), data)
            submit_dt = time.perf_counter() - t0
            req.wait()
            total_dt = time.perf_counter() - t0
        return submit_dt, total_dt

    submit_dt, total_dt = benchmark.pedantic(
        submit_then_wait, rounds=1, iterations=1
    )
    assert submit_dt < total_dt
    assert submit_dt < 0.25  # submission is bookkeeping, not I/O
