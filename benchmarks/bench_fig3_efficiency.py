"""Figure 3: efficiency vs bandwidth for the three data streams.

(a) parameters+gradients (batch sweep), (b) optimizer states (batch sweep),
(c) activation checkpoints (hidden-size sweep) — all from Eq. (6) with the
AIT expressions of Sec. 4.1 at the 70 TFlops/GPU achievable peak.

Shape checks quote Sec. 4.2's headline numbers: >50% at 70 GB/s for
params/grads at bsz 1; ~4x more bandwidth needed for optimizer states;
~1.5 TB/s for 90% at bsz 2; 2 GB/s sustains 50% for activations at hd 2K.
"""

import numpy as np

from repro.analytics import (
    EfficiencyModel,
    ait_activation_checkpoints,
    ait_optimizer_states,
    ait_param_grad,
    efficiency,
)
from repro.utils import Table, ascii_line_chart
from repro.utils.units import GB, TB

BATCHES = (1, 2, 4, 8, 16)
HIDDENS = (2048, 8192, 16384, 32768, 65536)


def sweep_param_grad():
    bws = np.logspace(0, 3, 13) * GB  # 1 GB/s .. 1 TB/s
    series = {
        f"bsz={b}": [
            efficiency(ait=ait_param_grad(seq=1024, bsz=b), bw=bw) for bw in bws
        ]
        for b in BATCHES
    }
    return bws, series


def sweep_optimizer():
    bws = np.logspace(0, 3.5, 13) * GB
    series = {
        f"bsz={b}": [
            efficiency(ait=ait_optimizer_states(seq=1024, bsz=b), bw=bw)
            for bw in bws
        ]
        for b in BATCHES
    }
    return bws, series


def sweep_activations():
    bws = np.logspace(-1, 2, 13) * GB  # 0.1 .. 100 GB/s
    series = {
        f"hd={h // 1024}K": [
            efficiency(ait=ait_activation_checkpoints(hidden_dim=h), bw=bw)
            for bw in bws
        ]
        for h in HIDDENS
    }
    return bws, series


def _chart(title, bws, series):
    return ascii_line_chart(
        np.log10(np.asarray(bws) / GB),
        series,
        title=f"{title} (x: log10 GB/s, y: efficiency)",
        height=14,
        width=60,
    )


def test_fig3a_param_grad_bandwidth(benchmark, emit):
    bws, series = benchmark(sweep_param_grad)
    t = Table(
        ["bandwidth GB/s"] + [f"bsz={b}" for b in BATCHES],
        title="Figure 3a — efficiency vs parameter/gradient bandwidth",
        float_fmt="{:.3f}",
    )
    for i, bw in enumerate(bws):
        t.add_row([f"{bw / GB:.1f}"] + [series[f"bsz={b}"][i] for b in BATCHES])
    emit(
        "fig3a_param_grad_efficiency",
        t.render() + "\n\n" + _chart("Fig 3a", bws, series),
    )
    # Sec. 4.2: 70 GB/s -> >50% even at the smallest batch size
    assert efficiency(ait=ait_param_grad(seq=1024, bsz=1), bw=70 * GB) > 0.5
    # monotone in both bandwidth and batch
    for b in BATCHES:
        vals = series[f"bsz={b}"]
        assert vals == sorted(vals)


def test_fig3b_optimizer_bandwidth(benchmark, emit):
    bws, series = benchmark(sweep_optimizer)
    t = Table(
        ["bandwidth GB/s"] + [f"bsz={b}" for b in BATCHES],
        title="Figure 3b — efficiency vs optimizer-state bandwidth",
        float_fmt="{:.3f}",
    )
    for i, bw in enumerate(bws):
        t.add_row([f"{bw / GB:.1f}"] + [series[f"bsz={b}"][i] for b in BATCHES])
    emit(
        "fig3b_optimizer_efficiency",
        t.render() + "\n\n" + _chart("Fig 3b", bws, series),
    )
    # optimizer states need ~4x the bandwidth of params/grads for equal
    # efficiency (AIT ratio, Sec. 4.2)
    e_param = efficiency(ait=ait_param_grad(seq=1024, bsz=2), bw=50 * GB)
    e_opt = efficiency(ait=ait_optimizer_states(seq=1024, bsz=2), bw=200 * GB)
    assert e_param == e_opt
    # ~1.5 TB/s for 90% at bsz 2
    assert efficiency(ait=ait_optimizer_states(seq=1024, bsz=2), bw=1.5 * TB) > 0.9


def test_fig3c_activation_bandwidth(benchmark, emit):
    bws, series = benchmark(sweep_activations)
    t = Table(
        ["bandwidth GB/s"] + [f"hd={h // 1024}K" for h in HIDDENS],
        title="Figure 3c — efficiency vs activation-checkpoint bandwidth",
        float_fmt="{:.3f}",
    )
    for i, bw in enumerate(bws):
        t.add_row(
            [f"{bw / GB:.2f}"] + [series[f"hd={h // 1024}K"][i] for h in HIDDENS]
        )
    emit(
        "fig3c_activation_efficiency",
        t.render() + "\n\n" + _chart("Fig 3c", bws, series),
    )
    # Sec. 4.2: 2 GB/s sustains >50% at hd 2K; <1 GB/s beyond 8K
    m2k = EfficiencyModel(hidden_dim=2048)
    m8k = EfficiencyModel(hidden_dim=8192)
    assert m2k.activation_efficiency(2 * GB) > 0.5
    assert m8k.activation_efficiency(1 * GB) > 0.5
