"""Figure 6c: ZeRO-Infinity vs ZeRO-Offload gradient offload during
backward, 8B model, 4-64 GPUs (Table 6).

Paper: ZeRO-Infinity's bandwidth-centric partitioning writes each rank's
gradient shard over its own PCIe link (aggregate bandwidth), while
ZeRO-Offload funnels gradients through a single link per node — "resulting
in a speedup of nearly 2x at 64 GPUs".  We simulate the backward pass of
the Table 6 configuration at each GPU count and check that the speedup
exceeds 1 everywhere and grows with scale.

The functional layer exhibits the same mechanism: the engine's per-rank
host-link counters show even spreading vs single-link concentration (see
tests/test_core_partition.py::TestBandwidthCentricClaim).
"""

from repro.analytics.model_zoo import FIG6C_CONFIG, FIG6C_GPU_SWEEP
from repro.core.config import OffloadDevice
from repro.hardware import dgx2_cluster
from repro.sim import SimPolicy, SimWorkload, StepSimulator
from repro.utils import Table

INFINITY = SimPolicy(
    name="zero-infinity",
    grad_device=OffloadDevice.CPU,
    optimizer_device=OffloadDevice.CPU,
    bandwidth_centric=True,
    overlap=True,
)
OFFLOAD = SimPolicy(
    name="zero-offload",
    grad_device=OffloadDevice.CPU,
    optimizer_device=OffloadDevice.CPU,
    partition_params=False,
    bandwidth_centric=False,
    overlap=False,
)


def backward_time(sim_result):
    """Backward-phase cost: bwd compute + grad movement on its streams."""
    r = sim_result.result
    relevant = [
        t
        for t in r.tasks
        if t.name.startswith(("compute-bwd", "rs-", "cg-grad", "nc-grad"))
    ]
    start = min(t.start for t in relevant)
    end = max(t.finish for t in relevant)
    return end - start


def cluster_for(gpus: int):
    """A DGX-2 slice: partial nodes model the 4-GPU sweep point.

    On a partial node the single PCIe link ZeRO-Offload funnels through is
    shared by fewer GPUs, so its per-GPU share rises — which is why the
    paper's speedup *grows* with GPU count.
    """
    import dataclasses

    if gpus >= 16:
        return dgx2_cluster(gpus // 16)
    c = dgx2_cluster(1)
    node = dataclasses.replace(c.node, gpus_per_node=gpus)
    return dataclasses.replace(c, node=node)


def run_fig6c():
    out = {}
    for gpus in FIG6C_GPU_SWEEP:
        cluster = cluster_for(gpus)
        wl = SimWorkload(
            params=FIG6C_CONFIG.params,
            num_layers=FIG6C_CONFIG.num_layers,
            hidden_dim=FIG6C_CONFIG.hidden_dim,
            attn_heads=FIG6C_CONFIG.attn_heads,
            batch_per_gpu=FIG6C_CONFIG.batch_per_gpu,
        )
        inf = StepSimulator(cluster, wl, INFINITY).simulate()
        off = StepSimulator(cluster, wl, OFFLOAD).simulate()
        out[gpus] = {
            "infinity_bwd": backward_time(inf),
            "offload_bwd": backward_time(off),
        }
    return out


def test_fig6c_gradient_offload(benchmark, emit):
    results = benchmark.pedantic(run_fig6c, rounds=1, iterations=1)
    t = Table(
        ["GPUs", "ZeRO-Inf bwd (s)", "ZeRO-Offload bwd (s)", "speedup"],
        title="Figure 6c — backward time with CPU gradient offload (8B model)",
        float_fmt="{:.2f}",
    )
    speedups = []
    for gpus in FIG6C_GPU_SWEEP:
        r = results[gpus]
        s = r["offload_bwd"] / r["infinity_bwd"]
        speedups.append(s)
        t.add_row([gpus, r["infinity_bwd"], r["offload_bwd"], f"{s:.2f}x"])
    emit(
        "fig6c_grad_offload",
        t.render() + "\n\npaper: 'a speedup of nearly 2x at 64 GPUs'",
    )

    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] >= speedups[0]  # grows (or holds) with scale
    assert speedups[-1] > 1.3  # material advantage at 64 GPUs
