"""Figure 5a: training throughput vs model size on 512 GPUs.

Paper: ZeRO-Infinity matches 3D parallelism at 0.5T (~49 TFlops/GPU), keeps
training to 20T (49 -> 43 @10T -> 34 @20T TFlops/GPU) while 3D parallelism
runs out of memory beyond ~650B.  We simulate one optimizer step per
Table 1 configuration (gradient accumulation sized for a ~4K-sequence
effective batch, standard at these scales) and check:

* ZeRO-Infinity and 3D parallelism within ~20% of each other at 0.5T;
* 3D parallelism reports OOM for >=5T;
* ZeRO-Infinity throughput stays substantial (>15 TFlops/GPU) at 20T and
  declines monotonically from 1T upward.
"""

from repro.analytics.model_zoo import TABLE1_CONFIGS
from repro.baselines.threed import best_threed_config
from repro.core.config import OffloadDevice
from repro.hardware import dgx2_cluster
from repro.sim import SimWorkload, StepSimulator
from repro.sim.step_model import policy_from_config
from repro.utils import Table, ascii_bar_chart

MODELS = ["0.5T-32node", "1T-32node", "5T-32node", "10T-32node", "20T-32node"]
PAPER_TFLOPS = {"0.5T-32node": 49, "1T-32node": 49, "10T-32node": 43, "20T-32node": 34}


def run_fig5a():
    cluster = dgx2_cluster(32)
    results = {}
    for name in MODELS:
        cfg = TABLE1_CONFIGS[name]
        accum = max(1, round(4096 / cfg.total_batch))
        wl = SimWorkload.from_config(cfg, grad_accumulation_steps=accum)
        zero = StepSimulator(cluster, wl, policy_from_config(cfg)).simulate()
        td_cfg, td = best_threed_config(
            cluster,
            cfg.params,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            attn_heads=cfg.attn_heads,
            bsz_per_gpu=max(int(cfg.batch_per_gpu), 1),
        )
        results[name] = {
            "zero_tflops": zero.tflops_per_gpu,
            "threed_tflops": td.tflops_per_gpu if td else 0.0,
            "threed_fits": td is not None,
            "accum": accum,
        }
    return results


def test_fig5a_throughput_vs_model_size(benchmark, emit):
    results = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    t = Table(
        ["model", "ZeRO-Inf TF/GPU", "3D par. TF/GPU", "paper ZeRO-Inf", "accum"],
        title="Figure 5a — throughput on 512 GPUs (V100, modeled)",
        float_fmt="{:.1f}",
    )
    for name in MODELS:
        r = results[name]
        t.add_row(
            [
                name.replace("-32node", ""),
                r["zero_tflops"],
                r["threed_tflops"] if r["threed_fits"] else "OOM",
                PAPER_TFLOPS.get(name, "-"),
                r["accum"],
            ]
        )
    chart = ascii_bar_chart(
        [n.replace("-32node", "") for n in MODELS],
        [results[n]["zero_tflops"] for n in MODELS],
        title="ZeRO-Infinity TFlops/GPU",
        value_fmt="{:.1f}",
    )
    emit("fig5a_throughput", t.render() + "\n\n" + chart)

    r05 = results["0.5T-32node"]
    assert r05["threed_fits"]
    assert abs(r05["zero_tflops"] - r05["threed_tflops"]) < 0.35 * r05["zero_tflops"]
    for big in ("5T-32node", "10T-32node", "20T-32node"):
        assert not results[big]["threed_fits"]  # 3D runs out of memory
    seq = [results[n]["zero_tflops"] for n in MODELS[1:]]
    assert seq == sorted(seq, reverse=True)  # monotone decline 1T -> 20T
    assert results["20T-32node"]["zero_tflops"] > 15.0
