"""Live telemetry overhead contract: disabled < 2%, enabled < 10% of a step.

:mod:`repro.obs.live` leaves its hooks compiled into the engine step —
heartbeats per rank turn, phase emits, flight-recorder appends.  That is
only tenable if the disabled fast path (a ``get_live()`` /
``get_flightrec()`` global miss) is effectively free, so this bench
measures both paths on a real engine step and asserts the contract
(measurement model in :mod:`repro.obs.overhead`).
``tests/test_live_overhead.py`` enforces the same bound in tier 1; the
machine-readable result lands in ``BENCH_livetel.json`` at the repo
root, which ``tools/perf_gate.py`` compares future runs against.
"""

import json
import os

from repro.obs.overhead import measure_live_overhead

DISABLED_BUDGET = 0.02  # always-compiled hooks must be invisible
ENABLED_BUDGET = 0.10  # live streaming may tax the step this much


def test_live_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(measure_live_overhead, rounds=1, iterations=1)
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_livetel.json",
    )
    with open(path, "w") as f:
        json.dump(
            {
                "step_disabled_s": report.step_disabled_s,
                "step_enabled_s": report.step_enabled_s,
                "steps_per_s": report.steps_per_s,
                "ops_per_step": report.ops_per_step,
                "samples_per_step": report.samples_per_step,
                "noop_call_s": report.noop_call_s,
                "emit_call_s": report.emit_call_s,
                "disabled_overhead": report.disabled_overhead,
                "enabled_overhead": report.enabled_overhead,
                "disabled_budget": DISABLED_BUDGET,
                "enabled_budget": ENABLED_BUDGET,
            },
            f,
            indent=2,
        )
        f.write("\n")
    emit("BENCH_livetel", report.render())
    assert report.ops_per_step > 5  # the step really is instrumented
    assert report.samples_per_step > 0
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
