"""Figure 6b: maximum hidden size vs memory-centric tiling factor.

Paper setup: a single-layer transformer trained on 16 GPUs with GPU memory
pre-fragmented into 2 GB contiguous chunks "so that all memory allocation
requests larger than 2GB will fail"; without tiling the largest trainable
hidden size is 8K, with tiling factor 16 it reaches 64K.

We run the experiment literally: a :class:`FirstFitAllocator` is
pre-fragmented at 2 GiB and, per (hidden size, tiling factor), we attempt
the allocations the Table 5 configurations require — the fp16 parameter and
gradient of each (possibly tiled) transformer-block linear — and also verify
functionally (at scaled-down dimensions) that a TiledLinear is numerically
identical to the dense layer it replaces.
"""

import numpy as np
import pytest

from repro.core.tiling import TiledLinear, split_sizes
from repro.hardware.memory import AllocationError, FirstFitAllocator
from repro.nn.layers import Linear
from repro.utils import Table
from repro.utils.rng import seeded_rng
from repro.utils.units import GIB

HIDDENS = [8192, 16384, 32768, 65536]
TILE_FACTORS = [1, 2, 4, 8, 16]
GPU_BYTES = 32 * GIB
FRAGMENT = 2 * GIB

# the four block linears of Sec. 3, as (out_multiplier, in_multiplier) of hd
BLOCK_LINEARS = [(3, 1), (1, 1), (4, 1), (1, 4)]


def hidden_fits(hd: int, tiles: int) -> bool:
    """Can one transformer block's params+grads be allocated tile-by-tile?

    Mirrors ZeRO-3 + tiling execution: the tiling factor splits *both*
    dimensions of each linear (DeepSpeed's TiledLinear takes in_splits and
    out_splits — "tiling factor 16" is a 16x16 grid), each tile's fused
    fp16 parameter+gradient region (the MSWM unit of Eq. 4) is resident
    alone, and every allocation must find a contiguous run in the
    pre-fragmented memory.
    """
    allocator = FirstFitAllocator(GPU_BYTES, alignment=256)
    allocator.pre_fragment(FRAGMENT)
    try:
        for out_m, in_m in BLOCK_LINEARS:
            rows, cols = out_m * hd, in_m * hd
            for rows_tile in split_sizes(rows, min(tiles, rows)):
                for cols_tile in split_sizes(cols, min(tiles, cols)):
                    # fused fp16 parameter + gradient of one tile
                    tile_bytes = 2 * 2 * rows_tile * cols_tile
                    allocator.free(allocator.malloc(tile_bytes))
        return True
    except AllocationError:
        return False


def run_fig6b():
    grid = {}
    for tiles in TILE_FACTORS:
        best = 0
        for hd in HIDDENS:
            if hidden_fits(hd, tiles):
                best = hd
        grid[tiles] = best
    return grid


def test_fig6b_max_hidden_vs_tiling(benchmark, emit):
    grid = benchmark(run_fig6b)
    t = Table(
        ["tiling factor", "max hidden size", "paper"],
        title="Figure 6b — largest hidden size under 2 GB fragmentation",
    )
    paper = {1: "8K", 2: "", 4: "", 8: "", 16: "64K"}
    for tiles in TILE_FACTORS:
        hd = grid[tiles]
        t.add_row([tiles, f"{hd // 1024}K" if hd else "OOM", paper.get(tiles, "")])
    emit("fig6b_tiling", t.render())

    # paper endpoints: 8K without tiling, 64K with tiling factor 16
    assert grid[1] == 8192
    assert grid[16] == 65536
    # monotone: more tiles never reduces the reachable hidden size
    sizes = [grid[f] for f in TILE_FACTORS]
    assert sizes == sorted(sizes)


def test_fig6b_functional_equivalence(benchmark, emit):
    """The tiled operator used above is mathematically the dense operator
    (checked at reduced scale so the bench stays fast)."""

    def check():
        rng = seeded_rng(0)
        hd = 64
        dense = Linear(hd, 4 * hd, rng=seeded_rng(1))
        tiled = TiledLinear.from_linear(dense, out_tiles=16)
        x = rng.standard_normal((2, 8, hd)).astype(np.float32)
        y_dense = dense(x)
        y_tiled = tiled(x)
        g = rng.standard_normal(y_dense.shape).astype(np.float32)
        dense.backward(g.copy())
        gx = tiled.backward(g.copy())
        return y_dense, y_tiled, gx

    y_dense, y_tiled, gx = benchmark(check)
    np.testing.assert_allclose(y_tiled, y_dense, rtol=1e-5, atol=1e-6)
    assert gx.shape == (2, 8, 64)
