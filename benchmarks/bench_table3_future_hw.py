"""Table 3: bandwidth requirements for ZeRO-Infinity on future accelerators.

Paper (Sec. 9): on a 512-device cluster, a V100-class device needs ~3 GB/s
to slow memory (1.5 TB/s aggregate) and ~70 GB/s device-to-device; devices
with 10x/100x more achievable compute need proportionally more.  We derive
every row from the Sec. 4 efficiency model (optimizer-state bound at 90%
efficiency, bsz 2; parameter/gradient bound at 50%, bsz 1) and assert the
linear scaling plus the V100 anchor values.
"""

import pytest

from repro.analytics import EfficiencyModel
from repro.utils import Table
from repro.utils.units import GB, TB

MULTIPLIERS = [("V100", 1.0), ("10x", 10.0), ("100x", 100.0)]
PAPER = {
    "V100": {"peak": 0.07, "slow_dev": 3.0, "slow_agg": 1.5, "gg": 70.0},
    "10x": {"peak": 0.70, "slow_dev": 30.0, "slow_agg": 15.0, "gg": 700.0},
    "100x": {"peak": 7.00, "slow_dev": 300.0, "slow_agg": 150.0, "gg": 7000.0},
}


def run_table3():
    model = EfficiencyModel()
    return {
        name: model.future_hardware_row(peak_multiplier=m)
        for name, m in MULTIPLIERS
    }


def test_table3_future_hardware(benchmark, emit):
    rows = benchmark(run_table3)
    t = Table(
        [
            "device",
            "peak PFlops",
            "slow-mem GB/s/dev (paper)",
            "slow-mem agg TB/s (paper)",
            "dev-dev GB/s (paper)",
        ],
        title="Table 3 — bandwidth needs at 512 devices (derived from Eq. 6)",
    )
    for name, _ in MULTIPLIERS:
        r = rows[name]
        p = PAPER[name]
        t.add_row(
            [
                name,
                f"{r['peak_pflops_per_device']:.2f}",
                f"{r['slow_memory_bw_per_device'] / GB:.1f} ({p['slow_dev']})",
                f"{r['slow_memory_aggregate_bw'] / TB:.2f} ({p['slow_agg']})",
                f"{r['gpu_to_gpu_bw'] / GB:.0f} ({p['gg']})",
            ]
        )
    emit("table3_future_hw", t.render())

    v100 = rows["V100"]
    assert v100["slow_memory_bw_per_device"] == pytest.approx(3.0 * GB, rel=0.3)
    assert v100["slow_memory_aggregate_bw"] == pytest.approx(1.5 * TB, rel=0.3)
    assert v100["gpu_to_gpu_bw"] == pytest.approx(70 * GB, rel=0.05)
    for name, m in MULTIPLIERS[1:]:
        assert rows[name]["gpu_to_gpu_bw"] == pytest.approx(
            m * v100["gpu_to_gpu_bw"]
        )
        assert rows[name]["slow_memory_aggregate_bw"] == pytest.approx(
            m * v100["slow_memory_aggregate_bw"]
        )
