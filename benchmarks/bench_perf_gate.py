"""Run the perf regression gate inside the bench suite.

``tools/perf_gate.py`` is the standalone CLI; this bench reuses its
comparison logic so every bench run also checks the committed
``BENCH_*.json`` baselines and persists the comparison table under
``benchmarks/reports/`` (and thus into ``INDEX.md``).

Only the perfscope baseline is gated here — the memscope measurement is
already exercised by its own bench, and re-measuring it would double the
suite's wall-clock for no extra signal.  Run the CLI for the full gate.
"""

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "perf_gate.py",
)
_spec = importlib.util.spec_from_file_location("perf_gate", _TOOL)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def test_perf_gate_perfscope(emit, benchmark):
    baseline = perf_gate._load(
        os.path.join(perf_gate.REPO_ROOT, "BENCH_perfscope.json")
    )
    assert baseline is not None, (
        "no committed BENCH_perfscope.json — run `python tools/perf_gate.py"
        " --update` (or the perfscope bench) and commit the result"
    )
    measured = benchmark.pedantic(
        perf_gate.measure_perfscope, rounds=1, iterations=1
    )
    rows = perf_gate.gate_rows("perfscope", baseline, measured)
    emit("perf_gate", perf_gate.render_rows(rows))
    failures = [r for r in rows if not r[-1]]
    assert not failures, perf_gate.render_rows(failures)
