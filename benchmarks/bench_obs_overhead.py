"""Tracer overhead contract: disabled < 2%, enabled < 10% of a step.

The telemetry layer (:mod:`repro.obs`) leaves its instrumentation compiled
into every hot path — offload swaps, collectives, aio submit/complete, the
engine step phases.  That is only tenable if the disabled fast path is
effectively free and the enabled path stays a small tax, so this bench
measures both on a real engine step and *asserts* the contract rather than
just reporting it (see :mod:`repro.obs.overhead` for the measurement
model).  ``tests/test_obs_overhead.py`` enforces the same bound in tier 1.
"""

from repro.obs.overhead import measure_overhead

DISABLED_BUDGET = 0.02  # always-on instrumentation must be invisible
ENABLED_BUDGET = 0.10  # actively tracing may tax the step this much


def test_tracer_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    emit("obs_overhead", report.render())
    assert report.spans_per_step > 100  # the step really is instrumented
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
