"""Memory-scope overhead contract: disabled < 2%, enabled < 10% of a step.

:mod:`repro.obs.memscope` leaves its ledger hooks compiled into every
allocation choke point — gather buffers, gradient buckets, offload swaps,
the pinned pool, activation checkpoints.  Like the tracer, that is only
tenable if the disabled fast path is effectively free and active
accounting stays a small tax, so this bench measures both on a real
engine step and asserts the contract (measurement model in
:mod:`repro.obs.overhead`).  ``tests/test_memscope_overhead.py`` enforces
the same bound in tier 1; the machine-readable result lands in
``BENCH_memscope.json`` at the repo root.
"""

import json
import os

from repro.obs.overhead import measure_memscope_overhead

DISABLED_BUDGET = 0.02  # always-on ledger hooks must be invisible
ENABLED_BUDGET = 0.10  # live accounting may tax the step this much


def test_memscope_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(
        measure_memscope_overhead, rounds=1, iterations=1
    )
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_memscope.json",
    )
    with open(path, "w") as f:
        json.dump(
            {
                "step_disabled_s": report.step_disabled_s,
                "step_enabled_s": report.step_enabled_s,
                "ops_per_step": report.ops_per_step,
                "noop_call_s": report.noop_call_s,
                "op_call_s": report.op_call_s,
                "disabled_overhead": report.disabled_overhead,
                "enabled_overhead": report.enabled_overhead,
                "disabled_budget": DISABLED_BUDGET,
                "enabled_budget": ENABLED_BUDGET,
            },
            f,
            indent=2,
        )
        f.write("\n")
    emit("BENCH_memscope", report.render())
    assert report.ops_per_step > 50  # the step really is instrumented
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
