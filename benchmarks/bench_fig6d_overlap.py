"""Figure 6d: speedup from communication overlap and prefetching vs batch
size (8B model, 64 GPUs, Table 7).

Paper: "prefetching and overlapping are crucial to achieving good
performance at small batch sizes per GPU, while its impact diminishes at
large batch sizes."  We simulate the Table 7 batch sweep with the
overlap-centric design on and off and assert that the relative gain is
largest at batch 2 and decays monotonically toward batch 16.

The functional engine demonstrates the same machinery end-to-end: with
prefetching on, NVMe reads for future submodules complete before their
gather (engine.report().prefetch_hits > 0 in tests/test_engine.py).
"""

from repro.analytics.model_zoo import FIG6D_BATCH_SWEEP, FIG6D_CONFIG
from repro.core.config import Strategy
from repro.hardware import dgx2_cluster
from repro.sim import SimPolicy, SimWorkload, StepSimulator, policy_for_strategy
from repro.utils import Table, ascii_bar_chart


def run_fig6d():
    cluster = dgx2_cluster(4)  # 64 GPUs
    on_policy = policy_for_strategy(Strategy.ZERO_3)
    off_policy = SimPolicy(name="no-overlap", overlap=False)
    out = {}
    for bsz in FIG6D_BATCH_SWEEP:
        wl = SimWorkload(
            params=FIG6D_CONFIG.params,
            num_layers=FIG6D_CONFIG.num_layers,
            hidden_dim=FIG6D_CONFIG.hidden_dim,
            attn_heads=FIG6D_CONFIG.attn_heads,
            batch_per_gpu=bsz,
        )
        on = StepSimulator(cluster, wl, on_policy).simulate()
        off = StepSimulator(cluster, wl, off_policy).simulate()
        out[bsz] = {
            "on_tflops": on.tflops_per_gpu,
            "off_tflops": off.tflops_per_gpu,
            "speedup": off.total_time / on.total_time,
        }
    return out


def test_fig6d_overlap_speedup(benchmark, emit):
    results = benchmark.pedantic(run_fig6d, rounds=1, iterations=1)
    t = Table(
        ["batch/GPU", "overlap TF/GPU", "no-overlap TF/GPU", "speedup"],
        title="Figure 6d — communication overlap & prefetching (8B, 64 GPUs)",
        float_fmt="{:.1f}",
    )
    for bsz in FIG6D_BATCH_SWEEP:
        r = results[bsz]
        t.add_row([bsz, r["on_tflops"], r["off_tflops"], f"{r['speedup']:.2f}x"])
    chart = ascii_bar_chart(
        [f"bsz={b}" for b in FIG6D_BATCH_SWEEP],
        [results[b]["speedup"] for b in FIG6D_BATCH_SWEEP],
        title="overlap speedup (paper: large at small batch, ~1 at bsz 16)",
        value_fmt="{:.2f}x",
    )
    emit("fig6d_overlap", t.render() + "\n\n" + chart)

    speedups = [results[b]["speedup"] for b in FIG6D_BATCH_SWEEP]
    assert speedups[0] > 1.15  # crucial at small batch
    assert speedups[-1] < speedups[0]  # diminishes at large batch
    assert all(a >= b - 1e-9 for a, b in zip(speedups, speedups[1:]))  # monotone
    assert speedups[-1] >= 1.0
