"""Figure 5b: superlinear weak scaling of a 1T model, 64 -> 512 GPUs.

Paper: with batch per node held constant, aggregate throughput exceeds
perfect linear scaling because aggregate PCIe/NVMe bandwidth and CPU compute
grow with nodes while the per-GPU load is fixed; already 2.8 PFlops
(44 TFlops/GPU) at 4 nodes.  We simulate the sweep and assert:

* per-GPU throughput strictly increases with node count (the superlinear
  signature), and
* aggregate PFlops at 32 nodes exceeds 8x the 4-node value (perfect linear
  would be exactly 8x).
"""

from repro.analytics.model_zoo import TABLE1_CONFIGS
from repro.core.config import Strategy
from repro.hardware import dgx2_cluster
from repro.sim import SimWorkload, StepSimulator, policy_for_strategy
from repro.utils import Table, ascii_bar_chart

NODES = (4, 8, 16, 32)


def run_fig5b():
    cfg = TABLE1_CONFIGS["1T-32node"]
    out = {}
    for nodes in NODES:
        wl = SimWorkload(
            params=cfg.params,
            num_layers=cfg.num_layers,
            hidden_dim=cfg.hidden_dim,
            attn_heads=cfg.attn_heads,
            batch_per_gpu=cfg.batch_per_gpu,  # constant/node: weak scaling
            mp_degree=4,
            grad_accumulation_steps=4,
        )
        b = StepSimulator(
            dgx2_cluster(nodes), wl, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        out[nodes] = {
            "tflops_per_gpu": b.tflops_per_gpu,
            "aggregate_pflops": b.tflops_per_gpu * nodes * 16 / 1000,
        }
    return out


def test_fig5b_superlinear_scaling(benchmark, emit):
    results = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    t = Table(
        ["nodes", "GPUs", "TFlops/GPU", "aggregate PFlops", "vs linear-from-4"],
        title="Figure 5b — weak scaling of the 1T model (NVMe offload)",
        float_fmt="{:.2f}",
    )
    base = results[4]["aggregate_pflops"]
    for nodes in NODES:
        r = results[nodes]
        linear = base * nodes / 4
        t.add_row(
            [
                nodes,
                nodes * 16,
                r["tflops_per_gpu"],
                r["aggregate_pflops"],
                f"{r['aggregate_pflops'] / linear:.2f}x",
            ]
        )
    chart = ascii_bar_chart(
        [f"{n} nodes" for n in NODES],
        [results[n]["aggregate_pflops"] for n in NODES],
        title="aggregate PFlops (linear scaling would multiply the first bar)",
        value_fmt="{:.2f}",
    )
    emit("fig5b_superlinear", t.render() + "\n\n" + chart)

    per_gpu = [results[n]["tflops_per_gpu"] for n in NODES]
    assert per_gpu == sorted(per_gpu)  # strictly improving per-GPU
    assert per_gpu[-1] > per_gpu[0]
    # superlinear: 8x nodes -> more than 8x throughput
    assert results[32]["aggregate_pflops"] > 8 * results[4]["aggregate_pflops"]
