"""Figure 6e: overhead of offloading activation checkpoints to CPU vs
hidden size (Table 8 configurations).

Paper: CPU offload of activation checkpoints "reduces the training
throughput by up to 1.2x for small hidden sizes, but for hidden sizes 32K
and 64K, the impact is minimal" — the Sec. 4.1 AIT analysis in action
(checkpoint AIT grows linearly with hd, Eq. 11).  We simulate each Table 8
row with checkpoint offload on and off and assert the overhead shrinks
monotonically with hidden size, from >5% at 2K to <3% at 64K.
"""

from repro.analytics.model_zoo import FIG6E_CONFIGS
from repro.hardware import dgx2_cluster
from repro.sim import SimPolicy, SimWorkload, StepSimulator
from repro.utils import Table, ascii_bar_chart


def run_fig6e():
    out = {}
    for hd, cfg in sorted(FIG6E_CONFIGS.items()):
        cluster = dgx2_cluster(cfg.num_nodes)
        wl = SimWorkload.from_config(cfg)
        base = SimPolicy(
            name="no-act-offload",
            optimizer_device=cfg.optimizer_device,
            act_offload=False,
        )
        offl = SimPolicy(
            name="act-offload",
            optimizer_device=cfg.optimizer_device,
            act_offload=True,
        )
        t_base = StepSimulator(cluster, wl, base).simulate()
        t_off = StepSimulator(cluster, wl, offl).simulate()
        out[hd] = {
            "base_tflops": t_base.tflops_per_gpu,
            "off_tflops": t_off.tflops_per_gpu,
            "slowdown": t_off.total_time / t_base.total_time,
        }
    return out


def test_fig6e_activation_offload(benchmark, emit):
    results = benchmark.pedantic(run_fig6e, rounds=1, iterations=1)
    hiddens = sorted(results)
    t = Table(
        ["hidden", "TF/GPU (no offload)", "TF/GPU (offload)", "slowdown"],
        title="Figure 6e — activation checkpoint CPU offload overhead",
        float_fmt="{:.1f}",
    )
    for hd in hiddens:
        r = results[hd]
        t.add_row(
            [
                f"{hd // 1024}K",
                r["base_tflops"],
                r["off_tflops"],
                f"{r['slowdown']:.3f}x",
            ]
        )
    chart = ascii_bar_chart(
        [f"hd={h // 1024}K" for h in hiddens],
        [results[h]["slowdown"] for h in hiddens],
        title="slowdown from checkpoint offload (paper: up to 1.2x at small hd)",
        value_fmt="{:.3f}x",
    )
    emit("fig6e_act_offload", t.render() + "\n\n" + chart)

    slowdowns = [results[h]["slowdown"] for h in hiddens]
    assert slowdowns[0] > 1.05  # visible cost at hd 2K
    assert slowdowns[-1] < 1.03  # negligible at 64K
    assert all(a >= b - 1e-9 for a, b in zip(slowdowns, slowdowns[1:]))
