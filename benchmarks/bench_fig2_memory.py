"""Figure 2: (a) memory requirements of massive models; (b) DGX-2 cluster
memory and bandwidth.

Regenerates both tables from the Sec. 3 memory model and the hardware
topology presets, and checks the printed values against the paper's rows
(memory columns are binary TiB; see tests/test_analytics.py).
"""

import pytest

from repro.analytics import (
    FIG2A_ROWS,
    activation_checkpoint_bytes,
    awm_bytes,
    full_activation_bytes,
    model_states_bytes,
    mswm_bytes,
    transformer_params,
)
from repro.hardware import CLUSTER_PRESETS
from repro.utils import Table
from repro.utils.units import GB, TB

TIB = 2**40
GIB = 2**30


def build_fig2a():
    rows = []
    for label, nl, hd, heads in FIG2A_ROWS:
        params = transformer_params(nl, hd)
        rows.append(
            {
                "params": params,
                "layers": nl,
                "hidden": hd,
                "heads": heads,
                "states_tib": model_states_bytes(params) / TIB,
                "act_tib": full_activation_bytes(
                    bsz=32, seq=1024, hidden_dim=hd, num_layers=nl, attn_heads=heads
                )
                / TIB,
                "ckpt_tib": activation_checkpoint_bytes(
                    bsz=32, seq=1024, hidden_dim=hd, num_layers=nl
                )
                / TIB,
                "mswm_gib": mswm_bytes(hd) / GIB,
                "awm_gib": awm_bytes(
                    bsz=4, seq=1024, hidden_dim=hd, attn_heads=heads
                )
                / GIB,
            }
        )
    return rows


def build_fig2b():
    rows = []
    for nodes, cluster in sorted(CLUSTER_PRESETS.items()):
        node = cluster.node
        rows.append(
            {
                "nodes": nodes,
                "gpus": cluster.num_gpus,
                "gpu_tb": cluster.gpu_memory_bytes / TB,
                "cpu_tb": cluster.cpu_memory_bytes / TB,
                "nvme_tb": cluster.nvme_bytes / TB,
                "gg_bw": cluster.gpu_to_gpu_bw() / GB,
                "cpu_bw": node.cpu_bw_per_gpu_parallel / GB,
                "nvme_bw": node.nvme_bw_per_gpu_parallel / GB,
            }
        )
    return rows


def test_fig2a_memory_requirements(benchmark, emit):
    rows = benchmark(build_fig2a)
    t = Table(
        [
            "params",
            "layers",
            "hidden",
            "heads",
            "states TiB",
            "act TiB/node",
            "ckpt TiB/node",
            "MSWM GiB",
            "AWM GiB",
        ],
        title="Figure 2a — memory requirements (bsz 32/node, 4/GPU; seq 1024)",
    )
    for r in rows:
        t.add_row(
            [
                f"{r['params'] / 1e12:.2f}T",
                r["layers"],
                r["hidden"],
                r["heads"],
                r["states_tib"],
                r["act_tib"],
                r["ckpt_tib"],
                r["mswm_gib"],
                r["awm_gib"],
            ]
        )
    emit("fig2a_memory_requirements", t.render())

    # paper row checks (model states column: 1.83 ... 1845.70)
    expected_states = [1.83, 9.16, 18.31, 182.81, 1845.70]
    for r, exp in zip(rows, expected_states):
        assert r["states_tib"] == pytest.approx(exp, rel=0.01)
    expected_ckpt = [0.05, 0.12, 0.20, 0.76, 3.08]
    for r, exp in zip(rows, expected_ckpt):
        assert r["ckpt_tib"] == pytest.approx(exp, rel=0.1)


def test_fig2b_cluster_table(benchmark, emit):
    rows = benchmark(build_fig2b)
    t = Table(
        [
            "nodes",
            "GPUs",
            "GPU TB",
            "CPU TB",
            "NVMe TB",
            "GPU-GPU GB/s",
            "CPU GB/s/GPU",
            "NVMe GB/s/GPU",
        ],
        title="Figure 2b — aggregate memory and achievable bandwidth, DGX-2",
    )
    for r in rows:
        t.add_row(
            [
                r["nodes"],
                r["gpus"],
                r["gpu_tb"],
                r["cpu_tb"],
                r["nvme_tb"],
                r["gg_bw"],
                r["cpu_bw"],
                r["nvme_bw"],
            ]
        )
    emit("fig2b_cluster_memory_bandwidth", t.render())

    by_nodes = {r["nodes"]: r for r in rows}
    assert by_nodes[64]["nvme_tb"] == pytest.approx(1792.0)
    assert by_nodes[96]["cpu_tb"] == pytest.approx(144.0)
    assert by_nodes[16]["cpu_bw"] == pytest.approx(3.0)
    assert by_nodes[16]["nvme_bw"] == pytest.approx(1.6)
