"""Process-parallel backend speedup: mp vs the in-process loop oracle.

The whole point of :class:`~repro.comm.mp_backend.MultiprocBackend` is
that forward/backward — the only non-replicated work — runs in parallel
across rank processes, so a world-4 run should approach 4x the loop
backend's step rate on a host with four idle cores.  This bench runs the
same compute-heavy seeded workload through both backends via
:func:`repro.workloads.calibrate.measure_mp_speedup`, asserts the
numerics are **bit-identical** (a speedup over wrong numerics is
meaningless), and persists the machine-readable result to
``BENCH_mp.json`` at the repo root, where ``tools/perf_gate.py``
ratchets the mp step rate against the committed baseline.

Speedup accounting is honest about the host: on >= 2 cores the measured
ratio is authoritative (``speedup_basis == "measured"``) and must clear
``MP_TARGET_SPEEDUP`` (1.5x at world 4); on a single-core box the ranks
time-slice one CPU, so only the *projected* speedup — per-turn compute
plus measured transport, see the projection model in ``calibrate.py`` —
carries signal, and the measured ratio (which can only show the
transport tax) is reported but not asserted.
"""

import json
import os

from repro.workloads.calibrate import MP_TARGET_SPEEDUP, measure_mp_speedup


def test_mp_backend_speedup_contract(emit, benchmark):
    report = benchmark.pedantic(measure_mp_speedup, rounds=1, iterations=1)
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_mp.json",
    )
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    lines = [
        f"world {report['world']}  steps {report['steps']}"
        f"  cpu_count {report['cpu_count']}",
        f"loop  {report['loop_steps_per_s']:.3f} steps/s",
        f"mp    {report['mp_steps_per_s']:.3f} steps/s",
        f"speedup measured {report['speedup_measured']:.2f}x"
        f"  projected {report['speedup_projected']:.2f}x"
        f"  basis {report['speedup_basis']}",
        f"exchange bytes {report['transport']['exchange_bytes']}"
        f"  rendezvous {report['transport']['barrier_waits']}",
    ]
    emit("BENCH_mp", "\n".join(lines))

    assert report["bit_identical"]
    assert report["speedup_projected"] >= MP_TARGET_SPEEDUP
    if report["cpu_count"] >= 2:
        # real parallelism available: the measured ratio is the contract
        assert report["speedup_measured"] >= MP_TARGET_SPEEDUP
    else:
        assert report["speedup_basis"] == "projected"
