"""Checker overhead contract: the disabled fast path costs < 2% of a step.

The checking subsystem (:mod:`repro.check`) leaves its event sites compiled
into the hot paths — partitioner lifecycle transitions, every collective,
every aio submit/wait, pinned-buffer returns.  The deal that makes that
acceptable is the same one the tracer struck (``bench_obs_overhead.py``):
when no checker is installed, each site pays one attribute load plus an
``is None`` test and nothing else.  This bench measures that gate, counts
the events a real sanitized step dispatches, and *asserts* the contract
(see :mod:`repro.check.overhead` for the measurement model).

``tests/test_check.py`` proves sanitized runs are clean; this bench proves
unsanitized runs are free.
"""

from repro.check.overhead import measure_check_overhead

DISABLED_BUDGET = 0.02  # compiled-in event sites must be invisible
ENABLED_BUDGET = 0.50  # a fully sanitized step may tax this much
ATTEMPTS = 3  # timing on loaded CI boxes flakes; a regression fails all


def test_check_overhead_contract(emit, benchmark):
    report = benchmark.pedantic(measure_check_overhead, rounds=1, iterations=1)
    for _ in range(ATTEMPTS - 1):
        if (
            report.disabled_overhead < DISABLED_BUDGET
            and report.enabled_overhead < ENABLED_BUDGET
        ):
            break
        report = measure_check_overhead()
    emit("check_overhead", report.render())
    assert report.events_per_step > 100, report.render()  # really sanitized
    assert report.violations == 0, report.render()  # and really clean
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
