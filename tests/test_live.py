"""Live telemetry plane: samples, seqlock ring, watchdog, flight recorder.

Loop-backend coverage of ISSUE 9 (process-spawning twins live in
``tests/test_live_mp.py``): sample encoding, the shm seqlock slot
protocol, watchdog state transitions and pressure alarms under injected
wall-clocks, end-to-end loop training with the plane installed
(streaming, straggler detection, JSONL shards, abort-path flushes),
latency quantiles, merged-trace clock normalization, and the crash
flight recorder's determinism + postmortem bundle contract.
"""

import json
import os

import pytest

from repro.comm.launcher import TraceShard
from repro.comm.shm import TelemetryRing
from repro.faults import FaultUnrecoverable, use_faults
from repro.obs import get_registry, merged_chrome_trace
from repro.obs.flightrec import (
    FlightRecorder,
    canonical_json,
    dump_postmortem,
    trace_tail_events,
    use_flightrec,
)
from repro.obs.live import (
    HealthWatchdog,
    LiveConfig,
    LivePlane,
    TelemetrySample,
    get_live,
    merge_telemetry_shards,
    render_dashboard,
    use_live,
)
from repro.obs.tracer import Tracer, trace_span, use_tracer
from repro.workloads.calibrate import CalibSpec, run_training


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def sample(rank, hb, **kw):
    defaults = dict(step=0, phase="turn", steps_per_s=0.0)
    defaults.update(kw)
    return TelemetrySample(rank=rank, hb=hb, **defaults)


class TestTelemetrySample:
    def test_bytes_roundtrip(self):
        s = sample(
            1,
            7,
            step=3,
            phase="optimizer_step",
            tier_bytes={"cpu": 10, "pinned": 2},
            stall_us={"pinned_wait": 12.5},
            delay_us=5000,
        )
        assert TelemetrySample.from_bytes(s.to_bytes()) == s

    def test_encoding_is_canonical(self):
        # sorted keys + compact separators: the wire format is stable
        raw = sample(0, 1).to_bytes()
        assert raw == canonical_json(json.loads(raw))


class TestTelemetryRing:
    def test_publish_and_read(self):
        ring = TelemetryRing(2, slot_capacity=256)
        try:
            assert ring.read_all() == [None, None]
            ring.put_sample(0, b"alpha")
            ring.put_sample(1, b"beta")
            assert ring.read_sample(0) == b"alpha"
            assert ring.read_all() == [b"alpha", b"beta"]
            ring.put_sample(0, b"alpha2")  # latest wins
            assert ring.read_sample(0) == b"alpha2"
        finally:
            ring.destroy()

    def test_oversized_sample_rejected(self):
        ring = TelemetryRing(1, slot_capacity=8)
        try:
            with pytest.raises(ValueError, match="slot capacity"):
                ring.put_sample(0, b"x" * 9)
        finally:
            ring.destroy()

    def test_mid_write_slot_reads_as_no_news(self):
        ring = TelemetryRing(1, slot_capacity=64)
        try:
            ring.put_sample(0, b"ok")
            ring._header(0)[0] = int(ring._header(0)[0]) | 1  # wedge: odd seq
            assert ring.read_sample(0) is None
        finally:
            ring.destroy()

    def test_destroy_idempotent(self):
        ring = TelemetryRing(1)
        ring.destroy()
        ring.destroy()


class TestHealthWatchdog:
    def test_behind_and_recovered(self):
        wd = HealthWatchdog(3, LiveConfig(skew_heartbeats=3))
        wd.observe([sample(0, 10), sample(1, 10), sample(2, 2)], now_s=0.0)
        assert wd.states[2] == "behind"
        events, _ = wd.observe(
            [sample(0, 11), sample(1, 11), sample(2, 10)], now_s=1.0
        )
        assert wd.states[2] == "ok"
        assert [e.kind for e in events] == ["recovered"]
        # transitions surfaced as health.* counters
        assert get_registry().get("health.behind").value == 1
        assert get_registry().get("health.recovered").value == 1

    def test_straggler_on_delay_excess(self):
        wd = HealthWatchdog(2, LiveConfig(straggler_delay_us=1000))
        wd.observe(
            [sample(0, 5, delay_us=0), sample(1, 5, delay_us=15000)], now_s=0.0
        )
        assert wd.states == {0: "ok", 1: "straggler"}

    def test_stalled_then_dead_on_heartbeat_deadline(self):
        cfg = LiveConfig(deadline_s=5.0, dead_after_s=30.0)
        wd = HealthWatchdog(2, cfg)
        wd.observe([sample(0, 1), sample(1, 1)], now_s=0.0)
        assert wd.states == {0: "ok", 1: "ok"}
        # rank 1's heartbeat freezes; rank 0 keeps beating
        wd.observe([sample(0, 2), sample(1, 1)], now_s=6.0)
        assert wd.states[1] == "stalled"
        wd.observe([sample(0, 3), sample(1, 1)], now_s=31.0)
        assert wd.states[1] == "dead"
        assert wd.states[0] == "ok"

    def test_never_seen_rank_goes_dead(self):
        wd = HealthWatchdog(2, LiveConfig(dead_after_s=30.0))
        wd.observe([sample(0, 1), None], now_s=0.0)
        assert wd.states[1] == "ok"  # grace period
        wd.observe([sample(0, 2), None], now_s=31.0)
        assert wd.states[1] == "dead"

    def test_pinned_pressure_alarm_surfaces_once(self):
        cfg = LiveConfig(pinned_capacity_bytes=100, pinned_alarm_fraction=0.9)
        wd = HealthWatchdog(1, cfg)
        s = sample(0, 1, tier_bytes={"pinned": 95})
        _, alarms = wd.observe([s], now_s=0.0)
        assert [a.kind for a in alarms] == ["pinned_pressure"]
        _, alarms = wd.observe([s], now_s=1.0)
        assert [a.kind for a in alarms] == ["pinned_pressure"]  # still active
        # ...but the counter/trace surface fired exactly once
        assert get_registry().get("health.pinned_pressure").value == 1

    def test_retry_storm_alarm(self):
        wd = HealthWatchdog(1, LiveConfig(retry_storm=8))
        _, alarms = wd.observe(
            [sample(0, 1, step_retries=3, io_retries=5)], now_s=0.0
        )
        assert [a.kind for a in alarms] == ["retry_storm"]

    def test_recorder_gets_volatile_health_events(self):
        rec = FlightRecorder()
        wd = HealthWatchdog(2, LiveConfig(), recorder=rec)
        wd.observe([sample(0, 9), sample(1, 1)], now_s=0.0)
        evs = rec.events(1)
        assert [(e.kind, e.name, e.volatile) for e in evs] == [
            ("health", "behind", True)
        ]


SPEC = CalibSpec(world=2, steps=3)
STRAGGLER = "straggler@rank.begin:rank=1,times=3,delay_us=5000"


class TestLoopIntegration:
    def test_plane_streams_and_engine_hooks_fire(self):
        rec = FlightRecorder()
        plane = LivePlane(world=2, config=LiveConfig(), recorder=rec)
        with use_flightrec(rec), use_live(plane):
            assert get_live() is plane
            run_training(SPEC)
            view = plane.view()
        assert get_live() is None
        assert plane.samples_published > 0
        assert all(s is not None for s in view.samples)
        assert view.worst_state == "ok"
        for s in view.samples:
            assert s.schema == 1
            assert s.step == SPEC.steps  # final step_end published
            assert s.hb == SPEC.steps  # one heartbeat per local turn
        # canonical flight events: per-rank phases + run-ring comm/step
        tail = rec.canonical_tail(0)
        assert [d["name"] for d in tail[:2]] == ["forward", "backward"]
        assert [d["pos"] for d in tail] == list(range(len(tail)))
        run_tail = [d["name"] for d in rec.canonical_tail(None)]
        assert run_tail.count("step_sync") == SPEC.steps
        assert run_tail.count("step_end") == SPEC.steps

    def test_loop_straggler_detected_within_skew(self):
        plane = LivePlane(world=2, config=LiveConfig(straggler_delay_us=1000))
        with use_live(plane), use_faults(STRAGGLER, seed=3):
            run_training(SPEC)
            view = plane.view()
        assert view.states[1] == "straggler"
        assert view.states[0] == "ok"
        assert view.samples[1].delay_us > view.samples[0].delay_us
        assert get_registry().get("health.straggler").value >= 1

    def test_jsonl_shards_written_and_merged(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        plane = LivePlane(world=2, config=LiveConfig(jsonl_path=path))
        with use_live(plane):
            run_training(SPEC)
        shards = [f"{path}.rank{r}" for r in range(2)]
        assert all(os.path.exists(p) for p in shards)
        merged = merge_telemetry_shards(shards)
        assert {r["rank"] for r in merged} == {0, 1}
        stamps = [r["mono_us"] for r in merged]
        assert stamps == sorted(stamps)  # one monotonic timeline

    def test_abort_path_flushes_telemetry_shards(self, tmp_path):
        # an exhausted aio read budget forces a step replay, which runs
        # _abort_step_cleanup -> live.flush(); with fewer records than the
        # logger's flush_every the shard is only on disk if that fired
        from repro.core import (
            OffloadConfig,
            OffloadDevice,
            ZeroConfig,
            ZeroInfinityEngine,
            ZeroStage,
        )
        from repro.nn import GPTModel, TransformerConfig
        from repro.utils.rng import seeded_rng

        path = str(tmp_path / "tel.jsonl")
        cfg = ZeroConfig(
            world_size=2,
            stage=ZeroStage.PARAMETERS,
            step_retries=2,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        model_cfg = TransformerConfig(
            num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, max_seq=16
        )
        rng = seeded_rng(5)
        batches = [
            (rng.integers(0, 64, (2, 8)), rng.integers(0, 64, (2, 8)))
            for _ in range(2)
        ]
        plane = LivePlane(world=2, config=LiveConfig(jsonl_path=path))
        with ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(7)),
            lr=1e-2,
        ) as eng:
            with use_live(plane):
                # armed only around the steps, like the chaos suite
                with use_faults("io_error@aio.read:times=6", seed=0):
                    eng.train_step(batches)
                assert get_registry().get("faults.step_retries").value >= 1
                shard = f"{path}.rank0"
                assert os.path.exists(shard)
                with open(shard) as fh:
                    rows = [json.loads(line) for line in fh if line.strip()]
                assert rows and all(r["event"] == "telemetry" for r in rows)

    def test_flush_is_idempotent_and_safe_after_close(self, tmp_path):
        plane = LivePlane(
            world=1, config=LiveConfig(jsonl_path=str(tmp_path / "t.jsonl"))
        )
        plane.emit(step=0, phase="step_end")
        plane.flush()
        plane.flush()
        plane.close()
        plane.flush()  # must not raise on closed sinks
        plane.close()


class TestQuantiles:
    def test_histogram_snapshot_has_p95(self):
        h = get_registry().histogram("lat.us")
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p95"] >= 90

    def test_summary_and_dashboard_render_quantiles(self):
        from repro.obs.export import telemetry_summary

        h = get_registry().histogram("fetch.us")
        for v in (1.0, 2.0, 100.0):
            h.observe(v)
        assert "p95" in telemetry_summary(metrics=get_registry())
        plane = LivePlane(world=1, config=LiveConfig())
        plane.emit(step=0, phase="step_end")
        text = render_dashboard(plane.view(), registry=get_registry())
        assert "fetch.us" in text and "p95" in text

    def test_dashboard_rows_and_alarms(self):
        plane = LivePlane(world=2, config=LiveConfig(retry_storm=1))
        plane.emit(step=4, phase="step_end")
        view = plane.view()
        text = render_dashboard(view)
        assert "world 2" in text and "step 4" in text
        assert text.count("step_end") == 2


class TestMergedTraceClocks:
    def _shard(self, rank, epoch_ns):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with trace_span("work", cat="compute"):
                pass
        return TraceShard(
            rank, tracer.records(), tracer.lane_names(), 0, epoch_ns
        )

    def test_epochs_normalized_onto_one_timeline(self):
        doc = merged_chrome_trace(
            [self._shard(0, 10_000_000_000), self._shard(1, 10_000_500_000)]
        )
        assert doc["otherData"]["clock"] == "normalized"

        def start(pid):
            return min(
                e["ts"] for e in doc["traceEvents"]
                if e.get("ph") == "X" and e["pid"] == pid
            )

        # rank 1's epoch is 500us after rank 0's -> its spans shift +500us
        assert start(1) - start(0) == pytest.approx(500.0, abs=50.0)

    def test_epochless_shards_stay_per_rank(self):
        doc = merged_chrome_trace([self._shard(0, 0), self._shard(1, 0)])
        assert doc["otherData"]["clock"] == "per-rank"


class TestFlightRecorder:
    def test_canonical_volatile_mismatch_rejected(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="volatile"):
            rec.record("fault", "bit_flip", rank=0, volatile=True)
        with pytest.raises(ValueError, match="volatile"):
            rec.record("health", "behind", rank=0)

    def test_capacity_bound_and_renumbering(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("phase", f"p{i}", rank=0, step=i)
        tail = rec.canonical_tail(0)
        assert [d["name"] for d in tail] == ["p6", "p7", "p8", "p9"]
        assert [d["pos"] for d in tail] == [0, 1, 2, 3]

    def test_canonical_docs_exclude_wall_clock(self):
        rec = FlightRecorder()
        rec.record("comm", "step_sync", step=1)
        (doc,) = rec.canonical_tail(None)
        assert set(doc) == {"kind", "name", "vclock_us", "args", "pos"}

    def test_bundle_bytes_deterministic_for_fixed_seed(self):
        def one_run():
            rec = FlightRecorder()
            plane = LivePlane(world=2, config=LiveConfig(), recorder=rec)
            with use_flightrec(rec), use_live(plane):
                with use_faults(STRAGGLER, seed=3):
                    run_training(SPEC)
            return [
                canonical_json(rec.rank_bundle_doc(r)) for r in rec.ranks()
            ]

        first, second = one_run(), one_run()
        assert first == second
        assert b'"kind":"fault"' in first[1]  # rank 1 recorded its faults

    def test_postmortem_bundle_structure(self, tmp_path):
        rec = FlightRecorder()
        rec.record("phase", "forward", rank=0, step=0)
        rec.record("fault", "bit_flip", rank=0, key="aio.read")
        rec.record("retry", "step_replay", volatile=True, attempt=1)
        rec.note_state(0, phase="forward", step=0)
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with trace_span("swap:read", cat="nvme"):
                pass
        written = dump_postmortem(
            str(tmp_path), "FaultUnrecoverable: checksum",
            recorder=rec, world=1, tracer=tracer,
        )
        names = {os.path.basename(p) for p in written}
        assert names == {
            "events.rank0.json", "state.json", "trace_tail.json",
            "manifest.json",
        }
        bundle = json.loads((tmp_path / "events.rank0.json").read_bytes())
        assert bundle["schema"] == 1
        assert [e["kind"] for e in bundle["events"]] == ["phase", "fault"]
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["reason"].startswith("FaultUnrecoverable")
        assert state["last_state"]["0"]["phase"] == "forward"
        assert [e["kind"] for e in state["volatile_events"]] == ["retry"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["ranks"] == [0]

    def test_trace_tail_matches_runtime_tracer_exactly(self, tmp_path):
        # acceptance: the dumped tail must equal what the live tracer says
        rec = FlightRecorder()
        plane = LivePlane(
            world=2,
            config=LiveConfig(postmortem_dir=str(tmp_path), trace_tail=50),
            recorder=rec,
        )
        tracer = Tracer(enabled=True)
        with use_tracer(tracer), use_flightrec(rec), use_live(plane):
            run_training(SPEC)
            plane.on_terminal("TestTerminal: injected")
        dumped = json.loads((tmp_path / "trace_tail.json").read_text())
        assert dumped == json.loads(
            json.dumps(trace_tail_events(tracer, 50), sort_keys=True)
        )
        assert 0 < len(dumped) <= 50 + 2 * len(tracer.lane_names())

    def test_engine_terminal_fault_dumps_bundle(self, tmp_path):
        # loop-mode half of the chaos-cell acceptance: an unrecoverable
        # fault dumps a complete bundle through the engine's own handler
        rec = FlightRecorder()
        plane = LivePlane(
            world=2,
            config=LiveConfig(postmortem_dir=str(tmp_path)),
            recorder=rec,
        )
        spec = CalibSpec(world=2, steps=2, offload="nvme")
        with use_flightrec(rec), use_live(plane):
            with use_faults("bit_flip@aio.read:times=1000", seed=0):
                with pytest.raises(FaultUnrecoverable):
                    run_training(spec)
        assert (tmp_path / "manifest.json").exists()
        bundle = json.loads((tmp_path / "events.rank0.json").read_text())
        # aio fault sites carry no rank, so the killing fault lands in the
        # shared run ring every shard embeds
        assert "fault" in [e["kind"] for e in bundle["run"]]
        assert [e["kind"] for e in bundle["events"]]  # rank tail non-empty
        state = json.loads((tmp_path / "state.json").read_text())
        assert "FaultUnrecoverable" in state["reason"]


class TestLintRule:
    def test_direct_ring_write_flagged_outside_live(self):
        from repro.check.lint import lint_source

        src = "def f(ring, rank, b):\n    ring.put_sample(rank, b)\n"
        assert [
            f.rule for f in lint_source(src, "repro/core/prefetch.py")
        ] == ["telemetry-ring-write"]
        assert lint_source(src, "repro/obs/live.py") == []

    def test_src_baseline_stays_empty(self):
        from repro.check.lint import collect

        found = [
            f for f in collect("src/repro")
            if f.rule == "telemetry-ring-write"
        ]
        assert found == []
