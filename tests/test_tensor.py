"""Device tags, dtypes, DeviceTensor, and flat-buffer arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import MemoryLedger
from repro.tensor import (
    CPU,
    Device,
    DeviceKind,
    DeviceTensor,
    FP16,
    FP32,
    dtype_of,
    flatten_arrays,
    gpu,
    nvme,
    pad_to_multiple,
    partition_bounds,
    partition_padded_size,
    unflatten_array,
)
from repro.tensor.dtypes import BYTES_PER_PARAM_TOTAL
from repro.tensor.flat import FlatView, shard_size


class TestDevice:
    def test_parse_gpu(self):
        assert Device.parse("gpu:3") == Device(DeviceKind.GPU, 3)

    def test_parse_cpu(self):
        assert Device.parse("cpu") == CPU

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            Device.parse("tpu:0")

    def test_cpu_index_must_be_zero(self):
        with pytest.raises(ValueError):
            Device(DeviceKind.CPU, 1)

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            Device(DeviceKind.GPU, -1)

    def test_str_roundtrip(self):
        for d in (gpu(2), CPU, nvme(1)):
            assert Device.parse(str(d)) == d

    def test_cached_constructors(self):
        assert gpu(5) is gpu(5)
        assert nvme() == nvme(0)

    def test_kind_predicates(self):
        assert gpu(0).is_gpu and CPU.is_cpu and nvme().is_nvme


class TestDtypes:
    def test_mixed_precision_byte_budget(self):
        # Sec. 3: "each parameter requires 20 bytes of memory"
        assert BYTES_PER_PARAM_TOTAL == 20

    def test_dtype_of_string(self):
        assert dtype_of("fp16") is FP16

    def test_dtype_of_array(self):
        assert dtype_of(np.zeros(3, dtype=np.float32)) is FP32

    def test_dtype_of_unknown_raises(self):
        with pytest.raises(ValueError):
            dtype_of("int7")
        with pytest.raises(ValueError):
            dtype_of(np.zeros(1, dtype=np.int32))

    def test_cast_avoids_copy_when_possible(self):
        a = np.zeros(4, dtype=np.float32)
        assert FP32.cast(a) is a


class TestDeviceTensor:
    def test_basic_properties(self):
        t = DeviceTensor.zeros((2, 3), "fp16", gpu(0), name="w")
        assert t.shape == (2, 3)
        assert t.numel == 6
        assert t.nbytes == 12
        assert t.dtype is FP16

    def test_move_updates_device(self):
        t = DeviceTensor.zeros((4,), "fp32")
        t.to(gpu(1))
        assert t.device == gpu(1)

    def test_move_same_device_noop(self):
        t = DeviceTensor.zeros((4,), "fp32", CPU)
        assert t.to(CPU) is t

    def test_ledger_accounting_on_move(self):
        ledger = MemoryLedger()
        t = DeviceTensor(np.zeros(100, dtype=np.float32), CPU, ledger=ledger)
        assert ledger.used(CPU) == 400
        t.to(gpu(0))
        assert ledger.used(CPU) == 0
        assert ledger.used(gpu(0)) == 400

    def test_release_frees_accounting(self):
        ledger = MemoryLedger()
        t = DeviceTensor(np.zeros(10, dtype=np.float16), gpu(0), ledger=ledger)
        t.release()
        assert ledger.used(gpu(0)) == 0
        assert t.numel == 0

    def test_copy_from_shape_mismatch_raises(self):
        t = DeviceTensor.zeros((2, 2), "fp32")
        with pytest.raises(ValueError):
            t.copy_from(np.zeros(3, dtype=np.float32))

    def test_copy_from_converts_dtype(self):
        t = DeviceTensor.zeros((3,), "fp32")
        t.copy_from(np.ones(3, dtype=np.float16))
        assert np.all(t.data == 1.0)

    def test_astype_returns_new(self):
        t = DeviceTensor.zeros((3,), "fp32", gpu(0))
        u = t.astype("fp16")
        assert u.dtype is FP16 and u.device == gpu(0)
        assert t.dtype is FP32


class TestPartitionMath:
    def test_pad_to_multiple(self):
        assert pad_to_multiple(10, 4) == 12
        assert pad_to_multiple(8, 4) == 8
        assert pad_to_multiple(0, 4) == 0

    def test_pad_invalid_raises(self):
        with pytest.raises(ValueError):
            pad_to_multiple(5, 0)
        with pytest.raises(ValueError):
            pad_to_multiple(-1, 2)

    def test_bounds_basic(self):
        assert partition_bounds(10, 4, 0) == (0, 3)
        assert partition_bounds(10, 4, 3) == (9, 10)

    def test_bounds_out_of_range_rank(self):
        with pytest.raises(ValueError):
            partition_bounds(10, 4, 4)

    @given(
        numel=st.integers(0, 10_000),
        world=st.integers(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_is_disjoint_and_exhaustive(self, numel, world):
        """Every element belongs to exactly one rank's shard."""
        covered = 0
        prev_hi = 0
        for rank in range(world):
            lo, hi = partition_bounds(numel, world, rank)
            assert lo == prev_hi  # contiguous, no gaps or overlaps
            assert hi >= lo
            covered += hi - lo
            prev_hi = hi
        assert covered == numel

    @given(numel=st.integers(1, 10_000), world=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_shard_size_consistent(self, numel, world):
        assert shard_size(numel, world) * world == partition_padded_size(numel, world)


class TestFlatten:
    def test_roundtrip(self, rng):
        arrays = [rng.random((3, 4)), rng.random((5,)), rng.random((2, 2, 2))]
        flat = flatten_arrays(arrays)
        views = unflatten_array(flat, [a.shape for a in arrays])
        for a, v in zip(arrays, views):
            np.testing.assert_array_equal(a, v)

    def test_padding(self, rng):
        arrays = [rng.random(5).astype(np.float32)]
        flat = flatten_arrays(arrays, pad_multiple=4)
        assert flat.size == 8
        assert np.all(flat[5:] == 0)

    def test_views_share_memory(self, rng):
        flat = flatten_arrays([np.zeros(6, dtype=np.float32)])
        (v,) = unflatten_array(flat, [(2, 3)])
        v[0, 0] = 9.0
        assert flat[0] == 9.0

    def test_unflatten_overflow_raises(self):
        with pytest.raises(ValueError):
            unflatten_array(np.zeros(3), [(2, 2)])

    def test_empty_list_needs_dtype(self):
        with pytest.raises(ValueError):
            flatten_arrays([])

    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=6
        ),
        pad=st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_flatten_roundtrip_property(self, shapes, pad):
        arrays = [
            np.arange(int(np.prod(s)), dtype=np.float32).reshape(s) + i
            for i, s in enumerate(shapes)
        ]
        flat = flatten_arrays(arrays, pad_multiple=pad)
        assert flat.size % pad == 0
        for a, v in zip(arrays, unflatten_array(flat, shapes)):
            np.testing.assert_array_equal(a, v)


class TestFlatView:
    def test_named_views(self):
        fv = FlatView.build([("w", (2, 3)), ("b", (3,))], dtype=np.float32)
        assert fv["w"].shape == (2, 3)
        assert fv["b"].shape == (3,)
        assert "w" in fv and "missing" not in fv

    def test_views_alias_buffer(self):
        fv = FlatView.build([("x", (4,))])
        fv["x"][:] = 7
        assert np.all(fv.buffer[:4] == 7)

    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError):
            FlatView.build([("x", (2,)), ("x", (2,))])

    def test_padding(self):
        fv = FlatView.build([("x", (5,))], pad_multiple=8)
        assert fv.numel == 8
