"""Property-based integration tests: ZeRO ≡ DDP over random configurations.

Hypothesis draws model shapes, world sizes, and placements; for each, a
short training run under the ZeRO engine must match the DDP oracle.  This
is the broadest net for partition-arithmetic bugs (padding, uneven shards,
head divisibility) that fixed-shape tests can miss.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.core.zero_optimizer import ZeroPartitionedAdam
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

placements = st.sampled_from(
    [
        (ZeroStage.PARAMETERS, OffloadDevice.NONE),
        (ZeroStage.PARAMETERS, OffloadDevice.CPU),
        (ZeroStage.PARAMETERS, OffloadDevice.NVME),
        (ZeroStage.GRADIENTS, OffloadDevice.NONE),
    ]
)


@given(
    world=st.integers(1, 5),
    num_layers=st.integers(1, 2),
    heads=st.sampled_from([1, 2, 3]),
    head_dim=st.sampled_from([4, 8]),
    vocab=st.integers(17, 40),
    seq=st.integers(2, 9),
    placement=placements,
    seed=st.integers(0, 10_000),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_zero_matches_ddp_property(
    world, num_layers, heads, head_dim, vocab, seq, placement, seed
):
    stage, device = placement
    hidden = heads * head_dim
    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden,
        num_heads=heads,
        vocab_size=vocab,
        max_seq=max(seq, 2),
    )

    def factory():
        return GPTModel(model_cfg, rng=seeded_rng(seed))

    rngs = spawn_rngs(seed + 1, world)
    batches = [
        (r.integers(0, vocab, (1, seq)), r.integers(0, vocab, (1, seq)))
        for r in rngs
    ]

    ddp = DDPTrainer(factory, world, lr=1e-2)
    ref_losses = ddp.train_step(batches)
    ref_state = ddp.state_dict()

    cfg = ZeroConfig(
        world_size=world,
        stage=stage,
        offload=OffloadConfig(
            param_device=device if stage >= ZeroStage.PARAMETERS else OffloadDevice.NONE,
            grad_device=device if stage >= ZeroStage.GRADIENTS else OffloadDevice.NONE,
            optimizer_device=device,
            optimizer_chunk_numel=61,  # prime, to stress chunk remainders
        ),
        loss_scale=1.0,
    )
    with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-2) as eng:
        result = eng.train_step(batches)
        state = eng.gather_state()

    np.testing.assert_allclose(
        result.losses, ref_losses, rtol=1e-5, err_msg="losses diverged"
    )
    for name, ref in ref_state.items():
        np.testing.assert_allclose(
            state[name], ref, rtol=1e-3, atol=2e-5, err_msg=name
        )


@given(
    numel=st.integers(1, 300),
    world=st.integers(1, 6),
    chunk=st.integers(1, 64),
)
@settings(max_examples=20, deadline=None)
def test_chunked_nvme_adam_matches_resident_property(numel, world, chunk):
    """The streamed NVMe optimizer path == the in-memory path, for any
    shard size / chunk size combination (including chunk > shard)."""
    from repro.comm.group import ProcessGroup
    from repro.core.offload import InfinityOffloadEngine
    from repro.core.partition import ParameterPartitioner
    from repro.nn.parameter import Parameter

    rng = seeded_rng(numel * 31 + world * 7 + chunk)
    values = rng.standard_normal(numel).astype(np.float32)
    grad = rng.standard_normal(numel).astype(np.float32)

    def run(device, chunk_numel):
        cfg = ZeroConfig(
            world_size=world,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NONE,
                optimizer_device=device,
                optimizer_chunk_numel=chunk_numel,
            ),
            loss_scale=1.0,
        )
        offload = InfinityOffloadEngine(cfg.offload)
        comm = ProcessGroup(world)
        part = ParameterPartitioner(world, offload=offload, comm=comm)
        p = Parameter(values.copy().reshape(numel))
        part.partition(p)
        # stage the reduced gradient shards the coordinator would produce
        from repro.tensor.flat import pad_to_multiple

        padded = pad_to_multiple(numel, world)
        flat = np.zeros(padded, dtype=np.float32)
        flat[:numel] = grad
        shard = padded // world
        for rank in range(world):
            offload.stash(
                f"p{p.unique_id}.r{rank}.grad16",
                flat[rank * shard : (rank + 1) * shard],
                cfg.offload.grad_device,
                rank=rank,
            )
        opt = ZeroPartitionedAdam(
            [p], cfg, partitioner=part, offload=offload, comm=comm, lr=1e-2
        )
        opt.step()
        part.gather(p)
        out = p.data.copy()
        offload.close()
        return out

    resident = run(OffloadDevice.CPU, 1 << 20)
    streamed = run(OffloadDevice.NVME, chunk)
    np.testing.assert_allclose(streamed, resident, rtol=1e-6, atol=1e-7)
