"""``tools/static_gate.py``: the tier-1 pre-launch schedule gate.

The gate must prove the full train-demo matrix, stay inside its wall
budget, and exit non-zero the moment either a schedule finding or a new
lint finding appears.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GATE = REPO_ROOT / "tools" / "static_gate.py"


def run_gate(*args):
    return subprocess.run(
        [sys.executable, str(GATE), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_gate_proves_the_matrix_within_budget():
    proc = run_gate("--budget", "30")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "static gate: OK" in proc.stdout
    assert proc.stdout.count("|  proved") == 12, "matrix cell went unproved"
    assert "lint: clean" in proc.stdout


def test_gate_fails_on_impossible_budget():
    # the budget arm must actually gate: no matrix finishes in 1 ms
    proc = run_gate("--budget", "0.001", "--no-lint")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "exceeds the" in proc.stdout


def test_gate_writes_the_report_artifact(tmp_path):
    out = tmp_path / "static_gate.txt"
    proc = run_gate("--no-lint", "--report", str(out))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    text = out.read_text()
    assert "Static SPMD schedule verification" in text
    assert "proved" in text


def test_committed_artifact_is_registered_and_fresh():
    report = REPO_ROOT / "benchmarks" / "reports" / "static_gate.txt"
    index = REPO_ROOT / "benchmarks" / "reports" / "INDEX.md"
    assert report.exists(), "run: python tools/static_gate.py --report ..."
    assert "static_gate.txt" in index.read_text()
    assert "Static SPMD schedule verification" in report.read_text()
