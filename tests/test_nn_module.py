"""Module tree, hooks, parameter registry, and leaf layers."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.parameter import ParameterDict, PartitionState
from repro.utils.rng import seeded_rng


class TestParameter:
    def test_grad_accumulation(self):
        p = Parameter(np.zeros((2, 2), dtype=np.float32))
        p.accumulate_grad(np.ones((2, 2), dtype=np.float32))
        p.accumulate_grad(np.ones((2, 2), dtype=np.float32))
        np.testing.assert_array_equal(p.grad, 2 * np.ones((2, 2)))

    def test_grad_shape_mismatch_raises(self):
        p = Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.zeros(4))

    def test_no_grad_when_frozen(self):
        p = Parameter(np.zeros(3), requires_grad=False)
        p.accumulate_grad(np.ones(3))
        assert p.grad is None

    def test_unique_ids(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        assert a.unique_id != b.unique_id

    def test_initial_state_available(self):
        assert Parameter(np.zeros(1)).state is PartitionState.AVAILABLE

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.ones(2))
        p.zero_grad()
        assert p.grad is None


class TestParameterDict:
    def test_touched_hook(self):
        touches = []

        class Spy(ParameterDict):
            def touched(self, key, param):
                touches.append(key)
                return param

        d = Spy()
        d["w"] = Parameter(np.zeros(1))
        _ = d["w"]
        assert touches == ["w"]

    def test_values_bypass_hook(self):
        """Internal traversal must not trigger access interception."""
        touches = []

        class Spy(ParameterDict):
            def touched(self, key, param):
                touches.append(key)
                return param

        d = Spy()
        d["w"] = Parameter(np.zeros(1))
        list(d.values())
        list(d.items())
        assert touches == []


class Doubler(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.array([2.0]))

    def forward(self, x):
        return x * self.weight.data

    def _backward(self, g):
        return g * self.weight.data


class TestModuleTree:
    def test_attribute_registration(self):
        m = Doubler()
        assert "weight" in m._parameters
        assert m.weight.data[0] == 2.0

    def test_submodule_registration(self):
        outer = Sequential(Doubler(), Doubler())
        names = [n for n, _ in outer.named_modules()]
        assert "" in names and "0" in names and "1" in names

    def test_named_parameters_hierarchical(self):
        seq = Sequential(Doubler(), Doubler())
        names = [n for n, _ in seq.named_parameters()]
        assert names == ["0.weight", "1.weight"]

    def test_tied_parameters_deduplicated(self):
        a, b = Doubler(), Doubler()
        b.weight = a.weight  # tie
        seq = Sequential(a, b)
        assert len(list(seq.named_parameters())) == 1
        assert seq.num_parameters() == 1

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            Doubler().nonexistent

    def test_train_eval_propagates(self):
        seq = Sequential(Doubler(), Sequential(Doubler()))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_recursive(self):
        seq = Sequential(Doubler(), Doubler())
        for p in seq.parameters():
            p.accumulate_grad(np.ones(1))
        seq.zero_grad()
        assert all(p.grad is None for p in seq.parameters())

    def test_name_parameters_assigns(self):
        seq = Sequential(Doubler())
        seq.name_parameters()
        assert seq[0].weight.name == "0.weight"


class TestHooks:
    def test_forward_hook_ordering(self):
        events = []
        m = Doubler()
        m.register_forward_pre_hook(lambda mod, args: events.append("pre"))
        m.register_forward_hook(lambda mod, args, out: events.append("post"))
        m(np.array([1.0]))
        assert events == ["pre", "post"]

    def test_forward_hook_can_replace_output(self):
        m = Doubler()
        m.register_forward_hook(lambda mod, args, out: out + 100)
        assert m(np.array([1.0]))[0] == 102.0

    def test_backward_hooks_fire(self):
        events = []
        m = Doubler()
        m.register_backward_pre_hook(lambda mod, g: events.append("bpre"))
        m.register_backward_hook(lambda mod, g: events.append("bpost"))
        m(np.array([1.0]))
        m.backward(np.array([1.0]))
        assert events == ["bpre", "bpost"]

    def test_hook_removal(self):
        events = []
        m = Doubler()
        remove = m.register_forward_pre_hook(lambda mod, args: events.append(1))
        m(np.array([1.0]))
        remove()
        m(np.array([1.0]))
        assert len(events) == 1

    def test_sequential_fires_per_submodule(self):
        count = [0]
        seq = Sequential(Doubler(), Doubler(), Doubler())
        for i in range(3):
            seq[i].register_forward_pre_hook(lambda m, a: count.__setitem__(0, count[0] + 1))
        seq(np.array([1.0]))
        assert count[0] == 3


class TestLinearLayer:
    def test_shapes(self, rng):
        lin = Linear(4, 7, rng=rng)
        y = lin(rng.standard_normal((2, 3, 4)))
        assert y.shape == (2, 3, 7)

    def test_backward_accumulates_param_grads(self, rng):
        lin = Linear(4, 3, rng=rng)
        y = lin(rng.standard_normal((2, 4)))
        lin.backward(np.ones_like(y))
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=rng).backward(np.ones((1, 2)))

    def test_no_bias_variant(self, rng):
        lin = Linear(4, 3, bias=False, rng=rng)
        assert len(lin.direct_parameters()) == 1

    def test_cache_consumed(self, rng):
        lin = Linear(2, 2, rng=rng)
        y = lin(rng.standard_normal((1, 2)))
        lin.backward(np.ones_like(y))
        with pytest.raises(RuntimeError):
            lin.backward(np.ones_like(y))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 5)


class TestOtherLayers:
    def test_layernorm_grad_flow(self, rng):
        ln = LayerNorm(8)
        y = ln(rng.standard_normal((2, 8)))
        g = ln.backward(np.ones_like(y))
        assert g.shape == (2, 8)
        assert ln.gain.grad is not None

    def test_embedding_no_input_grad(self, rng):
        emb = Embedding(10, 4, rng=rng)
        y = emb(np.array([[1, 2]]))
        assert emb.backward(np.ones_like(y)) is None
        assert emb.weight.grad is not None

    def test_gelu_stateless_params(self):
        assert GELU().direct_parameters() == []

    def test_dropout_deterministic_with_seed(self):
        d1 = Dropout(0.5, rng=seeded_rng(3))
        d2 = Dropout(0.5, rng=seeded_rng(3))
        x = np.ones((10, 10))
        np.testing.assert_array_equal(d1(x), d2(x))

    def test_sequential_backward_order(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), GELU(), Linear(4, 2, rng=rng))
        y = seq(rng.standard_normal((3, 4)))
        g = seq.backward(np.ones_like(y))
        assert g.shape == (3, 4)

    def test_sequential_indexing(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), GELU())
        assert isinstance(seq[1], GELU)
        assert len(seq) == 2
