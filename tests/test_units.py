"""Unit constants, formatting and parsing."""

import math

import pytest

from repro.utils.units import (
    GB,
    GIB,
    KB,
    MB,
    TB,
    format_bytes,
    format_count,
    format_flops,
    format_time,
    parse_bytes,
)


class TestConstants:
    def test_decimal_scaling(self):
        assert KB == 1000 and MB == 1000 * KB and GB == 1000 * MB and TB == 1000 * GB

    def test_binary_vs_decimal(self):
        assert GIB > GB
        assert GIB == 2**30


class TestFormatBytes:
    def test_terabytes(self):
        assert format_bytes(1.83e12) == "1.83 TB"

    def test_gigabytes(self):
        assert format_bytes(32 * GB) == "32.00 GB"

    def test_binary_units(self):
        assert format_bytes(2 * GIB, binary=True) == "2.00 GiB"

    def test_small_values(self):
        assert format_bytes(512) == "512 B"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative(self):
        assert format_bytes(-3 * GB) == "-3.00 GB"

    def test_precision(self):
        assert format_bytes(1.5 * TB, precision=1) == "1.5 TB"


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.5 TB", int(1.5 * TB)),
            ("2GiB", 2 * GIB),
            ("512 MB", 512 * MB),
            ("100B", 100),
            ("7", 7),
        ],
    )
    def test_roundtrips(self, text, expected):
        assert parse_bytes(text) == expected

    def test_unknown_suffix_raises(self):
        with pytest.raises(ValueError, match="unknown byte suffix"):
            parse_bytes("3 XB")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("lots of bytes")

    def test_parse_format_roundtrip(self):
        n = int(42.5 * GB)
        assert abs(parse_bytes(format_bytes(n)) - n) / n < 0.01


class TestFormatCount:
    def test_trillions(self):
        assert format_count(1.01e12) == "1.01T"

    def test_billions(self):
        assert format_count(175e9) == "175.00B"

    def test_small(self):
        assert format_count(42) == "42"


class TestFormatFlops:
    def test_tflops(self):
        assert format_flops(49e12) == "49.0 TFlops"

    def test_pflops(self):
        assert format_flops(25e15) == "25.0 PFlops"


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0032, "3.20 ms"),
            (2.5, "2.50 s"),
            (90, "1.50 min"),
            (7200, "2.00 h"),
            (2e-7, "200.00 ns"),
        ],
    )
    def test_adaptive_units(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_nan_passthrough(self):
        assert format_time(float("nan")) == "nan"

    def test_negative(self):
        assert format_time(-0.5).startswith("-")
