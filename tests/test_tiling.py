"""Memory-centric tiling: mathematical equivalence and working-memory wins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import TiledLinear, split_sizes
from repro.hardware.memory import AllocationError, FirstFitAllocator
from repro.nn.layers import Linear
from repro.utils.rng import seeded_rng
from repro.utils.units import GIB


class TestSplitSizes:
    def test_even(self):
        assert split_sizes(12, 3) == [4, 4, 4]

    def test_uneven(self):
        assert split_sizes(10, 3) == [4, 3, 3]
        assert sum(split_sizes(10, 3)) == 10

    def test_too_many_parts_raises(self):
        with pytest.raises(ValueError):
            split_sizes(2, 3)

    @given(total=st.integers(1, 1000), parts=st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, total, parts):
        if total < parts:
            with pytest.raises(ValueError):
                split_sizes(total, parts)
            return
        sizes = split_sizes(total, parts)
        assert sum(sizes) == total
        assert len(sizes) == parts
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)


class TestTiledLinearEquivalence:
    @pytest.mark.parametrize("out_tiles,in_tiles", [(1, 1), (2, 1), (1, 3), (4, 2), (3, 3)])
    def test_forward_matches_dense(self, out_tiles, in_tiles, rng):
        lin = Linear(12, 8, rng=seeded_rng(0))
        tiled = TiledLinear.from_linear(lin, out_tiles=out_tiles, in_tiles=in_tiles)
        x = rng.standard_normal((2, 5, 12)).astype(np.float32)
        np.testing.assert_allclose(tiled(x), lin(x), rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("out_tiles,in_tiles", [(2, 1), (1, 3), (3, 2)])
    def test_backward_matches_dense(self, out_tiles, in_tiles, rng):
        lin = Linear(9, 7, rng=seeded_rng(1))
        tiled = TiledLinear.from_linear(lin, out_tiles=out_tiles, in_tiles=in_tiles)
        x = rng.standard_normal((4, 9)).astype(np.float32)
        g = rng.standard_normal((4, 7)).astype(np.float32)
        lin(x)
        gx_dense = lin.backward(g.copy())
        tiled(x)
        gx_tiled = tiled.backward(g.copy())
        np.testing.assert_allclose(gx_tiled, gx_dense, rtol=1e-5, atol=1e-6)
        # weight gradients reassemble to the dense weight gradient
        w_grad = np.zeros_like(lin.weight.data)
        o_lo = 0
        for oi, osz in enumerate(tiled.out_sizes):
            i_lo = 0
            for ii, isz in enumerate(tiled.in_sizes):
                tile = tiled._modules[tiled._grid[oi][ii]]
                w_grad[o_lo : o_lo + osz, i_lo : i_lo + isz] = tile.weight.grad
                i_lo += isz
            o_lo += osz
        np.testing.assert_allclose(w_grad, lin.weight.grad, rtol=1e-5, atol=1e-6)

    def test_bias_gradient_matches(self, rng):
        lin = Linear(6, 5, rng=seeded_rng(2))
        tiled = TiledLinear.from_linear(lin, out_tiles=2, in_tiles=2)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        g = rng.standard_normal((3, 5)).astype(np.float32)
        lin(x)
        lin.backward(g.copy())
        tiled(x)
        tiled.backward(g.copy())
        bias = np.concatenate(
            [
                tiled._modules[tiled._grid[oi][-1]].bias.grad
                for oi in range(tiled.out_tiles)
            ]
        )
        np.testing.assert_allclose(bias, lin.bias.grad, rtol=1e-5, atol=1e-6)

    def test_no_bias_tiling(self, rng):
        lin = Linear(6, 4, bias=False, rng=seeded_rng(3))
        tiled = TiledLinear.from_linear(lin, out_tiles=2)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        np.testing.assert_allclose(tiled(x), lin(x), rtol=1e-6)

    def test_weight_roundtrip(self):
        lin = Linear(10, 8, rng=seeded_rng(4))
        tiled = TiledLinear.from_linear(lin, out_tiles=3, in_tiles=2)
        w, b = tiled.to_full_weight()
        np.testing.assert_array_equal(w, lin.weight.data)
        np.testing.assert_array_equal(b, lin.bias.data)

    @given(
        in_f=st.integers(2, 24),
        out_f=st.integers(2, 24),
        out_tiles=st.integers(1, 4),
        in_tiles=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_equivalence_property(self, in_f, out_f, out_tiles, in_tiles):
        """Tiled == dense for arbitrary (non-divisible) tile factors."""
        if out_f < out_tiles or in_f < in_tiles:
            return
        lin = Linear(in_f, out_f, rng=seeded_rng(in_f * 100 + out_f))
        tiled = TiledLinear.from_linear(lin, out_tiles=out_tiles, in_tiles=in_tiles)
        x = seeded_rng(7).standard_normal((3, in_f)).astype(np.float32)
        np.testing.assert_allclose(tiled(x), lin(x), rtol=1e-4, atol=1e-5)


class TestWorkingMemoryReduction:
    def test_max_tile_param_shrinks_with_factor(self):
        lin = Linear(64, 256, rng=seeded_rng(0))
        dense_numel = lin.weight.numel + lin.bias.numel
        for tiles in (2, 4, 8):
            tiled = TiledLinear.from_linear(lin, out_tiles=tiles)
            assert tiled.max_tile_param_numel <= dense_numel // tiles + 64 + 1

    def test_each_tile_is_a_leaf_module(self):
        """Tiles must be hookable leaf Linears for ZeRO fetch/release."""
        tiled = TiledLinear(8, 8, out_tiles=2, in_tiles=2, rng=seeded_rng(0))
        leaves = [m for m in tiled.modules() if m.direct_parameters()]
        assert len(leaves) == 4
        assert all(isinstance(m, Linear) for m in leaves)

    def test_fig6b_allocator_scenario(self):
        """Fragmented memory: dense weight fails, tiles fit (Fig. 6b)."""
        allocator = FirstFitAllocator(16 * GIB, alignment=256)
        allocator.pre_fragment(2 * GIB)
        hidden = 16 * 1024
        # the (hd, 4hd) fp16 weight + grad: 16 * hd^2 bytes = 4 GiB at 16K
        dense_bytes = 16 * hidden * hidden
        with pytest.raises(AllocationError):
            allocator.malloc(dense_bytes)
        tile_factor = 4
        offs = [
            allocator.malloc(dense_bytes // tile_factor) for _ in range(tile_factor)
        ]
        assert len(offs) == tile_factor  # sequential tile allocations fit
