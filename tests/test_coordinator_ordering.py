"""The Fig. 4 / Sec. 7.1 data-movement protocol, asserted event by event.

We instrument the partitioner and coordinator and verify the lifecycle the
paper prescribes for each submodule:

  forward:  gather -> compute -> release
  backward: gather -> compute -> release -> reduce-scatter -> offload

plus: parameters are PARTITIONED at every step boundary, each leaf's
parameters are gathered exactly twice per rank per iteration (fwd + bwd;
three times under activation checkpointing), and gradient reduction happens
exactly once per parameter per step.
"""

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def factory(ckpt=False):
    cfg = TransformerConfig(
        num_layers=1,
        hidden_dim=16,
        num_heads=2,
        vocab_size=VOCAB,
        max_seq=8,
        tie_embeddings=False,  # isolate the per-leaf protocol
        activation_checkpointing=ckpt,
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8))) for r in rngs
    ]


class Recorder:
    def __init__(self, engine):
        self.events: list[tuple[str, int]] = []  # (kind, param_id)
        part = engine.partitioner
        coord = engine.coordinator

        orig_gather = part.gather

        def gather(param):
            if param.state is PartitionState.PARTITIONED:
                self.events.append(("gather", param.unique_id))
            return orig_gather(param)

        part.gather = gather

        orig_release = part.release

        def release(param):
            if param.state is PartitionState.AVAILABLE and param.zero_meta:
                self.events.append(("release", param.unique_id))
            return orig_release(param)

        part.release = release

        orig_reduce = coord._reduce_and_stash

        def reduce_and_stash(param, grads):
            self.events.append(("reduce", param.unique_id))
            return orig_reduce(param, grads)

        coord._reduce_and_stash = reduce_and_stash


@pytest.fixture
def engine():
    cfg = ZeroConfig(
        world_size=WORLD,
        stage=ZeroStage.PARAMETERS,
        offload=OffloadConfig(param_device=OffloadDevice.CPU),
        loss_scale=1.0,
        prefetch_depth=0,  # keep the event stream deterministic
        # this suite asserts the *per-parameter* protocol; the coalesced /
        # bucketed runtime is covered by test_bucketing.py
        coalesce_allgather=False,
        reduce_bucket_numel=0,
    )
    with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
        yield eng


class TestProtocol:
    def test_gather_release_alternate_per_param(self, engine):
        rec = Recorder(engine)
        engine.train_step(batches())
        by_param: dict[int, list[str]] = {}
        for kind, pid in rec.events:
            by_param.setdefault(pid, []).append(kind)
        for pid, seq in by_param.items():
            gr = [e for e in seq if e in ("gather", "release")]
            # strict alternation starting with gather
            for i, e in enumerate(gr):
                assert e == ("gather" if i % 2 == 0 else "release"), (pid, gr)

    def test_two_gathers_per_rank_per_iteration(self, engine):
        """Sec. 4.1: parameters load for forward and for backward."""
        rec = Recorder(engine)
        engine.train_step(batches())
        counts: dict[int, int] = {}
        for kind, pid in rec.events:
            if kind == "gather":
                counts[pid] = counts.get(pid, 0) + 1
        assert counts
        for pid, n in counts.items():
            assert n == 2 * WORLD, (pid, n)

    def test_checkpointing_adds_the_third_load(self):
        """With activation checkpointing the recompute re-gathers (the
        third parameter load in the AIT derivation)."""
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            loss_scale=1.0,
            prefetch_depth=0,
            coalesce_allgather=False,
            reduce_bucket_numel=0,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=lambda: factory(ckpt=True), lr=1e-3
        ) as eng:
            rec = Recorder(eng)
            eng.train_step(batches())
            block_param_ids = {
                p.unique_id
                for name, p in eng.model.named_parameters()
                if name.startswith("block")
            }
            counts: dict[int, int] = {}
            for kind, pid in rec.events:
                if kind == "gather" and pid in block_param_ids:
                    counts[pid] = counts.get(pid, 0) + 1
            for pid, n in counts.items():
                assert n == 3 * WORLD, (pid, n)  # fwd + recompute + bwd

    def test_reduce_once_per_param_per_step(self, engine):
        rec = Recorder(engine)
        engine.train_step(batches())
        reduces = [pid for kind, pid in rec.events if kind == "reduce"]
        assert len(reduces) == len(set(reduces))
        assert len(reduces) == len(list(engine.model.named_parameters()))

    def test_reduce_follows_final_release(self, engine):
        """Gradients aggregate only after the last rank's backward release."""
        rec = Recorder(engine)
        engine.train_step(batches())
        last_release: dict[int, int] = {}
        reduce_at: dict[int, int] = {}
        for i, (kind, pid) in enumerate(rec.events):
            if kind == "release":
                last_release[pid] = i
            elif kind == "reduce":
                reduce_at[pid] = i
        for pid, idx in reduce_at.items():
            assert idx > last_release[pid]

    def test_everything_partitioned_between_steps(self, engine):
        engine.train_step(batches())
        for p in engine.model.parameters():
            assert p.state is PartitionState.PARTITIONED
            assert p.data.size == 0

    def test_grad_clip_equivalence_with_baseline(self):
        """Partitioned global-norm clipping == the single-process clip."""
        from repro.optim import Adam

        b = batches(seed=5)
        merged = (
            np.concatenate([b[0][0], b[1][0]]),
            np.concatenate([b[0][1], b[1][1]]),
        )
        base = factory()
        opt = Adam(base.parameters(), lr=1e-2, grad_clip=0.05)
        base(*merged)
        base.backward(1.0)
        opt.step()
        cfg = ZeroConfig(
            world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=1.0
        )
        with ZeroInfinityEngine(
            cfg, model_factory=factory, lr=1e-2, grad_clip=0.05
        ) as eng:
            eng.train_step(b)
            state = eng.gather_state()
        # atol covers Adam's sign-amplification of ~zero gradients, where
        # fp32 noise in the reduction order flips m/sqrt(v) on dead entries
        for name, p in base.named_parameters():
            np.testing.assert_allclose(
                state[name], p.data, rtol=1e-4, atol=1e-5, err_msg=name
            )
