"""Mixed-precision Adam and loss scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.parameter import Parameter
from repro.optim import Adam, AdamState, DynamicLossScaler, StaticLossScaler, adam_step


class TestAdamStep:
    def test_matches_reference_implementation(self):
        """Hand-rolled Adam reference (Kingma & Ba Algorithm 1)."""
        rng = np.random.default_rng(0)
        master = rng.standard_normal(16).astype(np.float32)
        grads = [rng.standard_normal(16).astype(np.float32) for _ in range(5)]
        ours = master.copy()
        m = np.zeros_like(master)
        v = np.zeros_like(master)
        # reference
        ref = master.copy().astype(np.float64)
        rm = np.zeros_like(ref)
        rv = np.zeros_like(ref)
        lr, b1, b2, eps = 1e-3, 0.9, 0.999, 1e-8
        for t, g in enumerate(grads, start=1):
            adam_step(ours, g, m, v, step=t, lr=lr, beta1=b1, beta2=b2, eps=eps)
            gd = g.astype(np.float64)
            rm = b1 * rm + (1 - b1) * gd
            rv = b2 * rv + (1 - b2) * gd * gd
            mhat = rm / (1 - b1**t)
            vhat = rv / (1 - b2**t)
            ref -= lr * mhat / (np.sqrt(vhat) + eps)
        np.testing.assert_allclose(ours, ref, rtol=1e-5)

    def test_weight_decay_decoupled(self):
        master = np.ones(4, dtype=np.float32)
        m = np.zeros(4, dtype=np.float32)
        v = np.zeros(4, dtype=np.float32)
        adam_step(
            master, np.zeros(4, dtype=np.float32), m, v,
            step=1, lr=0.1, weight_decay=0.5,
        )
        # zero grad: only decay applies -> 1 - 0.1*0.5 = 0.95
        np.testing.assert_allclose(master, 0.95, rtol=1e-6)

    def test_invalid_step_raises(self):
        z = np.zeros(2, dtype=np.float32)
        with pytest.raises(ValueError):
            adam_step(z, z, z.copy(), z.copy(), step=0, lr=0.1)

    @given(steps=st.integers(1, 50), lr=st.floats(1e-5, 1e-1))
    @settings(max_examples=30, deadline=None)
    def test_update_magnitude_bounded_by_lr(self, steps, lr):
        """|update| <= ~lr per step is Adam's signature property."""
        rng = np.random.default_rng(steps)
        master = np.zeros(8, dtype=np.float32)
        m = np.zeros_like(master)
        v = np.zeros_like(master)
        prev = master.copy()
        for t in range(1, steps + 1):
            g = rng.standard_normal(8).astype(np.float32)
            adam_step(master, g, m, v, step=t, lr=lr)
            assert np.max(np.abs(master - prev)) <= lr * 1.2
            prev = master.copy()


class TestAdamOptimizer:
    def _params(self, rng, n=3):
        return [Parameter(rng.standard_normal(4).astype(np.float32)) for _ in range(n)]

    def test_state_bytes_16_per_param(self, rng):
        """Sec. 3: momentum + variance + master = 12 bytes; we also count
        the fp32 master copy explicitly (AdamState holds 3 fp32 buffers)."""
        params = self._params(rng, 2)
        opt = Adam(params)
        assert opt.state_bytes == 2 * 4 * 3 * 4  # 2 params x 4 elems x 3 bufs x fp32

    def test_step_updates_and_casts_back(self, rng):
        p = Parameter(rng.standard_normal(4).astype(np.float16))
        opt = Adam([p], lr=0.1)
        p.accumulate_grad(np.ones(4, dtype=np.float16))
        before = p.data.copy()
        opt.step()
        assert p.data.dtype == np.float16
        assert not np.array_equal(before, p.data)

    def test_master_preserves_precision_across_steps(self, rng):
        """fp16 params + fp32 master: tiny updates must accumulate."""
        p = Parameter(np.ones(1, dtype=np.float16))
        opt = Adam([p], lr=1e-4)
        for t in range(100):
            p.accumulate_grad(np.full(1, 1.0, dtype=np.float16))
            opt.step()
            opt.zero_grad()
        master = opt.state[p.unique_id].master[0]
        assert master == pytest.approx(1.0 - 100 * 1e-4, rel=0.05)

    def test_grad_scale_division(self, rng):
        p1 = Parameter(np.zeros(4, dtype=np.float32))
        p2 = Parameter(np.zeros(4, dtype=np.float32))
        o1, o2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1)
        p1.accumulate_grad(np.full(4, 2.0, dtype=np.float32))
        p2.accumulate_grad(np.full(4, 1024.0, dtype=np.float32))
        o1.step(grad_scale=1.0)
        o2.step(grad_scale=512.0)
        np.testing.assert_allclose(p1.data, p2.data, rtol=1e-6)

    def test_skips_gradless_params(self, rng):
        params = self._params(rng, 2)
        opt = Adam(params, lr=0.1)
        params[0].accumulate_grad(np.ones(4, dtype=np.float32))
        before = params[1].data.copy()
        opt.step()
        np.testing.assert_array_equal(params[1].data, before)

    def test_gradient_clipping(self, rng):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = Adam([p], lr=1.0, grad_clip=1.0)
        p.accumulate_grad(np.full(4, 100.0, dtype=np.float32))
        norm = opt.global_grad_norm()
        assert norm == pytest.approx(200.0)
        opt.step()  # clip prevents an explosive first step
        assert np.all(np.abs(p.data) <= 1.1)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_bad_lr_raises(self, rng):
        with pytest.raises(ValueError):
            Adam(self._params(rng), lr=0)


class TestAdamState:
    def test_init_from_values(self, rng):
        vals = rng.standard_normal((2, 3)).astype(np.float16)
        st_ = AdamState.init(vals)
        assert st_.master.dtype == np.float32
        assert st_.master.shape == (6,)
        np.testing.assert_allclose(st_.master, vals.reshape(-1), rtol=1e-3)
        assert st_.nbytes == 3 * 6 * 4


class TestStaticLossScaler:
    def test_fixed_scale(self):
        s = StaticLossScaler(128.0)
        assert s.loss_scale == 128.0
        s.update(True)
        assert s.loss_scale == 128.0

    def test_never_reports_overflow(self):
        s = StaticLossScaler()
        assert not s.check_overflow([np.array([np.inf])])

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            StaticLossScaler(0.0)


class TestDynamicLossScaler:
    def test_backoff_on_overflow(self):
        s = DynamicLossScaler(init_scale=1024.0)
        s.update(True)
        assert s.loss_scale == 512.0
        assert s.num_overflows == 1

    def test_growth_after_interval(self):
        s = DynamicLossScaler(init_scale=4.0, growth_interval=3)
        for _ in range(3):
            s.update(False)
        assert s.loss_scale == 8.0

    def test_overflow_resets_growth_counter(self):
        s = DynamicLossScaler(init_scale=4.0, growth_interval=2)
        s.update(False)
        s.update(True)  # back off and reset
        s.update(False)
        assert s.loss_scale == 2.0  # one good step: no growth yet

    def test_min_scale_floor(self):
        s = DynamicLossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(10):
            s.update(True)
        assert s.loss_scale == 1.0

    def test_overflow_detection(self):
        assert DynamicLossScaler.grads_overflowed([np.array([1.0, np.inf])])
        assert DynamicLossScaler.grads_overflowed([np.array([np.nan])])
        assert not DynamicLossScaler.grads_overflowed([np.array([1e30]), None])

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DynamicLossScaler(init_scale=-1)
        with pytest.raises(ValueError):
            DynamicLossScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            DynamicLossScaler(backoff_factor=1.5)
