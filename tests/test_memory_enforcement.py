"""Capacity enforcement: the engine respects modeled memory limits.

Runs the functional engine with a :class:`MemoryLedger` whose capacities
mirror device sizes, verifying that placements which the Sec. 3 model says
don't fit actually raise, and that offloading makes the same model fit — the
runtime counterpart of the Fig. 6a capacity solve.
"""

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.hardware.memory import AllocationError, MemoryLedger
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def model_state_bytes():
    m = factory()
    n = m.num_parameters()
    # fp32 everywhere in the functional layer: param + grad + 3x optimizer
    return n * 4


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8))) for r in rngs
    ]


class TestCapacityEnforcement:
    def test_gpu_capped_run_oom_without_offload(self):
        """GPU cap below the optimizer-state footprint -> AllocationError."""
        cap = model_state_bytes()  # room for params, not for 3x fp32 state
        ledger = MemoryLedger(capacities={"gpu": cap})
        cfg = ZeroConfig(
            world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=1.0
        )
        with ZeroInfinityEngine(
            cfg, model_factory=factory, lr=1e-3, ledger=ledger
        ) as eng:
            with pytest.raises(AllocationError):
                eng.train_step(batches())

    def test_same_cap_fits_with_cpu_offload(self):
        """Moving optimizer states to CPU makes the identical cap workable —
        the ZeRO-Offload/ZeRO-Infinity story in miniature."""
        cap = model_state_bytes()
        ledger = MemoryLedger(capacities={"gpu": cap})
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.CPU,
                grad_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.CPU,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=factory, lr=1e-3, ledger=ledger
        ) as eng:
            r = eng.train_step(batches())
            assert np.isfinite(r.mean_loss)
            assert eng.report().cpu_peak_bytes > 0

    def test_cpu_cap_enforced_too(self):
        ledger = MemoryLedger(capacities={"cpu": 1024})  # absurdly small
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(optimizer_device=OffloadDevice.CPU),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=factory, lr=1e-3, ledger=ledger
        ) as eng:
            with pytest.raises(AllocationError):
                eng.train_step(batches())

    def test_peak_tracking_reflects_gather_spikes(self):
        ledger = MemoryLedger()
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.CPU,
                grad_device=OffloadDevice.CPU,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=factory, lr=1e-3, ledger=ledger
        ) as eng:
            eng.train_step(batches())
            rep = eng.report()
            # CPU held param shards + grads + optimizer state
            assert rep.cpu_peak_bytes > model_state_bytes()
