"""Bucketed, zero-copy communication runtime: bit-equivalence and units.

The headline guarantee: routing the ZeRO-3 hot path through the coalesced
allgather + gradient-bucket runtime changes *how many* collectives run, not
a single bit of the training numerics.  Bucketed training must produce
weights and losses **bit-identical** to the per-parameter path (same
elementwise reduction in the same rank order), and both must match the DDP
oracle to float tolerance.
"""

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.comm import allgather, allgather_into, reduce_scatter, reduce_scatter_into
from repro.comm.collectives import allreduce
from repro.comm.group import ProcessGroup
from repro.core import (
    GradientBucketStore,
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import Parameter
from repro.utils.rng import seeded_rng, spawn_rngs

VOCAB = 64


def model_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def make_batches(world, steps, seed=3, bsz=2, seq=8):
    rng = seeded_rng(seed)
    return [
        [
            (
                rng.integers(0, VOCAB, size=(bsz, seq)),
                rng.integers(0, VOCAB, size=(bsz, seq)),
            )
            for _ in range(world)
        ]
        for _ in range(steps)
    ]


def config(world, stage, *, bucketed, **kw):
    if not bucketed:
        kw.setdefault("reduce_bucket_numel", 0)
        kw.setdefault("coalesce_allgather", False)
    else:
        # small capacity so tests exercise mid-step capacity flushes too
        kw.setdefault("reduce_bucket_numel", 4096)
    return ZeroConfig(world_size=world, stage=stage, loss_scale=1.0, **kw)


def train(cfg, batches, *, rounds_of=None, lr=1e-2):
    with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=lr) as eng:
        losses = []
        for b in batches:
            if rounds_of:
                res = eng.train_step_accumulated(
                    [b] * rounds_of
                )
            else:
                res = eng.train_step(b)
            losses.append(res.losses)
        return losses, eng.gather_state(), eng.report()


class TestBitEquivalence:
    """Bucketed + coalesced training is bit-identical to per-parameter."""

    @pytest.mark.parametrize("world", [1, 2, 4])
    @pytest.mark.parametrize(
        "stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS]
    )
    def test_weights_and_losses_identical(self, world, stage):
        batches = make_batches(world, steps=2)
        ref_losses, ref_state, ref_report = train(
            config(world, stage, bucketed=False), batches
        )
        new_losses, new_state, new_report = train(
            config(world, stage, bucketed=True), batches
        )
        assert new_losses == ref_losses  # float-exact
        assert set(new_state) == set(ref_state)
        for name, ref in ref_state.items():
            np.testing.assert_array_equal(new_state[name], ref, err_msg=name)
        # and the runtime actually bucketed: far fewer collectives
        assert (
            new_report.total_collective_calls
            < ref_report.total_collective_calls
        )

    @pytest.mark.parametrize("world", [2, 4])
    def test_gradient_accumulation_identical(self, world):
        batches = make_batches(world, steps=2, seed=11)
        ref_losses, ref_state, _ = train(
            config(world, ZeroStage.PARAMETERS, bucketed=False),
            batches,
            rounds_of=2,
        )
        new_losses, new_state, _ = train(
            config(world, ZeroStage.PARAMETERS, bucketed=True),
            batches,
            rounds_of=2,
        )
        assert new_losses == ref_losses
        for name, ref in ref_state.items():
            np.testing.assert_array_equal(new_state[name], ref, err_msg=name)

    @pytest.mark.parametrize("world", [2, 4])
    def test_matches_ddp_oracle(self, world):
        batches = make_batches(world, steps=3, seed=5)
        ddp = DDPTrainer(model_factory, world, lr=1e-2)
        ddp_losses = [np.mean(ddp.train_step(b)) for b in batches]
        losses, state, _ = train(
            config(world, ZeroStage.PARAMETERS, bucketed=True), batches
        )
        for step, l in enumerate(losses):
            assert np.mean(l) == pytest.approx(ddp_losses[step], rel=1e-5)
        for name, p in ddp.replicas[0].named_parameters():
            np.testing.assert_allclose(
                state[name], p.data, rtol=1e-4, atol=1e-6, err_msg=name
            )

    def test_nvme_offload_bucketed(self, tmp_path):
        """Bucketing composes with NVMe gradient offload + async writes."""
        world = 2
        batches = make_batches(world, steps=2, seed=9)
        off = OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            nvme_dir=str(tmp_path / "spool"),
        )
        ref = config(world, ZeroStage.PARAMETERS, bucketed=False, offload=off)
        ref_losses, ref_state, _ = train(ref, batches)
        off2 = OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            nvme_dir=str(tmp_path / "spool2"),
        )
        new = config(world, ZeroStage.PARAMETERS, bucketed=True, offload=off2)
        new_losses, new_state, _ = train(new, batches)
        assert new_losses == ref_losses
        for name, r in ref_state.items():
            np.testing.assert_array_equal(new_state[name], r, err_msg=name)


class TestGradientBucketStore:
    def _store(self, world=2, capacity=8, op="sum"):
        emitted = []
        store = GradientBucketStore(
            world,
            capacity,
            ProcessGroup(world),
            on_shard=lambda p, r, s: emitted.append((p, r, s.copy())),
            reduce_op=op,
        )
        return store, emitted

    def _param(self, n):
        return Parameter(np.zeros(n, dtype=np.float32), name=f"p{n}")

    def test_flush_on_capacity(self):
        store, emitted = self._store(world=2, capacity=8)
        p1, p2, p3 = self._param(4), self._param(4), self._param(4)
        store.add(p1, [np.ones(4, np.float32), np.ones(4, np.float32)])
        store.add(p2, [np.full(4, 2.0, np.float32)] * 2)
        assert store.stats.flushes == 0  # exactly fits: no flush yet
        store.add(p3, [np.ones(4, np.float32)] * 2)  # overflow -> flush
        assert store.stats.flushes == 1
        assert [e[0] for e in emitted] == [p1, p1, p2, p2]
        # p1 summed over 2 ranks: shard 0 = first half
        np.testing.assert_array_equal(emitted[0][2], [2.0, 2.0])
        store.flush()
        assert store.stats.flushes == 2
        assert store.pending_grads == 0

    def test_padding_to_world_multiple(self):
        store, emitted = self._store(world=2, capacity=8)
        p = self._param(3)  # pads to 4
        store.add(p, [np.array([1, 2, 3], np.float32)] * 2)
        store.flush()
        (param0, rank0, s0), (param1, rank1, s1) = emitted
        assert (rank0, rank1) == (0, 1)
        np.testing.assert_array_equal(s0, [2.0, 4.0])
        np.testing.assert_array_equal(s1, [6.0, 0.0])  # zero pad tail

    def test_oversized_gradient_gets_own_collective(self):
        store, emitted = self._store(world=2, capacity=8)
        p = self._param(20)
        store.add(p, [np.ones(20, np.float32)] * 2)
        assert store.stats.oversized_flushes == 1
        assert store.stats.flushes == 0
        assert len(emitted) == 2  # one shard per rank

    def test_shards_are_readonly_views(self):
        world = 2
        seen = []
        store = GradientBucketStore(
            world,
            8,
            ProcessGroup(world),
            on_shard=lambda p, r, s: seen.append(s),
        )
        store.add(self._param(4), [np.ones(4, np.float32)] * 2)
        store.flush()
        assert all(not s.flags.writeable for s in seen)

    def test_identical_to_per_param_reduce_scatter(self):
        """Bucket reduction == per-parameter padded reduce-scatter, bitwise."""
        world = 4
        rngs = spawn_rngs(0, world)
        sizes = [5, 16, 3, 8]
        grads = [
            [r.standard_normal(n).astype(np.float32) for r in rngs]
            for n in sizes
        ]
        # reference: per-param padded reduce_scatter
        expect = []
        for n, per_rank in zip(sizes, grads):
            padded = ((n + world - 1) // world) * world
            flats = []
            for g in per_rank:
                f = np.zeros(padded, np.float32)
                f[:n] = g
                flats.append(f)
            expect.append(reduce_scatter(flats, op="mean"))
        got: dict[int, dict[int, np.ndarray]] = {}
        store = GradientBucketStore(
            world,
            12,  # forces multiple flushes
            ProcessGroup(world),
            on_shard=lambda p, r, s: got.setdefault(p.unique_id, {}).__setitem__(
                r, s.copy()
            ),
            reduce_op="mean",
        )
        params = [self._param(n) for n in sizes]
        for p, per_rank in zip(params, grads):
            store.add(p, per_rank)
        store.flush()
        for p, exp in zip(params, expect):
            for r in range(world):
                np.testing.assert_array_equal(got[p.unique_id][r], exp[r])

    def test_buffers_reused_across_flushes(self):
        store, _ = self._store(world=2, capacity=8)
        p = self._param(4)
        store.add(p, [np.ones(4, np.float32)] * 2)
        store.flush()
        before = store.buffer_bytes
        store.add(p, [np.ones(4, np.float32)] * 2)
        store.flush()
        assert store.buffer_bytes == before


class TestZeroCopyCollectives:
    def test_allgather_into_matches_allgather(self):
        shards = [np.arange(3, dtype=np.float32) + 10 * r for r in range(3)]
        out = np.empty(9, dtype=np.float32)
        views = allgather_into(shards, out)
        np.testing.assert_array_equal(views[0], allgather(shards)[0])
        # every rank shares the same read-only memory, no copies
        assert all(np.shares_memory(v, out) for v in views)
        assert all(not v.flags.writeable for v in views)
        # the escape hatches are closed: .base is read-only too, and the
        # writeable flag cannot be flipped back on
        for v in views:
            with pytest.raises(TypeError):
                v.base[0] = 0.0
            with pytest.raises(ValueError):
                v.flags.writeable = True
        # still a live alias of the owner buffer, not a copy
        out[0] = 123.0
        assert views[0][0] == 123.0

    def test_allgather_into_reuses_buffer(self):
        out = np.empty(4, dtype=np.float32)
        allgather_into([np.ones(2, np.float32)] * 2, out)
        views = allgather_into([np.full(2, 7.0, np.float32)] * 2, out)
        np.testing.assert_array_equal(views[0], [7.0] * 4)

    def test_allgather_into_rejects_small_buffer(self):
        with pytest.raises(ValueError):
            allgather_into([np.ones(4)] * 2, np.empty(7))

    def test_reduce_scatter_into_matches_reduce_scatter(self):
        bufs = [np.arange(8, dtype=np.float32) * (r + 1) for r in range(2)]
        out = np.empty(8, dtype=np.float32)
        views = reduce_scatter_into(bufs, out, op="mean")
        ref = reduce_scatter(bufs, op="mean")
        for v, r in zip(views, ref):
            np.testing.assert_array_equal(v, r)
        assert all(np.shares_memory(v, out) for v in views)
        assert all(not v.flags.writeable for v in views)
        with pytest.raises(TypeError):
            views[0].base[0] = 0.0

    def test_reduce_scatter_into_size_checks(self):
        with pytest.raises(ValueError):
            reduce_scatter_into([np.ones(5)] * 2, np.empty(5))  # 5 % 2 != 0
        with pytest.raises(ValueError):
            reduce_scatter_into([np.ones(4)] * 2, np.empty(3))  # out too small

    def test_process_group_accounts_into_variants(self):
        pg = ProcessGroup(2)
        pg.allgather_into([np.ones(2, np.float32)] * 2, np.empty(4, np.float32))
        pg.reduce_scatter_into(
            [np.ones(4, np.float32)] * 2, np.empty(4, np.float32)
        )
        assert pg.stats.calls_by_op["allgather"] == 1
        assert pg.stats.calls_by_op["reduce_scatter"] == 1
        ref = ProcessGroup(2)
        ref.allgather([np.ones(2, np.float32)] * 2)
        ref.reduce_scatter([np.ones(4, np.float32)] * 2)
        assert pg.stats.bytes_by_op == ref.stats.bytes_by_op


class TestAllreduceMax:
    def test_max_result(self):
        bufs = [
            np.array([1.0, 5.0, -2.0], np.float32),
            np.array([4.0, 0.0, -1.0], np.float32),
        ]
        out = allreduce(bufs, op="max")
        for o in out:
            np.testing.assert_array_equal(o, [4.0, 5.0, -1.0])


class TestUpdateSliceWriteThrough:
    def _engine(self, tmp_path, device):
        cfg = ZeroConfig(
            world_size=2,
            stage=ZeroStage.PARAMETERS,
            bandwidth_centric=False,  # owner layout: the slice-update path
            offload=OffloadConfig(
                param_device=device, nvme_dir=str(tmp_path / "spool")
            ),
            loss_scale=1.0,
        )
        return ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2)

    @pytest.mark.parametrize(
        "device", [OffloadDevice.NONE, OffloadDevice.CPU, OffloadDevice.NVME]
    )
    def test_update_shard_round_trip(self, tmp_path, device):
        with self._engine(tmp_path, device) as eng:
            p = next(
                q for q in eng.model.parameters() if q.zero_meta is not None
            )
            sn = p.zero_meta.shard_numel
            new = np.arange(sn, dtype=np.float32)
            eng.partitioner.update_shard(p, 1, new)
            np.testing.assert_array_equal(
                eng.partitioner.get_shard(p, 1), new
            )
            # neighbouring shard untouched
            other = eng.partitioner.get_shard(p, 0)
            assert other.size == sn

    def test_cpu_link_traffic_is_slice_sized(self, tmp_path):
        with self._engine(tmp_path, OffloadDevice.CPU) as eng:
            p = next(
                q for q in eng.model.parameters() if q.zero_meta is not None
            )
            meta = p.zero_meta
            owner = meta.owner_rank
            before = eng.offload.counters.cpu_write_bytes
            eng.partitioner.update_shard(
                p, 1, np.zeros(meta.shard_numel, np.float32)
            )
            written = eng.offload.counters.cpu_write_bytes - before
            # write-through moves one shard, not the whole padded buffer
            assert written == meta.shard_numel * 4
            assert written < meta.padded_numel * 4
            assert owner is not None

    def test_training_still_equivalent(self):
        """Owner-layout training with write-through matches DDP."""
        world = 2
        batches = make_batches(world, steps=2, seed=21)
        ddp = DDPTrainer(model_factory, world, lr=1e-2)
        ddp_losses = [np.mean(ddp.train_step(b)) for b in batches]
        cfg = ZeroConfig(
            world_size=world,
            stage=ZeroStage.PARAMETERS,
            bandwidth_centric=False,
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            for step, b in enumerate(batches):
                assert eng.train_step(b).mean_loss == pytest.approx(
                    ddp_losses[step], rel=1e-5
                )
