"""Larger-configuration integration tests (the sizes unit tests avoid).

A wider world (8 ranks), a deeper model (4 layers, ~1M parameters),
mixed placements, activation checkpointing with NVMe offload, accumulation
and checkpoint/restore in one scenario — the closest this suite gets to a
production fine-tuning job, still in seconds.
"""

import threading

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.core.checkpoint_io import load_checkpoint, save_checkpoint
from repro.nn import GPTModel, TransformerConfig
from repro.nvme import TensorStore
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 8
VOCAB = 128


def big_factory():
    cfg = TransformerConfig(
        num_layers=4,
        hidden_dim=64,
        num_heads=8,
        vocab_size=VOCAB,
        max_seq=16,
        tie_embeddings=True,
        activation_checkpointing=True,
    )
    return GPTModel(cfg, rng=seeded_rng(21))


def batches(seed=0, bsz=2):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (bsz, 16)), r.integers(0, VOCAB, (bsz, 16)))
        for r in rngs
    ]


class TestWideWorldIntegration:
    def test_8rank_nvme_full_stack_matches_ddp(self, tmp_path):
        """8 ranks, NVMe everything, activation offload, tied weights,
        accumulation — numerically equal to DDP, then checkpoint/restore."""
        rounds = [batches(s, bsz=1) for s in (0, 1)]
        merged = [
            (
                np.concatenate([rounds[0][r][0], rounds[1][r][0]]),
                np.concatenate([rounds[0][r][1], rounds[1][r][1]]),
            )
            for r in range(WORLD)
        ]
        ddp = DDPTrainer(big_factory, WORLD, lr=1e-2)
        ref_losses = ddp.train_step(merged)

        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
                activation_device=OffloadDevice.NVME,
                optimizer_chunk_numel=977,
            ),
            loss_scale=1.0,
            param_persistence_threshold_numel=32,
        )
        with ZeroInfinityEngine(cfg, model_factory=big_factory, lr=1e-2) as eng:
            assert eng.model.num_parameters() > 200_000
            result = eng.train_step_accumulated(rounds)
            # per-round per-rank losses average to the merged-batch losses
            got = np.asarray(result.losses).reshape(2, WORLD).mean(axis=0)
            np.testing.assert_allclose(got, ref_losses, rtol=1e-4)

            save_checkpoint(eng, str(tmp_path / "ck"))
            before = eng.gather_state()
        # a fresh engine restores to identical weights
        with ZeroInfinityEngine(cfg, model_factory=big_factory, lr=1e-2) as eng2:
            load_checkpoint(eng2, str(tmp_path / "ck"))
            after = eng2.gather_state()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_engine_flag_introspection_path(self):
        """The introspect_activations engine flag installs without harm on
        a model that returns plain arrays."""
        cfg = ZeroConfig(world_size=2, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
        small = lambda: GPTModel(
            TransformerConfig(
                num_layers=1, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
            ),
            rng=seeded_rng(0),
        )
        with ZeroInfinityEngine(
            cfg, model_factory=small, lr=1e-3, introspect_activations=True
        ) as eng:
            rngs = spawn_rngs(1, 2)
            b = [
                (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8)))
                for r in rngs
            ]
            r1 = eng.train_step(b)
            assert np.isfinite(r1.mean_loss)


class TestStoreThreadSafety:
    def test_concurrent_writers_and_readers(self, tmp_path):
        """Many threads hammer the store on disjoint keys: all round-trips
        are bitwise, no metadata corruption."""
        errors: list[Exception] = []
        with TensorStore(str(tmp_path)) as store:

            def worker(tid: int) -> None:
                try:
                    rng = seeded_rng(tid)
                    for i in range(15):
                        key = f"t{tid}.k{i}"
                        data = rng.standard_normal(257 + tid).astype(np.float32)
                        store.write(key, data)
                        out = store.read(key)
                        np.testing.assert_array_equal(out, data)
                        if i % 3 == 0:
                            store.delete(key)
                except Exception as e:  # noqa: BLE001 - surfaced below
                    errors.append(e)

            threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert errors == []
            # remaining keys are exactly the non-deleted ones
            assert all(
                int(k.split("k")[-1]) % 3 != 0 for k in store.keys()
            )

    def test_concurrent_same_key_overwrites_atomic_metadata(self, tmp_path):
        """Racing overwrites of one key: the final read matches *some*
        writer's payload (no torn metadata)."""
        with TensorStore(str(tmp_path)) as store:
            store.write("x", np.zeros(64, dtype=np.float32))
            payloads = {
                t: np.full(64, float(t), dtype=np.float32) for t in range(6)
            }

            def writer(t):
                for _ in range(10):
                    store.write("x", payloads[t])

            threads = [threading.Thread(target=writer, args=(t,)) for t in payloads]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            final = store.read("x")
            assert any(
                np.array_equal(final, p) for p in payloads.values()
            )
