"""Property-based tests of the task-graph scheduler's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import TaskGraph


@st.composite
def random_dag(draw):
    """A random DAG: tasks with durations, streams, and backward deps."""
    n = draw(st.integers(1, 30))
    n_streams = draw(st.integers(1, 4))
    tasks = []
    for i in range(n):
        duration = draw(st.floats(0.0, 10.0, allow_nan=False))
        stream = draw(st.integers(0, n_streams - 1))
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = draw(
            st.lists(
                st.integers(0, i - 1), min_size=n_deps, max_size=n_deps, unique=True
            )
        ) if i else []
        tasks.append((f"t{i}", f"s{stream}", duration, deps))
    return tasks


def build(tasks):
    g = TaskGraph()
    for name, stream, duration, deps in tasks:
        g.add(name, stream, duration, deps)
    return g


class TestSchedulerInvariants:
    @given(random_dag())
    @settings(max_examples=100, deadline=None)
    def test_all_constraints_respected(self, tasks):
        result = build(tasks).run()
        by_index = {t.index: t for t in result.tasks}
        # 1. every task ran for exactly its duration
        for t in result.tasks:
            assert t.finish == pytest.approx(t.start + t.duration)
            assert t.start >= 0
        # 2. dependencies complete before dependents start
        for t in result.tasks:
            for d in t.deps:
                assert by_index[d].finish <= t.start + 1e-9
        # 3. tasks on one stream never overlap and keep submission order
        streams = {}
        for t in result.tasks:
            streams.setdefault(t.stream, []).append(t)
        for ts in streams.values():
            for a, b in zip(ts, ts[1:]):
                assert a.finish <= b.start + 1e-9

    @given(random_dag())
    @settings(max_examples=100, deadline=None)
    def test_makespan_bounds(self, tasks):
        result = build(tasks).run()
        total = sum(t.duration for t in result.tasks)
        # lower bound: the busiest stream; upper bound: full serialization
        busiest = max(result.stream_busy.values(), default=0.0)
        assert result.makespan + 1e-9 >= busiest
        assert result.makespan <= total + 1e-9
        # critical-path lower bound
        cp = {}
        for t in result.tasks:  # tasks are in index order
            cp[t.index] = t.duration + max(
                (cp[d] for d in t.deps), default=0.0
            )
        assert result.makespan + 1e-9 >= max(cp.values(), default=0.0)

    @given(random_dag())
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, tasks):
        r1 = build(tasks).run()
        r2 = build(tasks).run()
        assert r1.makespan == r2.makespan
        for a, b in zip(r1.tasks, r2.tasks):
            assert a.start == b.start and a.finish == b.finish

    @given(random_dag())
    @settings(max_examples=50, deadline=None)
    def test_busy_accounting_sums_durations(self, tasks):
        result = build(tasks).run()
        assert sum(result.stream_busy.values()) == pytest.approx(
            sum(t.duration for t in result.tasks)
        )
