"""Max-model-size solver: the Fig. 1 and Fig. 6a scale claims."""

import pytest

from repro.core.config import Strategy
from repro.core.scale import (
    default_attn_heads,
    default_hidden_dim,
    max_model_size,
    model_fits,
)
from repro.hardware import dgx2_cluster


@pytest.fixture(scope="module")
def one_node():
    return dgx2_cluster(1)


@pytest.fixture(scope="module")
def pod32():
    return dgx2_cluster(32)


class TestFig6aProgression:
    """Fig. 6a on one DGX-2: each strategy unlocks the next scale jump."""

    @pytest.fixture(scope="class")
    def results(self):
        cluster = dgx2_cluster(1)
        out = {}
        for s in Strategy:
            kw = dict(bsz_per_gpu=1)
            if s is Strategy.THREED:
                kw["mp_degree"] = 4
            if s in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME):
                kw["tile_factor"] = 16
            out[s] = max_model_size(s, cluster, **kw)
        return out

    def test_data_parallel_about_1_4b(self, results):
        assert 1.0e9 < results[Strategy.DATA_PARALLEL].max_params < 2.5e9

    def test_zero2_about_9x_dp(self, results):
        """Paper: 'we are able to scale up 9x to 13B' with ZeRO-2/Offload."""
        ratio = (
            results[Strategy.ZERO_2].max_params
            / results[Strategy.DATA_PARALLEL].max_params
        )
        assert 4 < ratio < 15

    def test_offload_unlocks_more_than_zero2(self, results):
        assert (
            results[Strategy.ZERO_OFFLOAD].max_params
            > results[Strategy.ZERO_2].max_params
        )

    def test_zero3_between_offload_and_inf(self, results):
        assert (
            results[Strategy.ZERO_OFFLOAD].max_params
            < results[Strategy.ZERO_3].max_params
            < results[Strategy.ZERO_INF_CPU].max_params
        )

    def test_inf_cpu_approaches_100b(self, results):
        """Paper: 'allows us to almost reach 100B parameters'."""
        assert 50e9 < results[Strategy.ZERO_INF_CPU].max_params < 110e9

    def test_inf_nvme_reaches_a_trillion(self, results):
        """Paper: 'offloading model states to NVMe ... gets us to 1T'."""
        assert results[Strategy.ZERO_INF_NVME].max_params > 1e12

    def test_700x_total_leap(self, results):
        """Paper: 'a 700x increase in model size relative to data
        parallelism alone'."""
        ratio = (
            results[Strategy.ZERO_INF_NVME].max_params
            / results[Strategy.DATA_PARALLEL].max_params
        )
        assert ratio > 400

    def test_monotone_progression(self, results):
        order = [
            Strategy.DATA_PARALLEL,
            Strategy.ZERO_2,
            Strategy.ZERO_OFFLOAD,
            Strategy.ZERO_INF_CPU,
            Strategy.ZERO_INF_NVME,
        ]
        sizes = [results[s].max_params for s in order]
        assert sizes == sorted(sizes)

    def test_limiting_factors(self, results):
        assert results[Strategy.DATA_PARALLEL].limiting_factor == "gpu-memory"
        assert results[Strategy.ZERO_INF_CPU].limiting_factor == "cpu-memory"
        assert results[Strategy.ZERO_INF_NVME].limiting_factor == "nvme-capacity"


class TestFig1Scale:
    """Fig. 1 on 32 DGX-2 nodes (512 GPUs)."""

    def test_3d_parallelism_ceiling(self, pod32):
        r = max_model_size(Strategy.THREED, pod32, mp_degree=4, bsz_per_gpu=1)
        assert 0.4e12 < r.max_params < 0.9e12  # paper: ~650B

    def test_infinity_order_of_magnitude_beyond(self, pod32):
        r3d = max_model_size(Strategy.THREED, pod32, mp_degree=4, bsz_per_gpu=1)
        rinf = max_model_size(
            Strategy.ZERO_INF_NVME, pod32, tile_factor=16, bsz_per_gpu=1
        )
        # paper demonstrates 32T trained = 50x; capacity solve gives ~45T
        assert rinf.max_params > 30e12
        assert rinf.max_params / r3d.max_params > 30

    def test_one_trillion_per_node(self, one_node):
        """Abstract: 'supports one trillion parameters per ... DGX-2 node'."""
        r = max_model_size(
            Strategy.ZERO_INF_NVME, one_node, tile_factor=16, bsz_per_gpu=1
        )
        assert r.max_params > 1e12

    def test_100t_within_96_node_cluster(self):
        """Sec. 5.1.1: 100T model states fit the NVMe of 96 nodes.

        The paper notes the 100T activation checkpoints (~3 TB/node) are
        only 'within reach of the CPU memory of the next generation
        hardware' — on today's 1.5 TB they bind first, so we solve with a
        sparser checkpoint interval (ci=2) to expose the NVMe capacity
        headroom the section claims.
        """
        r = max_model_size(
            Strategy.ZERO_INF_NVME,
            dgx2_cluster(96),
            tile_factor=32,
            bsz_per_gpu=1,
            ci=2,
        )
        assert r.max_params > 100e12
        # and the states themselves fit: 20 B x 100T = 2 PB < 2.688 PB NVMe
        rep = model_fits(
            Strategy.ZERO_INF_NVME,
            dgx2_cluster(96),
            int(100e12),
            tile_factor=32,
            ci=2,
        )
        assert rep.nvme_bytes_needed < dgx2_cluster(96).nvme_bytes


class TestModelFits:
    def test_fit_report_fields(self, one_node):
        rep = model_fits(Strategy.ZERO_INF_NVME, one_node, int(1e12), tile_factor=16)
        assert rep.fits
        assert rep.nvme_bytes_needed == 20e12
        assert rep.gpu_bytes_needed > 0

    def test_gpu_memory_binds_without_tiling(self, one_node):
        """Without memory-centric tiling, MSWM kills huge hidden sizes."""
        rep = model_fits(
            Strategy.ZERO_INF_NVME, one_node, int(30e12), tile_factor=1
        )
        assert not rep.fits
        assert rep.limiting_factor == "gpu-memory"
        rep16 = model_fits(
            Strategy.ZERO_INF_NVME, one_node, int(30e12), tile_factor=16
        )
        # tiling removes the working-memory obstacle; capacity now binds
        assert rep16.limiting_factor in ("", "nvme-capacity")

    def test_invalid_params_raise(self, one_node):
        with pytest.raises(ValueError):
            model_fits(Strategy.ZERO_3, one_node, 0)

    def test_bigger_cluster_fits_more(self):
        small = max_model_size(Strategy.ZERO_3, dgx2_cluster(1), bsz_per_gpu=1)
        large = max_model_size(Strategy.ZERO_3, dgx2_cluster(16), bsz_per_gpu=1)
        assert large.max_params > 8 * small.max_params


class TestDefaults:
    def test_hidden_dim_monotone(self):
        sizes = [default_hidden_dim(int(p)) for p in (1e9, 1e10, 1e11, 1e12, 1e13, 1e14)]
        assert sizes == sorted(sizes)

    def test_heads_track_hidden(self):
        assert default_attn_heads(2048) == 16
        assert default_attn_heads(163840) == 1024
