"""Cross-validation: the simulator agrees with the Sec. 4 closed forms.

DESIGN.md's test plan: "efficiency from simulated timeline matches Eq. (6)
closed form in no-overlap single-bottleneck scenarios."  We construct such
scenarios — one data stream active, overlap disabled — and compare the
simulated efficiency against Eq. (6) evaluated with the matching AIT.
"""

import pytest

from repro.analytics.bandwidth_model import DEFAULT_PEAK_TP, efficiency
from repro.core.config import OffloadDevice
from repro.hardware import dgx2_cluster
from repro.sim import SimPolicy, SimWorkload, StepSimulator


def workload(bsz):
    return SimWorkload(
        params=int(8e9),
        num_layers=10,
        hidden_dim=8192,
        attn_heads=16,
        batch_per_gpu=bsz,
        ci=1,
    )


class TestSimulatorMatchesEq6:
    @pytest.mark.parametrize("bsz", [1, 2, 4, 8])
    def test_param_fetch_bottleneck(self, bsz):
        """Params on CPU, no overlap, everything else free.

        The sim moves fp16 parameters 2x (fwd + bwd fetch) and writes
        gradient shards 1x over the per-GPU parallel PCIe bandwidth, against
        compute of 8*bsz*seq*P flops — i.e. AIT_sim = 8*bsz*seq*P /
        (2*2P + 2P/dp + ...) ~ (4/3)*seq*bsz when dp is large.  Eq. (9)'s
        seq*bsz corresponds to 4 full-parameter movements; the sim's
        per-GPU movement under bandwidth-centric sharding is smaller, so we
        compare against Eq. (6) at the sim's own data volume and demand
        agreement within 10%, plus qualitative agreement (within 35%) with
        the plain Eq. (9) prediction.
        """
        cluster = dgx2_cluster(4)
        pol = SimPolicy(
            name="cpu-params-serial",
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            overlap=False,
        )
        sim = StepSimulator(cluster, workload(bsz), pol)
        b = sim.simulate()
        # measured efficiency: useful-compute time over total (excluding
        # the optimizer tail, which Eq. (9) ignores)
        total_wo_opt = b.total_time - b.optimizer_time
        sim_eff = b.compute_time / total_wo_opt

        # closed form at the sim's actual data volume
        dp = cluster.num_gpus
        params = workload(bsz).params
        moved_bytes = 2 * (2 * params) / dp * 2 + (2 * params) / dp  # fetches + grads (per GPU)
        flops = 8 * bsz * 1024 * params
        ait_sim = flops / moved_bytes
        bw = cluster.node.cpu_bw_per_gpu_parallel
        # non-PCIe terms (gg allgather/reduce-scatter) also serialize; fold
        # them in as extra movement time for the closed-form comparison
        gg_time = b.gg_time
        pcie_time = b.cg_time
        closed = b.compute_time / (b.compute_time + pcie_time + gg_time)
        assert sim_eff == pytest.approx(closed, rel=0.10)

        eq9 = efficiency(ait=1024 * bsz, bw=bw, peak_tp=DEFAULT_PEAK_TP)
        # qualitative: same regime and same ordering in batch size
        assert sim_eff == pytest.approx(eq9, rel=0.35) or sim_eff > eq9

    def test_efficiency_monotone_in_batch_like_eq6(self):
        cluster = dgx2_cluster(4)
        pol = SimPolicy(
            name="cpu-params-serial",
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            overlap=False,
        )
        effs = []
        for bsz in (1, 2, 4, 8, 16):
            b = StepSimulator(cluster, workload(bsz), pol).simulate()
            effs.append(b.compute_time / (b.total_time - b.optimizer_time))
        assert effs == sorted(effs)

    def test_overlap_recovers_eq6_ceiling(self):
        """With overlap on and ample bandwidth, efficiency approaches 1
        (the Eq. (6) limit as ait*bw >> peak)."""
        cluster = dgx2_cluster(4)
        pol = SimPolicy(name="gpu-only", overlap=True)
        b = StepSimulator(cluster, workload(16), pol).simulate()
        eff = b.compute_time / b.total_time
        assert eff > 0.95

    def test_activation_offload_matches_eq11_regime(self):
        """Checkpoint offload cost vanishes as hd grows — the Eq. (11)
        AIT ~ 24*hd*ci scaling, reproduced by the simulator."""
        cluster = dgx2_cluster(2)

        def slowdown(hd):
            wl = SimWorkload(
                params=12 * 5 * hd * hd,
                num_layers=5,
                hidden_dim=hd,
                attn_heads=16,
                batch_per_gpu=4,
            )
            on = StepSimulator(
                cluster, wl, SimPolicy(name="on", act_offload=True, overlap=False)
            ).simulate()
            off = StepSimulator(
                cluster, wl, SimPolicy(name="off", overlap=False)
            ).simulate()
            return on.total_time / off.total_time

        s2k, s8k, s32k = slowdown(2048), slowdown(8192), slowdown(32768)
        assert s2k > s8k > s32k
        # Eq. (11) predicts quadrupling hd quarters the relative overhead;
        # scheduling effects (partial hiding of reduce-scatter behind the
        # checkpoint loads) push the measured ratio somewhat above 4, so we
        # assert the 1/hd *regime* rather than the exact constant.
        assert 2.5 < (s2k - 1) / (s8k - 1) < 8.0
        assert 2.5 < (s8k - 1) / (s32k - 1) < 8.0
