"""Chaos matrix: training under injected faults matches fault-free training.

The headline resilience claim (docs/resilience.md): for every *recoverable*
fault class, a run with the fault plane armed trains to **bit-identical**
final weights versus the fault-free baseline — the recovery tiers (aio
retry, checksum re-fetch, pinned/sync fallback, step replay) are invisible
to the numerics.  Unrecoverable faults surface as one structured
:class:`FaultUnrecoverable`, never a hang or silent corruption.

Tier 1 runs a bounded fast subset of the matrix; ``REPRO_CHECK=all`` in the
environment widens it to fault class x stage {2,3} x world {1,2,4} x
{CPU, NVMe} plus more property-test examples.  Select with ``-m chaos``.
"""

import contextlib
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import CheckConfig, use_checker
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.faults import FaultUnrecoverable, use_faults
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng

pytestmark = pytest.mark.chaos

FULL = os.environ.get("REPRO_CHECK", "").strip().lower() == "all"

VOCAB = 64
STEPS = 3


def model_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def make_batches(world, steps=STEPS, seed=3, bsz=2, seq=8):
    rng = seeded_rng(seed)
    return [
        [
            (
                rng.integers(0, VOCAB, size=(bsz, seq)),
                rng.integers(0, VOCAB, size=(bsz, seq)),
            )
            for _ in range(world)
        ]
        for _ in range(steps)
    ]


def chaos_config(stage, world, tier, *, step_retries=2):
    dev = OffloadDevice.CPU if tier == "cpu" else OffloadDevice.NVME
    return ZeroConfig(
        world_size=world,
        stage=stage,
        step_retries=step_retries,
        offload=OffloadConfig(
            param_device=(
                dev if stage is ZeroStage.PARAMETERS else OffloadDevice.NONE
            ),
            grad_device=dev,
            optimizer_device=dev,
            optimizer_chunk_numel=97,
        ),
        loss_scale=1.0,
    )


def run_training(stage, world, tier, *, faults=None, seed=0, step_retries=2):
    """Train STEPS steps; the plane is armed only around the steps, so
    engine init and the final gather are always fault-free."""
    cfg = chaos_config(stage, world, tier, step_retries=step_retries)
    batches = make_batches(world)
    with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
        ctx = (
            use_faults(faults, seed=seed)
            if faults
            else contextlib.nullcontext()
        )
        with ctx:
            losses = [eng.train_step(b).mean_loss for b in batches]
            # snapshot while the plane is installed so faults_injected
            # reflects this run's schedule
            report = eng.report()
        state = eng.gather_state()
    return losses, state, report


_BASELINES: dict = {}


def baseline(stage, world, tier):
    key = (stage, world, tier)
    if key not in _BASELINES:
        losses, state, _ = run_training(stage, world, tier)
        _BASELINES[key] = (losses, state)
    return _BASELINES[key]


def assert_bit_identical(state, ref_state, losses, ref_losses, detail=""):
    assert losses == ref_losses, f"losses diverged {detail}"
    assert state.keys() == ref_state.keys()
    for name, ref in ref_state.items():
        assert np.array_equal(state[name], ref), f"{name} diverged {detail}"


# (id, spec, applicable stages) — every class the plane can inject that the
# recovery tiers must absorb without touching the numerics.  Fault sites
# that a placement never visits (e.g. aio on the CPU tier) make the run a
# no-op faithfulness check: armed plane, zero injections, identical bits.
BOTH = (ZeroStage.GRADIENTS, ZeroStage.PARAMETERS)
FAULT_CASES = [
    ("io-read-retry", "io_error@aio.read:times=2", BOTH),
    ("io-write-retry", "io_error@aio.write:times=2", BOTH),
    # exceeds the per-call aio budget -> step replay.  Under stage 2 the
    # first reads of the storm land mid-optimizer; the transactional step
    # (shadow writes + rollback) makes those replayable too, so the storm
    # recovers on both stages.
    ("read-storm", "io_error@aio.read:times=6", BOTH),
    ("bit-flip", "bit_flip@aio.read:times=1", BOTH),
    ("torn-grad-write", "torn_write@store.commit:times=1,key=grad16", BOTH),
    # optimizer-phase faults: injected into the chunked optimizer stream's
    # shadow writes and the small-shard state commits; the transaction
    # rolls the step back and the replay tier absorbs the fault
    ("opt-write-storm", "io_error@aio.write:times=6", BOTH),
    ("torn-opt-write", "torn_write@store.commit:times=1,key=master", BOTH),
    ("opt-slow", "slow@aio.write:p=0.4,delay_us=300", BOTH),
    ("pinned-squeeze", "pinned_exhaustion@pool.acquire:times=3", BOTH),
    ("slow-disk", "slow@aio.read:p=0.3,delay_us=200", BOTH),
    ("straggler", "straggler@rank.begin:rank=0,delay_us=1000,times=2", BOTH),
]

# stage-2 / cpu fast subset; opt-write-storm keeps one optimizer-phase
# fault in every tier-1 run
FAST_SMOKE_FAULTS = {"io-read-retry", "bit-flip", "opt-write-storm"}


def matrix():
    if FULL:
        combos = [
            (s, w, t)
            for s in BOTH
            for w in (1, 2, 4)
            for t in ("cpu", "nvme")
        ]
    else:
        combos = [
            (ZeroStage.PARAMETERS, 2, "nvme"),
            (ZeroStage.PARAMETERS, 2, "cpu"),
            (ZeroStage.GRADIENTS, 2, "nvme"),
        ]
    params = []
    for fid, spec, stages in FAULT_CASES:
        for stage, world, tier in combos:
            if stage not in stages:
                continue
            if (
                not FULL
                and stage is ZeroStage.GRADIENTS
                and fid not in FAST_SMOKE_FAULTS
            ):
                continue
            if not FULL and tier == "cpu" and fid not in FAST_SMOKE_FAULTS:
                continue
            params.append(
                pytest.param(
                    fid,
                    spec,
                    stage,
                    world,
                    tier,
                    id=f"{fid}-zero{stage.value}-w{world}-{tier}",
                )
            )
    return params


class TestRecoverableMatrix:
    @pytest.mark.parametrize("fid,spec,stage,world,tier", matrix())
    def test_trains_bit_identical_under_faults(
        self, fid, spec, stage, world, tier
    ):
        ref_losses, ref_state = baseline(stage, world, tier)
        losses, state, report = run_training(
            stage, world, tier, faults=spec, seed=11
        )
        assert_bit_identical(
            state, ref_state, losses, ref_losses, detail=f"({fid})"
        )
        # the plane was armed; whatever it injected was fully absorbed
        assert report.faults_injected is not None

    def test_recovery_counters_surface_in_report(self):
        spec = (
            "io_error@aio.read:times=2;"
            "bit_flip@aio.read:at=5;"
            "pinned_exhaustion@pool.acquire:times=1"
        )
        ref_losses, ref_state = baseline(ZeroStage.PARAMETERS, 2, "nvme")
        losses, state, rep = run_training(
            ZeroStage.PARAMETERS, 2, "nvme", faults=spec
        )
        assert_bit_identical(state, ref_state, losses, ref_losses)
        assert rep.io_read_retries >= 2
        assert rep.checksum_refetches >= 1
        assert rep.pinned_fallbacks + rep.prefetch_fallbacks >= 1
        assert sum(rep.faults_injected.values()) >= 4

    def test_read_storm_triggers_step_replay(self):
        ref_losses, ref_state = baseline(ZeroStage.PARAMETERS, 2, "nvme")
        losses, state, rep = run_training(
            ZeroStage.PARAMETERS,
            2,
            "nvme",
            faults="io_error@aio.read:times=8",
            step_retries=3,
        )
        assert_bit_identical(state, ref_state, losses, ref_losses)
        assert 1 <= rep.step_retries <= 3

    @pytest.mark.parametrize(
        "stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS]
    )
    def test_optimizer_write_storm_triggers_step_replay(self, stage):
        """An exhausted write budget mid-optimizer rolls the transactional
        step back and rides the same replay tier as forward/backward
        faults — the PR-5 escalation carve-out is gone."""
        ref_losses, ref_state = baseline(stage, 2, "nvme")
        losses, state, rep = run_training(
            stage,
            2,
            "nvme",
            faults="io_error@aio.write:times=6",
            step_retries=3,
        )
        assert_bit_identical(state, ref_state, losses, ref_losses)
        assert 1 <= rep.step_retries <= 3


class TestUnrecoverable:
    def test_persistent_corruption_is_one_structured_error(self):
        cfg = chaos_config(ZeroStage.PARAMETERS, 2, "nvme")
        batches = make_batches(2)
        with ZeroInfinityEngine(
            cfg, model_factory=model_factory, lr=1e-2
        ) as eng:
            with use_faults("bit_flip@aio.read:times=1000"):
                with pytest.raises(FaultUnrecoverable) as exc:
                    for b in batches:
                        eng.train_step(b)
            # attributed: which tier gave up, on what, after how many tries
            assert exc.value.site == "store.read"
            assert exc.value.kind == "checksum"
            assert exc.value.attempts >= 1
            rep = eng.report()
        assert rep.checksum_failures >= 1
        # the engine context exited cleanly after the failure (no hang,
        # no secondary error) — reaching here is the assertion

    def test_step_replay_never_retries_unrecoverable(self):
        """A FaultUnrecoverable must cost zero replay budget."""
        cfg = chaos_config(ZeroStage.PARAMETERS, 1, "nvme", step_retries=2)
        with ZeroInfinityEngine(
            cfg, model_factory=model_factory, lr=1e-2
        ) as eng:
            with use_faults("bit_flip@aio.read:times=1000"):
                with pytest.raises(FaultUnrecoverable):
                    eng.train_step(make_batches(1)[0])
            assert eng.step_retries_used == 0


class TestSanitizedChaos:
    def test_recovery_paths_are_zerosan_clean(self):
        """Retry, re-fetch, and fallback must not bend lifecycle, ordering,
        or aio-race rules — run a faulted training under every runtime
        checker pass in record mode and require silence."""
        spec = (
            "io_error@aio.read:times=2;"
            "pinned_exhaustion@pool.acquire:times=1;"
            "bit_flip@aio.read:at=7;"
            "io_error@aio.write:times=3"
        )
        with use_checker(CheckConfig.from_spec("all", mode="record")) as ctx:
            losses, state, rep = run_training(
                ZeroStage.PARAMETERS, 2, "nvme", faults=spec
            )
        assert ctx.violation_counts() == {}
        assert sum(rep.faults_injected.values()) >= 3


# -- property-based random schedules -----------------------------------------

RULE_FRAGMENTS = [
    "io_error@aio.read:times=%d",
    "io_error@aio.write:times=%d",
    "bit_flip@aio.read:times=%d",
    "torn_write@store.commit:times=%d",
    "pinned_exhaustion@pool.acquire:times=%d",
    "slow@aio.read:times=%d,delay_us=300",
    "straggler@rank.begin:rank=0,times=%d,delay_us=500",
]

rule_st = st.builds(
    lambda frag, times: frag % times,
    st.sampled_from(RULE_FRAGMENTS),
    st.integers(min_value=1, max_value=4),
)
schedule_st = st.lists(rule_st, min_size=1, max_size=2).map(";".join)


class TestRandomSchedules:
    @settings(
        max_examples=25 if FULL else 6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=schedule_st, seed=st.integers(min_value=0, max_value=999))
    def test_recovers_or_fails_structurally(self, spec, seed):
        """Any bounded schedule either trains to bit-identical weights or
        surfaces exactly one attributed FaultUnrecoverable — never a hang,
        a raw low-level error, or silently different bits."""
        ref_losses, ref_state = baseline(ZeroStage.PARAMETERS, 2, "nvme")
        try:
            losses, state, _ = run_training(
                ZeroStage.PARAMETERS,
                2,
                "nvme",
                faults=spec,
                seed=seed,
                step_retries=4,
            )
        except FaultUnrecoverable as err:
            assert err.site, spec
            assert err.kind, spec
        else:
            assert_bit_identical(
                state, ref_state, losses, ref_losses, detail=f"({spec!r})"
            )
