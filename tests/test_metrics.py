"""JSONL metrics logging: durability, reload, and trainer integration."""

import json
import os

import numpy as np
import pytest

from repro.core import ZeroConfig, ZeroInfinityEngine
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng
from repro.workloads import (
    ConstantSchedule,
    MarkovCorpus,
    MetricsLogger,
    Trainer,
    TrainerConfig,
    iter_losses,
    per_rank_batches,
    read_metrics,
)


class TestMetricsLogger:
    def test_log_and_reload(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with MetricsLogger(path, run_name="exp1") as log:
            log.log("config", world=4)
            log.log_step(0, 3.5, 1e-3)
            log.log_step(1, 3.2, 1e-3, skipped=False)
        records = read_metrics(path)
        assert len(records) == 3
        assert records[0]["run"] == "exp1"
        assert records[1]["event"] == "step"
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_event_filter(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with MetricsLogger(path) as log:
            log.log("config", a=1)
            log.log_step(0, 1.0, 0.1)
        assert len(read_metrics(path, event="step")) == 1

    def test_append_mode_across_sessions(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with MetricsLogger(path) as log:
            log.log_step(0, 3.0, 1e-3)
        with MetricsLogger(path) as log:
            log.log_step(1, 2.5, 1e-3)
        assert len(list(iter_losses(path))) == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with MetricsLogger(path) as log:
            log.log_step(0, 3.0, 1e-3)
        with open(path, "a") as fh:
            fh.write('{"event": "step", "step": 1, "lo')  # simulated crash
        losses = list(iter_losses(path))
        assert losses == [(0, 3.0)]

    def test_iter_losses_order(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with MetricsLogger(path) as log:
            for s in range(5):
                log.log_step(s, 5.0 - s, 1e-3)
        steps = [s for s, _ in iter_losses(path)]
        assert steps == list(range(5))

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "run.jsonl")
        with MetricsLogger(path) as log:
            log.log("x")
        assert os.path.exists(path)

    def test_close_is_idempotent(self, tmp_path):
        log = MetricsLogger(str(tmp_path / "run.jsonl"))
        log.log("x")
        assert not log.closed
        log.close()
        log.close()  # second close must be a no-op, not an error
        assert log.closed

    def test_log_after_close_raises(self, tmp_path):
        log = MetricsLogger(str(tmp_path / "run.jsonl"))
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.log("late")

    def test_flush_every_batches_writes(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = MetricsLogger(path, flush_every=3)
        log.log("a")
        log.log("b")
        assert read_metrics(path) == []  # buffered: nothing durable yet
        log.log("c")  # third event crosses the batch boundary
        assert [r["event"] for r in read_metrics(path)] == ["a", "b", "c"]
        log.log("d")
        log.close()  # close flushes the partial batch
        assert len(read_metrics(path)) == 4

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsLogger(str(tmp_path / "run.jsonl"), flush_every=0)


class TestTrainerIntegration:
    def test_trainer_writes_metrics(self, tmp_path):
        cfg = TransformerConfig(
            num_layers=1, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
        )
        zcfg = ZeroConfig(world_size=2, loss_scale=1.0)
        path = str(tmp_path / "train.jsonl")
        with ZeroInfinityEngine(
            zcfg, model_factory=lambda: GPTModel(cfg, rng=seeded_rng(0)), lr=1e-3
        ) as engine, MetricsLogger(path) as metrics:
            data = per_rank_batches(
                MarkovCorpus(32), world_size=2, bsz_per_rank=2, seq=8, seed=0
            )
            trainer = Trainer(
                engine,
                data,
                TrainerConfig(total_steps=4, log_every=0),
                schedule=ConstantSchedule(lr=1e-3),
                metrics=metrics,
            )
            hist = trainer.fit()
        records = read_metrics(path, event="step")
        assert len(records) == 4
        logged = [r["loss"] for r in records]
        np.testing.assert_allclose(logged, hist.losses)
        assert all("loss_scale" in r for r in records)
