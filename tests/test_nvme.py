"""Async I/O engine, pinned buffer pool, tensor store, chunked swapper."""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvme import (
    AsyncIOEngine,
    ChunkedSwapper,
    PinnedBufferPool,
    TensorStore,
)
from repro.nvme.buffers import PinnedBudgetExceeded


@pytest.fixture
def engine():
    with AsyncIOEngine(num_threads=4, block_bytes=4096) as eng:
        yield eng


@pytest.fixture
def store(tmp_path):
    with TensorStore(str(tmp_path / "spool")) as ts:
        yield ts


class TestAsyncIOEngine:
    def test_write_read_roundtrip(self, engine, tmp_path):
        path = str(tmp_path / "f.bin")
        data = np.arange(10_000, dtype=np.float32)
        engine.write(path, data)
        out = np.empty_like(data)
        engine.read(path, out)
        np.testing.assert_array_equal(data, out)

    def test_async_handles_complete(self, engine, tmp_path):
        path = str(tmp_path / "f.bin")
        data = np.arange(1000, dtype=np.float64)
        req = engine.submit_write(path, data)
        req.wait()
        assert req.done()
        out = np.empty_like(data)
        req2 = engine.submit_read(path, out)
        req2.wait()
        np.testing.assert_array_equal(data, out)

    def test_offset_io(self, engine, tmp_path):
        path = str(tmp_path / "f.bin")
        engine.write(path, np.zeros(100, dtype=np.float32))
        engine.write(path, np.ones(10, dtype=np.float32), file_offset=40)
        out = np.empty(100, dtype=np.float32)
        engine.read(path, out)
        assert np.all(out[10:20] == 1.0)
        assert np.all(out[:10] == 0.0)

    def test_large_request_splits_into_blocks(self, tmp_path):
        with AsyncIOEngine(num_threads=4, block_bytes=1024) as eng:
            path = str(tmp_path / "big.bin")
            data = np.random.default_rng(0).random(100_000).astype(np.float32)
            eng.write(path, data)
            out = np.empty_like(data)
            eng.read(path, out)
            np.testing.assert_array_equal(data, out)
            # 400 KB / 1 KB blocks = hundreds of sub-operations issued
            assert eng.stats.bytes_written == data.nbytes

    def test_synchronize_flushes_all(self, engine, tmp_path):
        reqs = [
            engine.submit_write(
                str(tmp_path / f"f{i}.bin"), np.full(1000, i, dtype=np.float32)
            )
            for i in range(8)
        ]
        engine.synchronize()
        assert all(r.done() for r in reqs)

    def test_short_read_raises(self, engine, tmp_path):
        path = str(tmp_path / "small.bin")
        engine.write(path, np.zeros(4, dtype=np.float32))
        out = np.empty(100, dtype=np.float32)
        req = engine.submit_read(path, out)
        with pytest.raises(IOError):
            req.wait()

    def test_noncontiguous_read_target_raises(self, engine, tmp_path):
        path = str(tmp_path / "f.bin")
        engine.write(path, np.zeros(16, dtype=np.float32))
        out = np.empty((4, 8), dtype=np.float32)[:, ::2]
        with pytest.raises(ValueError):
            engine.submit_read(path, out)

    def test_closed_engine_rejects(self, tmp_path):
        eng = AsyncIOEngine()
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit_write(str(tmp_path / "x"), np.zeros(1))

    def test_stats_accumulate(self, engine, tmp_path):
        path = str(tmp_path / "f.bin")
        engine.write(path, np.zeros(256, dtype=np.float32))
        out = np.empty(256, dtype=np.float32)
        engine.read(path, out)
        assert engine.stats.bytes_written == 1024
        assert engine.stats.bytes_read == 1024
        assert engine.stats.write_requests == 1
        assert engine.stats.read_requests == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            AsyncIOEngine(num_threads=0)
        with pytest.raises(ValueError):
            AsyncIOEngine(block_bytes=0)


class TestPinnedBufferPool:
    def test_acquire_release_cycle(self):
        pool = PinnedBufferPool(10_000)
        buf = pool.acquire(100, np.float32)
        assert buf.array.shape == (100,)
        assert pool.live_bytes > 0
        buf.release()
        assert pool.live_bytes == 0
        assert pool.cached_bytes > 0

    def test_reuse_hits(self):
        pool = PinnedBufferPool(10_000, alignment=64)
        a = pool.acquire(100, np.float32)
        a.release()
        b = pool.acquire(50, np.float32)  # smaller fits in cached buffer
        assert pool.stats.reuse_hits == 1
        b.release()

    def test_budget_enforced(self):
        pool = PinnedBufferPool(1000, alignment=64)
        a = pool.acquire(200, np.float32)  # 800 bytes
        with pytest.raises(PinnedBudgetExceeded):
            pool.acquire(200, np.float32)
        a.release()
        pool.acquire(200, np.float32)  # fine after release

    def test_eviction_makes_room(self):
        pool = PinnedBufferPool(1000, alignment=64)
        a = pool.acquire(100, np.float32)
        a.release()  # cached 448 bytes (aligned)
        b = pool.acquire(200, np.float32)  # needs eviction of the cached one
        assert b.array.size == 200

    def test_double_release_raises(self):
        pool = PinnedBufferPool(1000, alignment=64)
        buf = pool.acquire(10, np.float32)
        buf.release()
        with pytest.raises(RuntimeError):
            buf.release()

    def test_context_manager_releases(self):
        pool = PinnedBufferPool(10_000)
        with pool.acquire(10, np.float32):
            assert pool.live_bytes > 0
        assert pool.live_bytes == 0

    def test_peak_tracking(self):
        pool = PinnedBufferPool(100_000, alignment=64)
        bufs = [pool.acquire(1000, np.float32) for _ in range(3)]
        peak = pool.stats.peak_bytes
        for b in bufs:
            b.release()
        assert pool.stats.peak_bytes == peak >= 12_000

    def test_drain(self):
        pool = PinnedBufferPool(10_000)
        pool.acquire(100, np.float32).release()
        pool.drain()
        assert pool.cached_bytes == 0

    @given(sizes=st.lists(st.integers(1, 500), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_budget_never_exceeded_property(self, sizes):
        """Invariant: live + cached <= budget at all times."""
        pool = PinnedBufferPool(8192, alignment=64)
        live = []
        for s in sizes:
            try:
                live.append(pool.acquire(s, np.float32))
            except PinnedBudgetExceeded:
                if live:
                    live.pop().release()
            assert pool.live_bytes + pool.cached_bytes <= pool.budget_bytes
        for b in live:
            b.release()


class TestTensorStore:
    def test_roundtrip_bitwise(self, store, rng):
        a = rng.random((37, 13)).astype(np.float16)
        store.write("x", a)
        out = store.read("x")
        assert out.dtype == np.float16
        np.testing.assert_array_equal(a, out)

    def test_read_into_buffer(self, store):
        a = np.arange(100, dtype=np.float32)
        store.write("x", a)
        buf = np.empty(100, dtype=np.float32)
        out = store.read("x", buf)
        assert out.base is buf or out is buf
        np.testing.assert_array_equal(out, a)

    def test_read_wrong_size_raises(self, store):
        store.write("x", np.zeros(10, dtype=np.float32))
        with pytest.raises(ValueError):
            store.read("x", np.empty(11, dtype=np.float32))

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyError):
            store.read("nope")

    def test_overwrite_changes_size(self, store):
        store.write("x", np.zeros(100, dtype=np.float32))
        store.write("x", np.ones(10, dtype=np.float32))
        out = store.read("x")
        assert out.shape == (10,)
        assert np.all(out == 1.0)

    def test_contains_and_keys(self, store):
        store.write("a", np.zeros(1))
        store.write("b", np.zeros(1))
        assert "a" in store and "c" not in store
        assert sorted(store.keys()) == ["a", "b"]

    def test_total_bytes(self, store):
        store.write("a", np.zeros(10, dtype=np.float32))
        store.write("b", np.zeros(5, dtype=np.float16))
        assert store.total_bytes == 50

    def test_delete(self, store):
        store.write("a", np.zeros(1))
        store.delete("a")
        assert "a" not in store
        store.delete("a")  # idempotent

    def test_async_write_then_read(self, store):
        a = np.arange(1000, dtype=np.float32)
        req = store.write_async("x", a)
        req.wait()
        np.testing.assert_array_equal(store.read("x"), a)

    def test_meta(self, store):
        store.write("x", np.zeros((4, 5), dtype=np.float16))
        shape, dtype, nbytes = store.meta("x")
        assert shape == (4, 5) and dtype == np.float16 and nbytes == 40

    def test_slash_keys_map_to_flat_files(self, store):
        store.write("blocks.0/attn/weight", np.ones(3))
        assert "blocks.0/attn/weight" in store
        np.testing.assert_array_equal(store.read("blocks.0/attn/weight"), [1, 1, 1])

    def test_temp_dir_cleanup(self):
        ts = TensorStore()
        d = ts.directory
        ts.write("x", np.zeros(10))
        ts.close()
        assert not os.path.exists(d)

    def test_ranged_read_write(self, store):
        a = np.arange(100, dtype=np.float32)
        store.write("x", a)
        out, req = store.read_range("x", 10, 5)
        req.wait()
        np.testing.assert_array_equal(out, a[10:15])
        store.write_range("x", 10, np.full(5, -1, dtype=np.float32)).wait()
        full = store.read("x")
        assert np.all(full[10:15] == -1)
        assert full[9] == 9 and full[15] == 15

    def test_ranged_out_of_bounds(self, store):
        store.write("x", np.zeros(10, dtype=np.float32))
        with pytest.raises(ValueError):
            store.read_range("x", 8, 5)
        with pytest.raises(ValueError):
            store.write_range("x", 8, np.zeros(5, dtype=np.float32))


class TestChunkedSwapper:
    def test_streams_through_transform(self, store):
        a = np.arange(1001, dtype=np.float32)  # odd size: last chunk short
        store.write("x", a)
        sw = ChunkedSwapper(store, chunk_numel=128)
        sw.apply("x", lambda c: c * 3)
        np.testing.assert_array_equal(store.read("x"), a * 3)

    def test_single_chunk(self, store):
        a = np.arange(10, dtype=np.float32)
        store.write("x", a)
        ChunkedSwapper(store, chunk_numel=1000).apply("x", lambda c: c + 1)
        np.testing.assert_array_equal(store.read("x"), a + 1)

    def test_pinned_pool_bounded(self, store):
        """Staging memory stays within two chunks of pinned budget."""
        a = np.zeros(10_000, dtype=np.float32)
        store.write("x", a)
        pool = PinnedBufferPool(3 * 512 * 4 + 8192, alignment=64)
        sw = ChunkedSwapper(store, chunk_numel=512, pool=pool)
        sw.apply("x", lambda c: c + 1)
        assert pool.stats.peak_bytes <= pool.budget_bytes
        assert np.all(store.read("x") == 1.0)

    def test_size_changing_transform_raises(self, store):
        store.write("x", np.zeros(100, dtype=np.float32))
        sw = ChunkedSwapper(store, chunk_numel=10)
        with pytest.raises(ValueError):
            sw.apply("x", lambda c: c[:-1])

    def test_invalid_chunk_raises(self, store):
        with pytest.raises(ValueError):
            ChunkedSwapper(store, chunk_numel=0)

    @given(
        n=st.integers(1, 4000),
        chunk=st.integers(1, 512),
    )
    @settings(max_examples=25, deadline=None)
    def test_chunking_preserves_values_property(self, n, chunk, tmp_path_factory):
        with TensorStore(str(tmp_path_factory.mktemp("sw"))) as ts:
            a = np.arange(n, dtype=np.float32)
            ts.write("x", a)
            ChunkedSwapper(ts, chunk_numel=chunk).apply("x", lambda c: 2 * c - 1)
            np.testing.assert_array_equal(ts.read("x"), 2 * a - 1)
