"""The static deliberate-bug corpus: every snippet fires exactly its check.

Mirror of ``tests/test_check_corpus.py`` for the static verifier
(``tests/check_corpus/static/``).  Two snippet families:

* **builder snippets** define ``build() -> ScheduleIR``;
  :func:`verify_schedule` over the IR must report the declared
  ``EXPECT`` kind (recall) and *only* that kind (precision);
* **lint snippets** define ``LINT_AS``; their own source is linted as if
  it lived at that module path and must fire exactly the declared rule.

Together the corpus covers every static finding kind and every new
interprocedural lint rule — if a refactor weakens a pass, the matching
snippet goes green-silent and this suite fails.
"""

import importlib.util
import pathlib

import pytest

from repro.check.lint import lint_source
from repro.check.static import STATIC_FINDING_KINDS, verify_schedule

CORPUS_DIR = pathlib.Path(__file__).parent / "check_corpus" / "static"
SNIPPETS = sorted(
    p for p in CORPUS_DIR.glob("*.py") if p.name != "__init__.py"
)

#: New interprocedural rules the lint half of the corpus must cover.
STATIC_LINT_RULES = (
    "rank-divergent-collective",
    "readonly-view-escape",
    "shm-use-after-unlink",
)


def load(path):
    spec = importlib.util.spec_from_file_location(
        f"static_corpus_{path.stem}", path
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def builder_snippets():
    return [p for p in SNIPPETS if hasattr(load(p), "build")]


def lint_snippets():
    return [p for p in SNIPPETS if hasattr(load(p), "LINT_AS")]


def test_corpus_is_nonempty():
    assert builder_snippets(), "builder half of the static corpus is empty"
    assert lint_snippets(), "lint half of the static corpus is empty"


@pytest.mark.parametrize("path", SNIPPETS, ids=lambda p: p.stem)
def test_snippet_declares_exactly_one_family(path):
    mod = load(path)
    assert hasattr(mod, "build") != hasattr(mod, "LINT_AS"), path.name
    assert hasattr(mod, "EXPECT"), path.name


@pytest.mark.parametrize(
    "path", builder_snippets(), ids=lambda p: p.stem
)
def test_builder_snippet_fires_exactly_expected_kind(path):
    mod = load(path)
    findings = verify_schedule(mod.build())
    kinds = {f.kind for f in findings}
    # recall: the declared defect is found; precision: nothing else is
    assert kinds == {mod.EXPECT}, (path.name, [f.format() for f in findings])


@pytest.mark.parametrize("path", lint_snippets(), ids=lambda p: p.stem)
def test_lint_snippet_fires_exactly_expected_rule(path):
    mod = load(path)
    findings = lint_source(path.read_text(), mod.LINT_AS)
    rules = {f.rule for f in findings}
    assert rules == {mod.EXPECT}, (path.name, [f.rule for f in findings])


def test_corpus_covers_every_static_finding_kind():
    covered = {load(p).EXPECT for p in builder_snippets()}
    assert covered == set(STATIC_FINDING_KINDS)


def test_corpus_covers_every_new_lint_rule():
    covered = {load(p).EXPECT for p in lint_snippets()}
    assert covered == set(STATIC_LINT_RULES)
