"""Tier-1 guard for the perfscope overhead contract.

A lighter twin of ``benchmarks/bench_perfscope_overhead.py``: stall-span
call sites ship always-on in the wait choke points (demand fetch, pinned
eviction, bucket flush, optimizer I/O drain, retries), so the no-op fast
path must stay under 2% of a step and live tracing under 10%.  Timing
tests on shared CI boxes flake under load, so a measurement over budget
is retried up to twice — a real regression fails all three attempts.
"""

from repro.obs.overhead import measure_perfscope_overhead

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10
ATTEMPTS = 3


def test_perfscope_overhead_within_budget():
    report = None
    for _ in range(ATTEMPTS):
        report = measure_perfscope_overhead()
        if (
            report.disabled_overhead < DISABLED_BUDGET
            and report.enabled_overhead < ENABLED_BUDGET
        ):
            break
    assert report.spans_per_step > 50, report.render()
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
    # sanity on the model's ingredients
    assert 0 < report.noop_call_s < report.stall_call_s
    assert report.step_disabled_s > 0
    # the traced step's ledger must account exactly
    assert report.residual_us < 1.0, report.render()
