"""Failure injection: the stack fails loudly and cleanly, never silently.

Storage-layer faults (truncated spool files, deleted shards, worker-thread
exceptions, exhausted pinned budgets) must surface as exceptions at the
call that observes them — not hang, not corrupt numerics, not poison
engine shutdown.
"""

import os

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nvme import AsyncIOEngine, ChunkedSwapper, PinnedBufferPool, TensorStore
from repro.nvme.buffers import PinnedBudgetExceeded
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=1, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8))) for r in rngs
    ]


class TestStorageFaults:
    def test_truncated_spool_file_raises_ioerror(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            store.write("x", np.arange(1000, dtype=np.float32))
            path = store._records["x"].path
            with open(path, "r+b") as f:
                f.truncate(100)  # corrupt: shorter than the record
            with pytest.raises(IOError):
                store.read("x")

    def test_deleted_shard_file_raises(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            store.write("x", np.zeros(10, dtype=np.float32))
            os.remove(store._records["x"].path)
            with pytest.raises(OSError):
                store.read("x")

    def test_engine_surfaces_missing_shard(self, tmp_path):
        """Deleting a parameter shard mid-training raises at the gather."""
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME, nvme_dir=str(tmp_path)
            ),
            loss_scale=1.0,
            prefetch_depth=0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            eng.train_step(batches())
            victim = eng.model.parameters()[0]
            key = f"p{victim.unique_id}.r0.param16"
            os.remove(eng.offload.store._records[key].path)
            with pytest.raises(OSError):
                eng.train_step(batches(seed=1))

    def test_failed_prefetch_surfaces_at_fetch(self, tmp_path):
        """An async read that fails mid-flight raises when awaited."""
        cfg = OffloadConfig(param_device=OffloadDevice.NVME, nvme_dir=str(tmp_path))
        from repro.core.offload import InfinityOffloadEngine

        eng = InfinityOffloadEngine(cfg)
        eng.stash("k", np.zeros(100_000, dtype=np.float32), OffloadDevice.NVME, rank=0)
        path = eng.store._records["k"].path
        os.remove(path)
        assert eng.prefetch("k", rank=0)  # submission succeeds
        with pytest.raises(OSError):
            eng.fetch("k", rank=0)  # the wait observes the failure
        # engine shutdown must not re-raise the already-observed error
        eng.close()

    def test_swapper_propagates_transform_exception(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            store.write("x", np.zeros(100, dtype=np.float32))

            def boom(chunk):
                raise RuntimeError("user transform failed")

            with pytest.raises(RuntimeError, match="user transform"):
                ChunkedSwapper(store, chunk_numel=10).apply("x", boom)


class TestResourceExhaustion:
    def test_pinned_exhaustion_falls_back_unpinned(self, tmp_path):
        """Prefetch under a starved pinned pool degrades, not fails."""
        from repro.core.offload import InfinityOffloadEngine

        cfg = OffloadConfig(
            param_device=OffloadDevice.NVME,
            nvme_dir=str(tmp_path),
            pinned_budget_bytes=4096,  # far below the tensor size
        )
        eng = InfinityOffloadEngine(cfg)
        data = np.arange(100_000, dtype=np.float32)
        eng.stash("k", data, OffloadDevice.NVME, rank=0)
        assert eng.prefetch("k", rank=0)  # fell back to unpinned staging
        out = eng.fetch("k", rank=0)
        np.testing.assert_array_equal(out, data)
        eng.close()

    def test_direct_pool_exhaustion_still_raises(self):
        pool = PinnedBufferPool(4096, alignment=64)
        with pytest.raises(PinnedBudgetExceeded):
            pool.acquire(10_000, np.float32)

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_engine_usable_after_skipped_step(self):
        """A skipped (overflow) step must leave the engine consistent."""
        cfg = ZeroConfig(
            world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=None
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
            before = eng.gather_state()
            # force an overflow: the seed gradient itself exceeds fp32 max
            eng.scaler.scale = 1e45
            r = eng.train_step(batches())
            assert r.skipped
            after = eng.gather_state()
            for name in before:  # no partial update leaked
                np.testing.assert_array_equal(before[name], after[name])
            # and the next (sane) step trains
            eng.scaler.scale = 1024.0
            r2 = eng.train_step(batches(seed=2))
            assert not r2.skipped


class TestShutdownHygiene:
    def test_double_close_is_safe(self):
        cfg = ZeroConfig(world_size=WORLD, stage=ZeroStage.PARAMETERS)
        eng = ZeroInfinityEngine(cfg, model_factory=factory)
        eng.close()
        eng.close()  # idempotent

    def test_closed_aio_engine_rejects_new_work(self, tmp_path):
        eng = AsyncIOEngine()
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit_read(str(tmp_path / "x"), np.zeros(4))

    def test_spool_directory_removed_on_close(self):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
        )
        eng = ZeroInfinityEngine(cfg, model_factory=factory)
        spool = eng.offload.store.directory
        assert os.path.isdir(spool)
        eng.close()
        assert not os.path.exists(spool)
