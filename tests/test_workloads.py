"""Synthetic datasets, LR schedules, and the Trainer loop."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OffloadConfig, OffloadDevice, ZeroConfig, ZeroInfinityEngine
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng
from repro.workloads import (
    ConstantSchedule,
    CopyTaskDataset,
    MarkovCorpus,
    Trainer,
    TrainerConfig,
    WarmupCosineSchedule,
    WarmupLinearSchedule,
    per_rank_batches,
)


class TestMarkovCorpus:
    def test_shapes_and_shift(self, rng):
        corpus = MarkovCorpus(50, seed=1)
        ids, targets = corpus.sample(rng, bsz=3, seq=12)
        assert ids.shape == targets.shape == (3, 12)
        np.testing.assert_array_equal(ids[:, 1:], targets[:, :-1])

    def test_transitions_follow_table(self, rng):
        corpus = MarkovCorpus(20, seed=2, branching=3)
        ids, targets = corpus.sample(rng, bsz=4, seq=50)
        for b in range(4):
            for t in range(50):
                assert targets[b, t] in corpus._successors[ids[b, t]]

    def test_entropy_floor_below_uniform(self):
        corpus = MarkovCorpus(64, seed=3, branching=4)
        assert 0.0 < corpus.entropy_floor() < np.log(64)

    def test_deterministic_given_rng(self):
        corpus = MarkovCorpus(30, seed=4)
        a = corpus.sample(seeded_rng(9), bsz=2, seq=8)
        b = corpus.sample(seeded_rng(9), bsz=2, seq=8)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MarkovCorpus(1)
        with pytest.raises(ValueError):
            MarkovCorpus(10).sample(seeded_rng(0), bsz=0, seq=5)


class TestCopyTask:
    def test_second_half_repeats_first(self, rng):
        ds = CopyTaskDataset(16)
        ids, targets = ds.sample(rng, bsz=2, seq=8)
        # tokens[:, :5] is the prefix; positions 5.. repeat prefix[1:]
        full = np.concatenate([ids, targets[:, -1:]], axis=1)
        np.testing.assert_array_equal(full[:, 5:9], full[:, 1:5])

    def test_odd_seq_raises(self, rng):
        with pytest.raises(ValueError):
            CopyTaskDataset(16).sample(rng, bsz=1, seq=7)


class TestPerRankBatches:
    def test_ranks_get_distinct_data(self):
        it = per_rank_batches(
            MarkovCorpus(32, seed=0), world_size=3, bsz_per_rank=2, seq=8, seed=1
        )
        batch = next(it)
        assert len(batch) == 3
        assert not np.array_equal(batch[0][0], batch[1][0])

    def test_reproducible(self):
        def first():
            it = per_rank_batches(
                MarkovCorpus(32, seed=0), world_size=2, bsz_per_rank=1, seq=4, seed=5
            )
            return next(it)

        a, b = first(), first()
        np.testing.assert_array_equal(a[0][0], b[0][0])


class TestSchedules:
    def test_constant_with_warmup(self):
        s = ConstantSchedule(lr=1.0, warmup_steps=4)
        assert s(0) == 0.25
        assert s(3) == 1.0
        assert s(100) == 1.0

    def test_linear_decay_endpoints(self):
        s = WarmupLinearSchedule(lr=1.0, warmup_steps=2, total_steps=10, min_lr=0.1)
        assert s(0) == 0.5
        assert s(2) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.1)
        assert s(99) == pytest.approx(0.1)

    def test_cosine_midpoint(self):
        s = WarmupCosineSchedule(lr=1.0, warmup_steps=0, total_steps=100, min_lr=0.0)
        assert s(50) == pytest.approx(0.5, abs=0.02)
        assert s(0) == pytest.approx(1.0, abs=0.05)
        assert s(100) == pytest.approx(0.0, abs=1e-9)

    def test_apply_mutates_optimizer(self):
        class Opt:
            lr = 0.0

        o = Opt()
        ConstantSchedule(lr=0.5).apply(o, 3)
        assert o.lr == 0.5

    def test_invalid_schedules_raise(self):
        with pytest.raises(ValueError):
            ConstantSchedule(lr=0)
        with pytest.raises(ValueError):
            WarmupLinearSchedule(lr=1, warmup_steps=10, total_steps=10)
        with pytest.raises(ValueError):
            WarmupCosineSchedule(lr=1, warmup_steps=-1, total_steps=10)

    @given(step=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_cosine_bounded_property(self, step):
        s = WarmupCosineSchedule(lr=2.0, warmup_steps=10, total_steps=200, min_lr=0.1)
        assert 0.1 <= s(step) <= 2.0 + 1e-9


def tiny_engine(world=2, **off):
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
    )
    zcfg = ZeroConfig(
        world_size=world, offload=OffloadConfig(**off), loss_scale=1.0
    )
    return ZeroInfinityEngine(
        zcfg, model_factory=lambda: GPTModel(cfg, rng=seeded_rng(1)), lr=5e-3
    )


class TestTrainer:
    def test_copy_task_learns(self):
        """Induction takes a while for a 2-layer hd-16 model; 60 steps at a
        hot LR reliably drops the loss well below the log(V) floor of the
        unpredictable first half."""
        with tiny_engine() as engine:
            data = per_rank_batches(
                CopyTaskDataset(32), world_size=2, bsz_per_rank=8, seq=8, seed=0
            )
            trainer = Trainer(
                engine,
                data,
                TrainerConfig(total_steps=60, log_every=0),
                schedule=ConstantSchedule(lr=2e-2),
            )
            hist = trainer.fit()
            assert len(hist.losses) == 60
            assert hist.final_loss < hist.losses[0] * 0.75

    def test_schedule_recorded(self):
        with tiny_engine() as engine:
            data = per_rank_batches(
                MarkovCorpus(32), world_size=2, bsz_per_rank=2, seq=8, seed=0
            )
            trainer = Trainer(
                engine,
                data,
                TrainerConfig(total_steps=6, log_every=0),
                schedule=WarmupLinearSchedule(
                    lr=1e-2, warmup_steps=3, total_steps=6
                ),
            )
            hist = trainer.fit()
            assert hist.lrs[0] < hist.lrs[2]  # warming up
            assert hist.lrs[-1] < hist.lrs[3]  # decaying

    def test_eval_hook(self):
        with tiny_engine() as engine:
            rng = seeded_rng(2)
            ev_ids = rng.integers(0, 32, (2, 8))
            ev_tgt = rng.integers(0, 32, (2, 8))
            data = per_rank_batches(
                MarkovCorpus(32), world_size=2, bsz_per_rank=2, seq=8, seed=0
            )
            trainer = Trainer(
                engine,
                data,
                TrainerConfig(total_steps=4, log_every=0, eval_every=2),
                eval_fn=lambda e: e.evaluate(ev_ids, ev_tgt),
            )
            hist = trainer.fit()
            assert set(hist.eval_losses) == {2, 4}

    def test_checkpoint_and_resume(self, tmp_path):
        data_args = dict(world_size=2, bsz_per_rank=2, seq=8, seed=0)
        cfg = TrainerConfig(
            total_steps=4,
            log_every=0,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        with tiny_engine() as engine:
            Trainer(
                engine, per_rank_batches(MarkovCorpus(32), **data_args), cfg
            ).fit()
            final_direct = engine.gather_state()
        # resume from step 2 and replay the same data stream
        with tiny_engine() as engine:
            data = per_rank_batches(MarkovCorpus(32), **data_args)
            trainer = Trainer(engine, data, cfg)
            trainer.resume(str(tmp_path / "step2"))
            next(data), next(data)  # skip the two consumed steps
            trainer.fit()
            resumed = engine.gather_state()
        for name in final_direct:
            np.testing.assert_allclose(
                resumed[name], final_direct[name], rtol=1e-4, atol=1e-6
            )

    def test_grad_accumulation_path(self):
        with tiny_engine() as engine:
            data = per_rank_batches(
                MarkovCorpus(32), world_size=2, bsz_per_rank=1, seq=8, seed=0
            )
            cfg = TrainerConfig(total_steps=3, grad_accumulation=2, log_every=0)
            hist = Trainer(engine, data, cfg).fit()
            assert len(hist.losses) == 3
            assert engine.steps_taken == 3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainerConfig(total_steps=0)
        with pytest.raises(ValueError):
            TrainerConfig(total_steps=5, checkpoint_every=1)
