"""Bug: a gathered parameter is never released before the step ends.

A skipped post-forward hook (removed, shadowed, or raising early) leaves
the full tensor resident — the leak that erodes ZeRO-3's memory budget one
module at a time.  The step-boundary sweep reports it.
"""

from repro.check import get_checker
from repro.core.config import OffloadConfig
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn import Linear
from repro.utils.rng import seeded_rng

EXPECT = "gather-leak"
PASSES = "zerosan"


def trigger():
    lin = Linear(8, 8, rng=seeded_rng(0))
    weight = lin._parameters["weight"]
    part = ParameterPartitioner(2, offload=InfinityOffloadEngine(OffloadConfig()))
    part.partition(weight)
    part.gather(weight)
    # ... forward runs, but the release hook never fires ...
    get_checker().on_step_boundary([weight.unique_id])
