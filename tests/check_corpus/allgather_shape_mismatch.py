"""Bug: ranks disagree on the payload of one collective.

A partition-bounds off-by-one gives rank 1 a shard of 3 elements where
rank 0 brings 4; a real allgather would return garbage (or hang on size
validation).  The ordering checker reports the mismatch at the call.
"""

import numpy as np

from repro.comm.group import ProcessGroup

EXPECT = "collective-shape-mismatch"
PASSES = "collectives"


def trigger():
    pg = ProcessGroup(2)
    pg.allgather(
        [np.ones(4, dtype=np.float16), np.ones(3, dtype=np.float16)]
    )
