"""Bug: a device error on the spool read path vanishes in an empty handler.

The pread fails, the handler swallows it, and the caller consumes a buffer
of stale (or zero) bytes as if the read succeeded — silent training
corruption, the exact failure mode the resilience tiers exist to prevent
(docs/resilience.md).  The ``swallowed-oserror`` lint rule flags any empty
``except OSError`` handler in the I/O modules; the fix is to retry
(:func:`repro.faults.retry.run_with_retries`), count and degrade, or let
the error propagate to a recovery tier.

Static corpus: this file is never imported by the runtime checker harness;
``tests/test_lint.py`` lints its source as if it lived at ``LINT_AS``.
"""

import os

LINT_AS = "repro/nvme/broken_reader.py"
EXPECT = "swallowed-oserror"


def read_block(fd: int, nbytes: int, offset: int) -> bytes:
    data = b""
    try:
        data = os.pread(fd, nbytes, offset)
    except OSError:
        pass  # <- the bug: caller now treats stale bytes as a good read
    return data
