"""Bug: a comm-package helper reaches past the backend seam.

A hypothetical ``repro/comm/fastpath.py`` imports the functional
collectives directly instead of calling them through a
:class:`~repro.comm.backend.CommBackend`.  Under the loop backend this
works by accident; under the multiprocessing backend the call silently
operates on one process's replicated buffers without the rendezvous,
fingerprint, or accounting the backend provides — the two execution
models drift apart and the divergence checker never sees it.  The
``raw-collective-import`` lint rule pins the seam: inside ``repro/comm/``
only ``collectives.py`` itself and ``backend.py`` may import the
functional module (a deliberate package re-export carries
``# lint: allow-raw-collective-import``).

Static corpus: this file is never imported by the runtime checker harness;
``tests/test_lint.py`` lints its source as if it lived at ``LINT_AS``.
"""

LINT_AS = "repro/comm/fastpath.py"
EXPECT = "raw-collective-import"

try:  # <- the bug: bypasses the CommBackend seam
    from repro.comm.collectives import allgather
except ImportError:  # corpus snippet is linted, not run against src/
    allgather = None


def gather_all(shards):
    # loop-backend-only semantics smuggled into the package: under the
    # mp backend this never rendezvouses with peer processes
    return allgather(shards)
