"""Bug: a subsystem publishes its own payload straight into the
telemetry ring.

``TelemetryRing.put_sample`` is a single-writer-per-slot seqlock: the
owning rank's :class:`~repro.obs.live.LivePlane` is the one writer of
its slot.  A second writer — here, a prefetcher pushing an ad-hoc status
blob — can interleave with the plane's odd/even sequence protocol
(readers then see a torn payload as "published") and its payload isn't a
:class:`TelemetrySample`, so the aggregator's decode fails and the rank
reads as silent.  The ``telemetry-ring-write`` lint rule bans
``put_sample`` calls outside ``repro.obs.live``; the fix is to surface
the state through the plane (a counter the sample already carries, or
``LivePlane.emit``).

Static corpus: this file is never imported by the runtime checker harness;
``tests/test_lint.py`` lints its source as if it lived at ``LINT_AS``.
"""

import json

LINT_AS = "repro/core/prefetch.py"
EXPECT = "telemetry-ring-write"


def report_prefetch_depth(ring, rank: int, depth: int) -> None:
    payload = json.dumps({"prefetch_depth": depth}).encode()
    ring.put_sample(rank, payload)  # <- the bug: second writer on the slot
