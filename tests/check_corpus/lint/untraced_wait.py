"""Bug: the prefetcher blocks in a bare ``time.sleep`` off the ledger.

The wait really happens — the training thread sits idle until the pinned
staging buffer frees up — but no stall span is open, so the perfscope
step ledger charges the time to whatever span wraps the call site
(usually ``engine:forward``) and the stall report under-counts
``pinned_wait`` to zero.  The ``untraced-wait`` lint rule flags bare
sleeps and spin loops in perfscope-instrumented modules; the fix is to
wait inside ``perfscope.stall_span("pinned_wait", owner=...)`` (compare
:meth:`repro.nvme.buffers.PinnedPool.acquire`).

Static corpus: this file is never imported by the runtime checker harness;
``tests/test_lint.py`` lints its source as if it lived at ``LINT_AS``.
"""

import time

LINT_AS = "repro/core/prefetch.py"
EXPECT = "untraced-wait"


def wait_for_pinned_buffer(pool) -> None:
    while pool.available_bytes() == 0:
        time.sleep(0.001)  # <- the bug: idle time invisible to the ledger


def drain(pool) -> None:
    # spin variant: also invisible to stall attribution
    while not pool.idle():
        pass
