"""Bug: two async reads land in overlapping buffer memory with no wait.

A staging-buffer reuse bug — the prefetcher re-issues a read into a pinned
buffer whose previous fill is still in flight; whichever I/O completes
last wins, nondeterministically.  The detector is driven directly (with
never-completing requests) so the race window is deterministic.
"""

import numpy as np

from repro.check import get_checker

EXPECT = "aio-double-submit"
PASSES = "races"


def trigger():
    races = get_checker().races
    staging = np.zeros(1024, dtype=np.float32)
    races.on_submit_read(1, staging[:512], done=lambda: False)
    races.on_submit_read(2, staging[256:768], done=lambda: False)
