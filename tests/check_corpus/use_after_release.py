"""Bug: compute touches a parameter after the partitioner released it.

The classic ZeRO-3 lifecycle bug — a module keeps a reference to
``param.data`` across a release (or a hook ordering change defers the
re-gather) and the next matmul silently runs on an empty placeholder.
ZeroSan's tripwire placeholder reports at the offending ufunc.
"""

from repro.core.config import OffloadConfig
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn import Linear
from repro.utils.rng import seeded_rng

EXPECT = "use-after-release"
PASSES = "zerosan"


def trigger():
    lin = Linear(8, 8, rng=seeded_rng(0))
    weight = lin._parameters["weight"]
    part = ParameterPartitioner(2, offload=InfinityOffloadEngine(OffloadConfig()))
    part.partition(weight)
    part.gather(weight)
    part.release(weight)
    # the buggy module computes without re-gathering first
    return weight.data * 2.0
