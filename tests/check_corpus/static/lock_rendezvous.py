"""Bug: a rank blocks at a cross-rank rendezvous while holding a lock.

Rank 0 enters the pinned-pool critical section and then waits on an shm
chunk rendezvous before releasing.  If any peer needs the same pool to
make progress toward that rendezvous (the pool is the shared staging
resource for every offload in flight), the system wedges: rank 0 holds
the lock waiting for peers, peers wait on the lock — a lock-ordering
deadlock the runtime can only hit probabilistically.  The static lock
pass flags *any* blocking rendezvous inside a held pinned-pool or
bucket span, deterministically.

Static corpus: ``build()`` returns the ScheduleIR; the harness runs
``verify_schedule`` over it and asserts exactly ``EXPECT`` fires.
"""

from repro.check.static import ScheduleBuilder

EXPECT = "static-lock-rendezvous"


def build():
    b = ScheduleBuilder(2, label="corpus:lock_rendezvous")
    b.lock_acquire(0, "pinned-pool")
    # <- the bug: rank 0 rendezvouses while holding the pool lock
    b.chunk(None, seq=0, nbytes=4096)
    b.lock_release(0, "pinned-pool")
    return b.build()
