"""Bug: a collective issued only when the process identity matches.

A hypothetical ``repro/core/divergent.py`` gathers a debug summary, but
only on rank 0 — guarded by ``backend.rank``, the one predicate that
genuinely differs across processes.  Rank 0 blocks in the allgather;
every other rank sails past and blocks at the *next* collective, whose
fingerprint no longer lines up: a deadlock or ``CommDivergence``
depending on which rendezvous trips first.  The interprocedural
``rank-divergent-collective`` rule flags any collective reachable only
under a process-identity predicate (turn indices and ``owner_rank``
metadata are rank-uniform and exempt).

Static corpus: this file is never imported by the runtime checker
harness; the static harness lints its source as if it lived at
``LINT_AS``.
"""

LINT_AS = "repro/core/divergent.py"
EXPECT = "rank-divergent-collective"


def gather_debug_summary(comm, summary):
    if comm.backend.rank == 0:
        # <- the bug: peers never enter this allgather
        return comm.allgather([summary])
    return None
