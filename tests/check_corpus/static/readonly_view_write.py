"""Bug: writing through a read-only shard view of shared reduce output.

``readonly_slice`` hands out zero-copy views of the reusable bucket
output buffer; the contract (docs on GradientBucketStore) is copy-to-
retain, never write.  This snippet stores through the view's subscript —
under numpy's writeable flag this raises at runtime, but only on the
path that executes; the ``readonly-view-escape`` dataflow rule flags the
store wherever it hides, by tainting names bound to view-source calls
and reporting any mutation sink they reach.

Static corpus: this file is never imported by the runtime checker
harness; the static harness lints its source as if it lived at
``LINT_AS``.
"""

LINT_AS = "repro/core/viewwrite.py"
EXPECT = "readonly-view-escape"


def apply_shard_update(reduced, offset, shard_numel):
    from repro.comm import readonly_slice

    shard = readonly_slice(reduced, offset, shard_numel)
    # <- the bug: stores into the shared read-only reduce output
    shard[:shard_numel] = 0.0
    return shard
