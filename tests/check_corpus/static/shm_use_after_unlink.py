"""Bug: publishing into a shared-memory ring after unlinking it.

A hypothetical ``repro/comm/ring_consumer.py`` tears the ring down on an
error path, then falls through to the publish that assumes the segment
is still mapped.  Depending on the platform this is a crash
(``BufferError`` on a closed mmap) or worse — a write into a segment a
restarted peer has re-created, silently corrupting its handshake.  The
``shm-use-after-unlink`` lifecycle rule tracks close/unlink/destroy
along each control-flow path and flags any ring use reachable after the
segment died on *every* path into it.

Static corpus: this file is never imported by the runtime checker
harness; the static harness lints its source as if it lived at
``LINT_AS``.
"""

LINT_AS = "repro/comm/ring_consumer.py"
EXPECT = "shm-use-after-unlink"


def drain_and_close(ring, payload):
    ring.publish(payload)
    ring.close()
    ring.unlink()
    # <- the bug: the segment is gone; this write targets freed shm
    ring.publish(payload)
