"""Bug: one facade call sees per-rank shards of different sizes.

Every rank reaches the same ``allgather`` call, but the shards they
contribute disagree in element count — a partitioning bug (padding
applied on one rank only, a stale shard table, an off-by-one split).
The runtime fingerprint checker reports this as a shape mismatch at the
next digest comparison; statically it is visible inside a single
schedule event, because the IR records the full per-rank
``(dtype, numel)`` tuple exactly as the call saw it.

Static corpus: ``build()`` returns the ScheduleIR; the harness runs
``verify_schedule`` over it and asserts exactly ``EXPECT`` fires.
"""

from repro.check.static import ScheduleBuilder

EXPECT = "static-collective-shape-mismatch"


def build():
    b = ScheduleBuilder(2, label="corpus:ragged_allgather")
    # <- the bug: rank 1's shard is 12 elements where rank 0's is 8
    b.call("allgather", [("float32", 8), ("float32", 12)])
    b.barrier()
    return b.build()
