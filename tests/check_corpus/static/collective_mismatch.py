"""Bug: two ranks issue different collectives at the same schedule index.

The classic conditional-collective bug: rank 1 takes an extra code path
and calls ``reduce_scatter`` where every other rank calls ``allgather``.
At runtime the mp transport hashes both streams and the CRC digests
disagree at the next chunk rendezvous — a ``CommDivergence`` abort after
the step has already burned compute.  The static verifier proves the
mismatch from the extracted schedules alone, reporting the exact index
and both ops before any rank launches.

Static corpus: ``build()`` returns the ScheduleIR; the harness runs
``verify_schedule`` over it and asserts exactly ``EXPECT`` fires.
"""

from repro.check.static import ScheduleBuilder

EXPECT = "static-collective-divergence"


def build():
    b = ScheduleBuilder(2, label="corpus:collective_mismatch")
    b.collective(None, "allgather", "float32", 64)
    # <- the bug: rank 1 diverges at collective #1
    b.collective(0, "allgather", "float32", 64)
    b.collective(1, "reduce_scatter", "float32", 64)
    b.barrier()
    return b.build()
