"""Bug: a barrier reachable by only some ranks — a guaranteed deadlock.

Rank 0 synchronizes twice (say, an extra checkpoint flush barrier behind
an ``if rank == 0`` guard) while rank 1 synchronizes once and finishes
its step.  Rank 0 then blocks forever in its second barrier: no peer
will ever arrive.  At runtime this hangs the job until a watchdog kills
it; the static deadlock pass finds it by lockstep-simulating the
rendezvous streams and seeing rank 0 waiting while rank 1 has no
matching rendezvous left.

Static corpus: ``build()`` returns the ScheduleIR; the harness runs
``verify_schedule`` over it and asserts exactly ``EXPECT`` fires.
"""

from repro.check.static import ScheduleBuilder

EXPECT = "static-deadlock"


def build():
    b = ScheduleBuilder(2, label="corpus:conditional_barrier")
    b.barrier()
    # <- the bug: only rank 0 reaches the second barrier
    b.barrier(rank=0)
    return b.build()
