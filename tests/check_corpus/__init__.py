"""Deliberate-bug corpus for repro.check (see test_check_corpus.py).

Each module declares the bug it contains (``EXPECT``: the violation kind),
the checker passes that must be armed (``PASSES``), and a ``trigger()``
that commits the bug.  The harness proves every snippet is flagged with
exactly its expected kind — and with nothing else — under all passes.
"""
