"""Bug: writing into a buffer whose zero-copy views are still outstanding.

``allgather_into`` returns read-only views aliasing the caller's output
buffer; until the owner reclaims it (its next collective), mutating that
memory silently corrupts every holder of a view.  The write barrier
(``ZeroSan.check_write``) is what an instrumented writer calls before
reusing such a buffer — here the buggy writer skips the reclaim.
"""

import numpy as np

from repro.check import get_checker
from repro.comm.group import ProcessGroup

EXPECT = "shared-view-write"
PASSES = "zerosan"


def trigger():
    pg = ProcessGroup(2)
    out = np.empty(8, dtype=np.float32)
    shards = [np.arange(4, dtype=np.float32), np.arange(4, dtype=np.float32)]
    views = pg.allgather_into(shards, out)
    assert views  # consumers now alias ``out``
    # the buggy writer reuses ``out`` for scratch without reclaiming it
    get_checker().zerosan.check_write(out)
    out[:] = 0.0
