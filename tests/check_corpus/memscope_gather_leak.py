"""Bug: a gather leak, seen identically by ZeroSan and the memory scope.

Same defect as ``gather_leak.py`` — the release hook never fires — but
observed through both lenses at once: :mod:`repro.obs.memscope` shows the
leaked bytes sitting in the ``gather_buffer`` category attributed to the
exact parameter that ZeroSan's step-boundary sweep then names.  The two
observers agreeing is the point: attribution tells you *who* is leaking,
the sanitizer tells you *that* it is a bug.
"""

from repro.check import get_checker
from repro.core.config import OffloadConfig
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn import Linear
from repro.obs.memscope import use_memscope
from repro.utils.rng import seeded_rng

EXPECT = "gather-leak"
PASSES = "zerosan"


def trigger():
    with use_memscope() as scope:
        lin = Linear(8, 8, rng=seeded_rng(0))
        weight = lin._parameters["weight"]
        part = ParameterPartitioner(
            2, offload=InfinityOffloadEngine(OffloadConfig())
        )
        part.partition(weight)
        before = scope.breakdown("gpu").get("gather_buffer", 0)
        part.gather(weight)
        # ... forward runs, but the release hook never fires ...
        leaked = scope.breakdown("gpu").get("gather_buffer", 0) - before
        assert leaked == weight.data.nbytes, "scope must see the full gather"
        assert scope.owners("gpu", category="gather_buffer") == [
            (f"p{weight.unique_id}", "gather_buffer", leaked)
        ], "attribution must name the leaking parameter"
        get_checker().on_step_boundary([weight.unique_id])
