"""Bug: a file-range write races an overlapping read with no join between.

The read-modify-write pattern of gradient accumulation on NVMe: the
accumulator submits the read of a shard range while the previous round's
write to the same range is still in flight — torn bytes.  (Mainline avoids
this by draining in-flight writes before reading; see
``InfinityOffloadEngine.update_slice``.)
"""

import numpy as np

from repro.check import get_checker

EXPECT = "aio-race"
PASSES = "races"


def trigger():
    races = get_checker().races
    prev = np.ones(256, dtype=np.float32)
    nxt = np.empty(256, dtype=np.float32)
    races.on_submit_write(
        1, prev, path="/spool/grad.bin", file_lo=0, file_hi=1024,
        done=lambda: False,
    )
    races.on_submit_read(
        2, nxt, path="/spool/grad.bin", file_lo=512, file_hi=1536,
        done=lambda: False,
    )
