"""Bug: a parameter's PartitionState is corrupted outside the partitioner.

Code that flips ``param.state`` back to PARTITIONED by hand (e.g. a
checkpoint restore path bypassing ``release``) defeats the partitioner's
idempotence check: the next gather allgathers on top of a still-resident
tensor.  ZeroSan's shadow state machine catches the second gather.
"""

from repro.core.config import OffloadConfig
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn import Linear
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng

EXPECT = "double-gather"
PASSES = "zerosan"


def trigger():
    lin = Linear(8, 8, rng=seeded_rng(0))
    weight = lin._parameters["weight"]
    part = ParameterPartitioner(2, offload=InfinityOffloadEngine(OffloadConfig()))
    part.partition(weight)
    part.gather(weight)
    weight.state = PartitionState.PARTITIONED  # the corruption
    part.gather(weight)  # shadow state still "available"
