"""Bug: two ranks issue the same collectives in different orders.

Conditional control flow (here: rank-dependent bucket flush order) makes
rank 1 reduce-scatter before its allgather while rank 0 does the reverse
— the canonical NCCL deadlock.  The simulation cannot hang, so the
cross-check at the barrier reports the first divergence instead.
"""

from repro.check import get_checker

EXPECT = "collective-divergence"
PASSES = "collectives"


def trigger():
    chk = get_checker().collectives
    gid = chk.register_group(2)
    # rank 0's program order
    chk.record_rank(gid, 0, "allgather", "float16", 1024)
    chk.record_rank(gid, 0, "reduce_scatter", "float32", 4096)
    # rank 1 flushed its bucket first
    chk.record_rank(gid, 1, "reduce_scatter", "float32", 4096)
    chk.record_rank(gid, 1, "allgather", "float16", 1024)
    chk.cross_check(gid)  # the barrier where real ranks would deadlock
