"""The generated API reference stays in sync with the code."""

import os
import subprocess
import sys

TOOLS = os.path.join(os.path.dirname(__file__), os.pardir, "tools")


def test_api_docs_current():
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr


def test_every_package_has_exports():
    """Public packages must declare __all__ (the doc generator's source)."""
    import importlib

    for pkg in (
        "repro",
        "repro.core",
        "repro.nn",
        "repro.nvme",
        "repro.comm",
        "repro.sim",
        "repro.workloads",
        "repro.analytics",
        "repro.baselines",
        "repro.hardware",
        "repro.tensor",
        "repro.utils",
    ):
        mod = importlib.import_module(pkg)
        assert getattr(mod, "__all__", None), f"{pkg} lacks __all__"
        # and every exported name actually resolves
        for name in mod.__all__:
            assert hasattr(mod, name), f"{pkg}.{name} missing"
