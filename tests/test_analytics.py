"""The paper's analytic models reproduce its printed numbers.

Each test cites the Sec. 3 / Sec. 4 statement it checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    EfficiencyModel,
    FIG2A_ROWS,
    TABLE1_CONFIGS,
    activation_checkpoint_bytes,
    ait_activation_checkpoints,
    ait_optimizer_states,
    ait_param_grad,
    awm_bytes,
    compute_per_iter_flops,
    efficiency,
    layers_for_params,
    memory_requirements,
    model_states_bytes,
    mswm_bytes,
    required_bandwidth,
    transformer_params,
)
from repro.utils.units import GB, TB, TFLOP


class TestParameterCount:
    def test_eq1_formula(self):
        assert transformer_params(80, 10240) == 12 * 80 * 10240**2

    @pytest.mark.parametrize(
        "label,nl,hd,_heads",
        FIG2A_ROWS,
    )
    def test_fig2a_param_column(self, label, nl, hd, _heads):
        """Fig. 2a column 1: the configs produce the stated trillions."""
        target = float(label.rstrip("T")) * 1e12
        assert transformer_params(nl, hd) == pytest.approx(target, rel=0.01)

    def test_gpt3_consistency(self):
        """GPT-3: 96 layers x 12288 hidden ~ 175B params."""
        assert transformer_params(96, 12288) == pytest.approx(175e9, rel=0.01)

    def test_layers_inversion(self):
        for nl, hd in [(80, 10240), (128, 25600), (315, 163840)]:
            p = transformer_params(nl, hd)
            assert layers_for_params(p, hd) == nl

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            transformer_params(0, 100)
        with pytest.raises(ValueError):
            layers_for_params(-5, 100)


class TestModelStates:
    def test_20_bytes_per_param(self):
        assert model_states_bytes(10**9) == 20 * 10**9

    @pytest.mark.parametrize(
        "label,nl,hd,heads,expected_tb",
        [
            (l, nl, hd, heads, tb)
            for (l, nl, hd, heads), tb in zip(
                FIG2A_ROWS, [1.83, 9.16, 18.31, 182.81, 1845.70]
            )
        ],
    )
    def test_fig2a_model_state_column(self, label, nl, hd, heads, expected_tb):
        """Fig. 2a column 5.  The table's 'TB' are binary TiB: e.g. the
        0.10T row is 20 B x 0.1007e12 params = 2.01e12 B = 1.83 TiB."""
        got = model_states_bytes(transformer_params(nl, hd))
        assert got / 2**40 == pytest.approx(expected_tb, rel=0.01)

    def test_fitting_claims(self):
        """Sec. 3: 100B model states need 64 GPUs; 1T needs >512."""
        from repro.hardware import V100_32GB

        gpu = V100_32GB.memory.capacity_bytes
        assert model_states_bytes(int(100e9)) / gpu == pytest.approx(62.5, rel=0.01)
        assert model_states_bytes(int(1e12)) / gpu > 512


class TestActivationMemory:
    @pytest.mark.parametrize(
        "label,nl,hd,heads,expected_tb",
        [
            (l, nl, hd, heads, tb)
            for (l, nl, hd, heads), tb in zip(
                FIG2A_ROWS, [0.05, 0.12, 0.20, 0.76, 3.08]
            )
        ],
    )
    def test_fig2a_checkpoint_column(self, label, nl, hd, heads, expected_tb):
        """Fig. 2a column 7: activation checkpoints (bsz 32, seq 1024),
        in binary TiB like the other memory columns."""
        got = activation_checkpoint_bytes(
            bsz=32, seq=1024, hidden_dim=hd, num_layers=nl, ci=1
        )
        assert got / 2**40 == pytest.approx(expected_tb, rel=0.1)

    def test_ci_divides_checkpoints(self):
        base = activation_checkpoint_bytes(
            bsz=32, seq=1024, hidden_dim=8192, num_layers=64, ci=1
        )
        halved = activation_checkpoint_bytes(
            bsz=32, seq=1024, hidden_dim=8192, num_layers=64, ci=2
        )
        assert halved == base // 2

    def test_10t_fits_dgx2_cpu(self):
        """Sec. 5.1.2: 10T checkpoints (0.76 TB) fit in 1.5 TB CPU."""
        got = activation_checkpoint_bytes(
            bsz=32, seq=1024, hidden_dim=64 * 1024, num_layers=195, ci=1
        )
        assert got < 1.5 * TB


class TestWorkingMemory:
    def test_eq4_mswm(self):
        assert mswm_bytes(100) == 4 * 100 * 400

    @pytest.mark.parametrize(
        "hd,expected_gb",
        [(64 * 1024, 64.0), (160 * 1024, 400.0)],
    )
    def test_fig2a_mswm_column(self, hd, expected_gb):
        """Fig. 2a column 8 at 10T/100T scales (GB)."""
        assert mswm_bytes(hd) == pytest.approx(expected_gb * 1e9, rel=0.1)

    def test_eq5_awm(self):
        got = awm_bytes(bsz=4, seq=1024, hidden_dim=64 * 1024, attn_heads=512)
        # Fig. 2a column 9: 8.00 GB at the 10T row
        assert got == pytest.approx(8.0 * 1e9, rel=0.1)

    def test_awm_scales_with_ci(self):
        one = awm_bytes(bsz=2, seq=128, hidden_dim=256, attn_heads=4, ci=1)
        three = awm_bytes(bsz=2, seq=128, hidden_dim=256, attn_heads=4, ci=3)
        assert three == 3 * one


class TestAIT:
    def test_eq9_param_grad(self):
        assert ait_param_grad(seq=1024, bsz=4) == 4096

    def test_eq10_optimizer(self):
        assert ait_optimizer_states(seq=1024, bsz=4) == 1024

    def test_eq11_activations(self):
        assert ait_activation_checkpoints(hidden_dim=8192, ci=1) == 24 * 8192

    def test_eq7_total_compute(self):
        assert compute_per_iter_flops(bsz=2, seq=1024, params=10**9) == (
            8 * 2 * 1024 * 10**9
        )

    def test_ait_consistency_with_volumes(self):
        """ait = compute / data for the parameter+gradient stream."""
        bsz, seq, params = 4, 1024, 10**9
        compute = compute_per_iter_flops(bsz=bsz, seq=seq, params=params)
        data = 2 * 4 * params  # 4x params tensors in fp16 (Sec. 4.1)
        assert compute / data == ait_param_grad(seq=seq, bsz=bsz)


class TestEfficiency:
    def test_eq6_closed_form(self):
        e = efficiency(ait=100.0, bw=1e9, peak_tp=1e11)
        assert e == pytest.approx(100 * 1e9 / (100 * 1e9 + 1e11))

    def test_monotone_in_bandwidth(self):
        es = [efficiency(ait=64, bw=b * GB) for b in (1, 4, 16, 64)]
        assert es == sorted(es)

    def test_param_grad_70gbs_claim(self):
        """Sec. 4.2: 'with a bandwidth of over 70 GB/s for parameter and
        gradients, we can achieve over 50% efficiency for even the
        smallest batch size'."""
        m = EfficiencyModel(bsz=1)
        assert m.param_grad_efficiency(70 * GB) > 0.50

    def test_optimizer_needs_4x_param_bandwidth(self):
        """Sec. 4.2: optimizer states need ~4x the bandwidth of params."""
        bw_p = required_bandwidth(
            ait=ait_param_grad(seq=1024, bsz=2), target_efficiency=0.5
        )
        bw_o = required_bandwidth(
            ait=ait_optimizer_states(seq=1024, bsz=2), target_efficiency=0.5
        )
        assert bw_o == pytest.approx(4 * bw_p)

    def test_optimizer_90pct_needs_about_1_5_tbs(self):
        """Sec. 4.2: 90% efficiency at bsz 2 needs ~1.5 TB/s."""
        bw = required_bandwidth(
            ait=ait_optimizer_states(seq=1024, bsz=2), target_efficiency=0.9
        )
        assert 1.0 * TB < bw < 1.6 * TB

    def test_activation_2gbs_claim(self):
        """Sec. 4.2: 2 GB/s sustains >50% even at hidden 2K; <1 GB/s
        suffices beyond 8K."""
        assert EfficiencyModel(hidden_dim=2048).activation_efficiency(2 * GB) > 0.5
        assert EfficiencyModel(hidden_dim=8192).activation_efficiency(1 * GB) > 0.5

    def test_required_bandwidth_inverts_efficiency(self):
        ait = 512.0
        for target in (0.3, 0.5, 0.9):
            bw = required_bandwidth(ait=ait, target_efficiency=target)
            assert efficiency(ait=ait, bw=bw) == pytest.approx(target)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            efficiency(ait=0, bw=1, peak_tp=1)
        with pytest.raises(ValueError):
            required_bandwidth(ait=1, target_efficiency=1.0)

    @given(
        ait=st.floats(1, 1e5),
        bw=st.floats(1e6, 1e13),
        peak=st.floats(1e12, 1e15),
    )
    @settings(max_examples=100, deadline=None)
    def test_efficiency_bounded_property(self, ait, bw, peak):
        e = efficiency(ait=ait, bw=bw, peak_tp=peak)
        assert 0.0 < e < 1.0


class TestTable3:
    """Future-hardware bandwidth requirements (Sec. 9, Table 3)."""

    def test_v100_row(self):
        row = EfficiencyModel().future_hardware_row(peak_multiplier=1.0)
        assert row["peak_pflops_per_device"] == pytest.approx(0.07)
        # ~3 GB/s per device slow memory, ~1.5 TB/s aggregate, ~70 GB/s gg
        assert row["slow_memory_bw_per_device"] == pytest.approx(3.0 * GB, rel=0.3)
        assert row["slow_memory_aggregate_bw"] == pytest.approx(1.5 * TB, rel=0.3)
        assert row["gpu_to_gpu_bw"] == pytest.approx(70 * GB, rel=0.05)

    def test_requirements_scale_linearly_with_compute(self):
        base = EfficiencyModel().future_hardware_row(peak_multiplier=1.0)
        x10 = EfficiencyModel().future_hardware_row(peak_multiplier=10.0)
        x100 = EfficiencyModel().future_hardware_row(peak_multiplier=100.0)
        for key in ("slow_memory_bw_per_device", "gpu_to_gpu_bw"):
            assert x10[key] == pytest.approx(10 * base[key])
            assert x100[key] == pytest.approx(100 * base[key])


class TestBatchCeiling:
    """Sec. 8.2: CPU memory for activation checkpoints caps the batch."""

    def test_table1_batches_respect_the_ceiling(self):
        from repro.analytics import max_batch_for_cpu_checkpoints
        from repro.utils.units import TB

        for name in (
            "0.5T-32node",
            "1T-32node",
            "5T-32node",
            "10T-32node",
            "20T-32node",
        ):
            cfg = TABLE1_CONFIGS[name]
            ceiling = max_batch_for_cpu_checkpoints(
                cpu_bytes_per_node=int(1.5 * TB),
                gpus_per_node=16,
                hidden_dim=cfg.hidden_dim,
                num_layers=cfg.num_layers,
            )
            # every Table 1 batch sits below the checkpoint-memory ceiling
            assert cfg.batch_per_gpu <= ceiling, name

    def test_20t_is_checkpoint_bound(self):
        """The 20T row runs at batch 1.25 against a ~2.0 ceiling — the
        'extremely small batch ... as a result of limited CPU memory'
        the paper blames for the 20T throughput drop."""
        from repro.analytics import max_batch_for_cpu_checkpoints
        from repro.utils.units import TB

        cfg = TABLE1_CONFIGS["20T-32node"]
        ceiling = max_batch_for_cpu_checkpoints(
            cpu_bytes_per_node=int(1.5 * TB),
            gpus_per_node=16,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
        )
        assert ceiling < 2.5  # no room for a healthy batch
        assert cfg.batch_per_gpu <= ceiling

    def test_ci_raises_the_ceiling(self):
        from repro.analytics import max_batch_for_cpu_checkpoints
        from repro.utils.units import TB

        kw = dict(
            cpu_bytes_per_node=int(1.5 * TB),
            gpus_per_node=16,
            hidden_dim=65536,
            num_layers=200,
        )
        assert max_batch_for_cpu_checkpoints(
            ci=2, **kw
        ) == pytest.approx(2 * max_batch_for_cpu_checkpoints(ci=1, **kw))

    def test_invalid_args_raise(self):
        from repro.analytics import max_batch_for_cpu_checkpoints

        with pytest.raises(ValueError):
            max_batch_for_cpu_checkpoints(
                cpu_bytes_per_node=0,
                gpus_per_node=16,
                hidden_dim=1024,
                num_layers=10,
            )


class TestModelZoo:
    def test_table1_complete(self):
        assert len(TABLE1_CONFIGS) == 10

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("10B-1node", 10e9),
            ("100B-1node", 100e9),
            ("1T-32node", 1e12),
            ("10T-32node", 10e12),
            ("20T-32node", 20e12),
        ],
    )
    def test_table1_param_counts(self, name, expected):
        assert TABLE1_CONFIGS[name].params == pytest.approx(expected, rel=0.12)

    def test_dp_degree(self):
        cfg = TABLE1_CONFIGS["1T-32node"]
        assert cfg.num_gpus == 512
        assert cfg.dp_degree == 128  # 512 / mp 4

    def test_memory_requirements_bundle(self):
        req = memory_requirements(num_layers=80, hidden_dim=10240, attn_heads=128)
        assert req.params == transformer_params(80, 10240)
        assert req.model_states == 20 * req.params
        assert req.mswm == mswm_bytes(10240)
        assert req.full_activations > req.activation_checkpoints
