"""Telemetry subsystem: tracer, metrics registry, and exporters.

The centrepiece is the round-trip test: a real NVMe-offloaded train step is
traced end-to-end and the exported Chrome trace must be valid trace-event
JSON — parseable, per-lane monotonic, complete-events-only — with spans
from every instrumented layer (engine, nvme, comm, prefetch, offload).
"""

import json
import threading

import pytest

from repro.core import OffloadConfig, OffloadDevice, ZeroConfig, ZeroInfinityEngine
from repro.nn import GPTModel, TransformerConfig
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    chrome_trace_events,
    get_registry,
    get_tracer,
    sim_to_chrome_trace,
    telemetry_summary,
    trace_instant,
    trace_span,
    tracing_enabled,
    use_tracer,
    write_chrome_trace,
    write_sim_trace,
    write_spans_jsonl,
)
from repro.utils.rng import seeded_rng, spawn_rngs
from repro.workloads import read_metrics


class TestTracer:
    def test_disabled_returns_shared_noop(self):
        t = Tracer(enabled=False)
        a = t.span("x")
        b = t.span("y", cat="nvme", bytes=4096)
        assert a is b  # one shared singleton: no allocation on the fast path
        with a:
            pass
        assert len(t) == 0

    def test_global_disabled_by_default(self):
        assert not tracing_enabled()
        with trace_span("ignored", cat="engine"):
            pass
        trace_instant("also ignored")
        assert len(get_tracer()) == 0 or get_tracer() is not None  # no crash

    def test_span_records_interval(self):
        t = Tracer(enabled=True)
        with t.span("work", cat="engine", step=3):
            pass
        (r,) = t.records()
        assert r.name == "work"
        assert r.cat == "engine"
        assert r.args == {"step": 3}
        assert r.dur_us >= 0.0
        assert not r.instant

    def test_nesting_orders_child_before_parent(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        names = [r.name for r in t.records()]
        assert names == ["inner", "outer"]  # committed at exit
        inner, outer = t.records()
        assert outer.ts_us <= inner.ts_us
        assert outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us

    def test_instant(self):
        t = Tracer(enabled=True)
        t.instant("marker", cat="prefetch", reason="divergence")
        (r,) = t.records()
        assert r.instant and r.dur_us == 0.0

    def test_thread_lanes_are_dense_and_stable(self):
        t = Tracer(enabled=True)
        with t.span("main-span"):
            pass

        def worker():
            with t.span("worker-span"):
                pass

        th = threading.Thread(target=worker, name="lane-test")
        th.start()
        th.join()
        lanes = {r.name: r.tid for r in t.records()}
        assert lanes["main-span"] == 0
        assert lanes["worker-span"] == 1
        assert t.lane_names() == {0: "MainThread", 1: "lane-test"}

    def test_max_spans_drops_and_counts(self):
        t = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t) == 2
        assert t.dropped == 3
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_use_tracer_installs_and_restores(self):
        before = get_tracer()
        with use_tracer() as t:
            assert get_tracer() is t
            assert tracing_enabled()
            with trace_span("global-span", cat="comm"):
                pass
        assert get_tracer() is before
        assert [r.name for r in t.records()] == ["global-span"]

    def test_categories(self):
        t = Tracer(enabled=True)
        with t.span("a", cat="nvme"):
            pass
        t.instant("b", cat="comm")
        assert t.categories() == {"nvme", "comm"}


class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(41)
        assert c.value == 42
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = Gauge("depth")
        g.add(3)
        g.add(4)
        g.add(-5)
        assert g.value == 2
        assert g.high_water == 7
        g.set(1)
        assert g.high_water == 7

    def test_histogram_stats(self):
        h = Histogram("lat")
        for v in (1, 10, 100, 1000):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(277.75)
        snap = h.snapshot()
        assert snap["min"] == 1 and snap["max"] == 1000
        assert snap["p50"] == pytest.approx(10.0)

    def test_histogram_custom_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 1))

    def test_histogram_quantile_bounds(self):
        h = Histogram("q")
        assert h.quantile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_registry_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        with pytest.raises(TypeError):
            reg.gauge("a.b")  # already a Counter

    def test_registry_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 7}
        assert snap["g"]["high_water"] == 3
        assert snap["h"]["count"] == 1
        assert reg.names() == ["c", "g", "h"]
        reg.reset()
        assert reg.snapshot() == {}

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()


def tiny_batches(world, n_rounds=1, seq=8, vocab=32):
    rngs = spawn_rngs(7, world)
    return [
        [(r.integers(0, vocab, (1, seq)), r.integers(0, vocab, (1, seq))) for r in rngs]
        for _ in range(n_rounds)
    ]


@pytest.fixture(scope="module")
def traced_run():
    """One NVMe-offloaded train step, traced; shared by the export tests."""
    get_registry().reset()
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
    )
    zcfg = ZeroConfig(
        world_size=2,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
        loss_scale=1.0,
    )
    with use_tracer() as tracer:
        with ZeroInfinityEngine(
            zcfg, model_factory=lambda: GPTModel(cfg, rng=seeded_rng(0)), lr=1e-3
        ) as engine:
            for batch in tiny_batches(2, n_rounds=2):
                engine.train_step(batch)
            report = engine.report()
    return tracer, report


class TestChromeTraceExport:
    def test_roundtrips_as_valid_json(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = str(tmp_path / "trace.json")
        n = write_chrome_trace(path, tracer, get_registry())
        assert n > 0
        with open(path) as fh:
            doc = json.load(fh)  # must parse: the whole point
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["dropped_spans"] == 0
        assert "metrics" in doc["otherData"]

    def test_covers_all_instrumented_layers(self, traced_run):
        tracer, _ = traced_run
        cats = {e["cat"] for e in chrome_trace_events(tracer) if e["ph"] == "X"}
        # acceptance bar: spans from >= 4 distinct categories
        assert {"engine", "nvme", "comm", "prefetch"} <= cats

    def test_ts_monotonic_per_lane(self, traced_run):
        tracer, _ = traced_run
        last: dict[int, float] = {}
        for e in chrome_trace_events(tracer):
            if e["ph"] in ("M", "C"):  # counter tracks are process-scoped
                continue
            assert e["ts"] >= last.get(e["tid"], 0.0)
            last[e["tid"]] = e["ts"]
        assert len(last) >= 2  # main thread plus aio workers

    def test_events_are_complete_and_balanced(self, traced_run):
        tracer, _ = traced_run
        for e in chrome_trace_events(tracer):
            assert e["ph"] in ("X", "M", "i", "C")  # no unbalanced B/E pairs
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
            if e["ph"] == "i":
                assert e["s"] == "t"

    def test_thread_metadata_names_aio_workers(self, traced_run):
        tracer, _ = traced_run
        names = [
            e["args"]["name"]
            for e in chrome_trace_events(tracer)
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "MainThread" in names
        assert any(n.startswith("repro-aio") for n in names)

    def test_engine_step_phases_present(self, traced_run):
        tracer, _ = traced_run
        names = {r.name for r in tracer.records()}
        for phase in ("engine:step", "engine:forward", "engine:backward",
                      "engine:optimizer", "offload:swap_in", "offload:swap_out",
                      "nvme:submit_write", "comm:allgather"):
            assert phase in names, phase

    def test_report_carries_telemetry(self, traced_run):
        _, report = traced_run
        assert report.telemetry  # registry snapshot rode along
        assert any(k.startswith("comm.bytes.") for k in report.telemetry)
        assert any(k.startswith("nvme.") for k in report.telemetry)
        assert report.prefetch_issued >= 0


class TestJsonlExport:
    def test_spans_in_metricslogger_format(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = str(tmp_path / "spans.jsonl")
        n = write_spans_jsonl(path, tracer, run_name="traced")
        records = read_metrics(path, event="span")
        assert len(records) == n == len(tracer.records())
        assert records[0]["run"] == "traced"
        assert {"name", "cat", "ts_us", "dur_us", "tid", "thread"} <= set(records[0])


class TestSimTraceExport:
    def test_sim_timeline_exports(self, tmp_path):
        from repro.core.config import Strategy
        from repro.hardware import dgx2_cluster
        from repro.sim import SimWorkload, StepSimulator, policy_for_strategy

        wl = SimWorkload(
            params=int(8e9), num_layers=4, hidden_dim=8192, attn_heads=16,
            batch_per_gpu=2,
        )
        b = StepSimulator(
            dgx2_cluster(1), wl, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        doc = sim_to_chrome_trace(b.result)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(b.result.tasks)
        assert doc["otherData"]["makespan_s"] == pytest.approx(b.result.makespan)
        # seconds scale 1:1 into trace microseconds
        assert max(e["ts"] + e["dur"] for e in xs) == pytest.approx(
            b.result.makespan * 1e6
        )
        path = str(tmp_path / "sim.json")
        assert write_sim_trace(path, b.result) == len(xs)
        with open(path) as fh:
            json.load(fh)


class TestTelemetrySummary:
    def test_renders_categories_and_metrics(self, traced_run):
        tracer, _ = traced_run
        out = telemetry_summary(tracer, get_registry())
        assert "Span time by category" in out
        for cat in ("engine", "nvme", "comm", "prefetch"):
            assert cat in out
        assert "Metrics registry" in out
        assert "comm.bytes.allgather" in out

    def test_empty_telemetry(self):
        empty = MetricsRegistry()
        assert telemetry_summary(None, empty) == "(no telemetry recorded)"


class TestPrefetchCounters:
    def test_summary_reports_hits_and_misses(self):
        cfg = TransformerConfig(
            num_layers=2, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
        )
        zcfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(
            zcfg, model_factory=lambda: GPTModel(cfg, rng=seeded_rng(0)), lr=1e-3
        ) as engine:
            for batch in tiny_batches(2, n_rounds=2):
                engine.train_step(batch)
            stats = engine.prefetcher.stats()
            summary = engine.summary()
        assert stats["hits"] > 0  # warm steps hit the lookahead
        assert stats["issued"] >= stats["hits"]
        assert stats["mispredicts"] == 0  # static model order: no divergence
        assert "prefetch:" in summary
        assert f"{stats['hits']} hits" in summary
        assert f"{stats['mispredicts']} mis-predicts" in summary


class TestCliTrace:
    def test_train_demo_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.json")
        rc = main([
            "train-demo", "--world", "2", "--steps", "1", "--hidden", "32",
            "--offload", "nvme", "--trace", path,
        ])
        assert rc == 0
        with open(path) as fh:
            doc = json.load(fh)
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"engine", "nvme", "comm", "prefetch"} <= cats
        out = capsys.readouterr().out
        assert "Perfetto" in out and path in out

    def test_throughput_writes_sim_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "sim.json")
        rc = main(["throughput", "--config", "10B-1node", "--trace", path])
        assert rc == 0
        with open(path) as fh:
            doc = json.load(fh)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert path in capsys.readouterr().out

    def test_train_demo_untreaced_leaves_global_tracer_off(self):
        assert not tracing_enabled()
