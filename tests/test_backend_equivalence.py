"""Backend equivalence: the mp backend must be bit-identical to the loop.

The contract under test (docs/parallelism.md): for every supported
configuration, running the same seeded workload through
:class:`~repro.comm.mp_backend.MultiprocBackend` (one OS process per
rank, shared-memory exchanges) and through the in-process
:class:`~repro.comm.backend.LoopBackend` oracle produces *identical*
per-step losses, global gradient norms, ``CommStats`` byte/call
counters, and final parameter digests — not approximately equal,
``==``-equal.  Any drift is a correctness bug in the transport or the
accounting echo, never acceptable noise.

Everything process-spawning is ``@pytest.mark.mp`` and runs under the
SIGALRM deadline from ``conftest.py`` so a wedged rendezvous fails
instead of hanging the suite.
"""

from __future__ import annotations

import glob
import os
import signal

import numpy as np
import pytest

from repro.comm import (
    BACKEND_NAMES,
    CommDivergence,
    LoopBackend,
    MpWorkerFailed,
    ProcessGroup,
    make_backend,
    run_multiproc,
)
from repro.comm.shm import SEGMENT_PREFIX
from repro.workloads.calibrate import (
    CalibSpec,
    run_mp_training,
    run_training,
)


def shm_leftovers() -> list[str]:
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test in this module must leave /dev/shm clean."""
    before = shm_leftovers()
    yield
    leaked = [p for p in shm_leftovers() if p not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


# --- the backend seam itself -------------------------------------------------
class TestBackendFactory:
    def test_names(self):
        assert BACKEND_NAMES == ("loop", "mp")

    def test_loop_constructs(self):
        b = make_backend("loop", 4)
        assert isinstance(b, LoopBackend)
        assert b.world_size == 4
        assert b.all_local and b.rank == 0 and b.is_local(3)

    def test_mp_needs_launcher(self):
        # mp endpoints only exist inside an MpSession rank process
        with pytest.raises(ValueError, match="run_multiproc"):
            make_backend("mp", 2)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            make_backend("nccl", 2)

    def test_bad_world_size(self):
        with pytest.raises(ValueError):
            make_backend("loop", 0)

    def test_group_defaults_to_loop(self):
        pg = ProcessGroup(3)
        assert isinstance(pg.backend, LoopBackend)
        assert pg.all_local

    def test_group_rejects_world_mismatch(self):
        with pytest.raises(ValueError, match="world"):
            ProcessGroup(3, backend=LoopBackend(2))

    def test_fingerprint_digest_is_order_sensitive(self):
        a, b = LoopBackend(2), LoopBackend(2)
        a.note_fingerprint("allgather", ["float32"], [8])
        a.note_fingerprint("reduce_scatter", ["float32"], [8])
        b.note_fingerprint("reduce_scatter", ["float32"], [8])
        b.note_fingerprint("allgather", ["float32"], [8])
        assert a.fingerprint_digest != b.fingerprint_digest


# --- the equivalence matrix --------------------------------------------------
MATRIX = [
    pytest.param(stage, world, offload, id=f"s{stage}-w{world}-{offload}")
    for stage in (2, 3)
    for world in (1, 2, 4)
    for offload in ("gpu", "cpu", "nvme")
]


@pytest.mark.mp
@pytest.mark.parametrize("stage,world,offload", MATRIX)
def test_matrix_bit_identical(stage, world, offload):
    spec = CalibSpec(world=world, steps=2, stage=stage, offload=offload)
    oracle = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    assert mp_run.numerics() == oracle.numerics()
    # the losses really were computed in separate processes
    assert mp_run.transport.get("exchanges", 0) > 0 or world == 1


@pytest.mark.mp
def test_equivalence_under_full_checkers(monkeypatch):
    """REPRO_CHECK=all: ordering fingerprints recorded in every rank
    process must agree with the loop oracle's (the accounting echo keeps
    the gather-path sequences aligned)."""
    monkeypatch.setenv("REPRO_CHECK", "all")
    spec = CalibSpec(world=2, steps=2, check="all")
    oracle = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    assert mp_run.numerics() == oracle.numerics()


OPT_PIPELINE_CELLS = [
    # chunked NVMe stream with the double-buffered pipeline on (tiny
    # chunk so the calibration shards actually stream), delayed update,
    # and both combined
    pytest.param(
        CalibSpec(world=2, steps=2, stage=3, offload="nvme", chunk_numel=512),
        id="pipelined-chunked",
    ),
    pytest.param(
        CalibSpec(world=2, steps=2, stage=3, offload="nvme", delayed_update=True),
        id="delayed-nvme",
    ),
    pytest.param(
        CalibSpec(world=4, steps=2, stage=2, offload="cpu", delayed_update=True,
                  scale_delayed_lr=0.9),
        id="delayed-scaled-cpu",
    ),
    pytest.param(
        CalibSpec(world=2, steps=2, stage=3, offload="nvme", chunk_numel=512,
                  delayed_update=True),
        id="delayed-pipelined-chunked",
    ),
]


@pytest.mark.mp
@pytest.mark.parametrize("spec", OPT_PIPELINE_CELLS)
def test_opt_pipeline_cells_bit_identical(spec):
    """Delayed/pipelined optimizer modes stay loop<->mp bit-identical."""
    oracle = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    assert mp_run.numerics() == oracle.numerics()


@pytest.mark.mp
def test_opt_pipeline_equivalence_under_full_checkers(monkeypatch):
    """The pipelined chunked step under REPRO_CHECK=all: shadow-record
    staging and the commit barrier must satisfy every lifecycle/ordering/
    aio-race rule in both backends, with identical numerics."""
    monkeypatch.setenv("REPRO_CHECK", "all")
    spec = CalibSpec(
        world=2, steps=2, stage=3, offload="nvme", chunk_numel=512,
        delayed_update=True, check="all",
    )
    oracle = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    assert mp_run.numerics() == oracle.numerics()


@pytest.mark.mp
def test_mp_transport_traffic_not_in_commstats():
    """Exchange/rendezvous traffic is transport, not simulated collectives:
    CommStats must match the loop byte-for-byte while the transport
    counters carry the real cross-process traffic."""
    spec = CalibSpec(world=2, steps=2)
    oracle = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    assert mp_run.comm_bytes_by_op == oracle.comm_bytes_by_op
    assert "exchange" not in mp_run.comm_bytes_by_op
    assert mp_run.transport["exchange_bytes"] > 0
    assert mp_run.transport["step_syncs"] == spec.steps


# --- failure protocol --------------------------------------------------------
def _divergent_worker(backend):
    # rank 1 issues an extra collective before the exchange: the
    # barrier-carried digests disagree and the exchange must refuse to
    # deliver data rather than silently mix mismatched streams
    if backend.rank == 1:
        backend.note_fingerprint("allgather", ["float32"], [16])
    try:
        backend.exchange(np.ones(4, dtype=np.float32))
    except CommDivergence:
        return "divergence"
    return "delivered"


@pytest.mark.mp
def test_divergent_sequences_detected():
    out = run_multiproc(2, _divergent_worker, timeout=30.0)
    assert out.results.count("divergence") == 2


def _replayed_worker(backend):
    """One asymmetric fault: rank 1's first forward raises OSError.

    Peers observe the broken rendezvous as CommPeerAbort, everyone takes
    the step-replay tier together, and the replay is bit-identical — so
    the run must still match the loop oracle exactly.
    """
    from repro.workloads import MarkovCorpus, per_rank_batches
    from repro.workloads.calibrate import state_digest

    spec = CalibSpec(world=2, steps=2)
    from repro.workloads.calibrate import build_engine

    with build_engine(spec, comm_backend=backend) as engine:
        if backend.rank == 1:
            orig = engine.model.forward
            fired = []

            def flaky_forward(*a, **k):
                if not fired:
                    fired.append(True)
                    raise OSError("simulated transient device fault")
                return orig(*a, **k)

            engine.model.forward = flaky_forward
        data = per_rank_batches(
            MarkovCorpus(spec.vocab, seed=1),
            world_size=spec.world,
            bsz_per_rank=spec.bsz_per_rank,
            seq=spec.seq,
            seed=2,
        )
        losses = []
        for _ in range(spec.steps):
            losses.append(list(engine.train_step(next(data)).losses))
        return (
            losses,
            engine.step_retries_used,
            state_digest(engine.gather_state()),
        )


@pytest.mark.mp
def test_asymmetric_fault_replays_in_lockstep():
    oracle = run_training(CalibSpec(world=2, steps=2))
    out = run_multiproc(2, _replayed_worker, timeout=60.0)
    (losses0, retries0, digest0), (losses1, retries1, digest1) = out.results
    # both ranks replayed exactly once — the faulting rank via its own
    # OSError, the peer via CommPeerAbort from the broken barrier
    assert (retries0, retries1) == (1, 1)
    assert losses0 == losses1 == oracle.losses
    assert digest0 == digest1 == oracle.state_digest


def _suicidal_worker(backend):
    if backend.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no goodbye
    backend.step_sync()
    return "survived"


@pytest.mark.mp
def test_killed_rank_fails_run_without_shm_leak():
    """SIGKILL mid-step: the launcher must surface a worker failure and
    the parent's cleanup must unlink every shared segment (the autouse
    fixture asserts /dev/shm is clean afterwards)."""
    with pytest.raises(MpWorkerFailed) as err:
        run_multiproc(2, _suicidal_worker, timeout=30.0)
    assert err.value.rank == 1


def _terminal_worker(backend):
    if backend.rank == 0:
        raise RuntimeError("unrecoverable logic error on rank 0")
    backend.step_sync()
    return "unreachable"


@pytest.mark.mp
def test_terminal_error_propagates_worker_traceback():
    with pytest.raises(MpWorkerFailed, match="unrecoverable logic error"):
        run_multiproc(2, _terminal_worker, timeout=30.0)


# --- per-rank observability --------------------------------------------------
@pytest.mark.mp
def test_trace_shards_merge_per_rank():
    from repro.obs import merged_chrome_trace

    spec = CalibSpec(world=2, steps=1)
    _, shards = run_mp_training(spec, trace=True)
    assert shards is not None and [s.rank for s in shards] == [0, 1]
    doc = merged_chrome_trace(shards)
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert names == {"rank 0", "rank 1"}
    # rank-local exchange spans made it into the merged view
    assert any(
        e.get("name") == "mp:exchange" and e.get("ph") == "X"
        for e in doc["traceEvents"]
    )
