"""Engine features beyond the core loop: sharded checkpointing, gradient
accumulation, activation-offload placements (CPU and the Sec. 8.2
future-work NVMe variant)."""

import os

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.core.checkpoint_io import (
    load_checkpoint,
    load_consolidated,
    save_checkpoint,
    save_consolidated,
)
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng

WORLD = 2
VOCAB = 32


def factory(ckpt=False):
    cfg = TransformerConfig(
        num_layers=2,
        hidden_dim=16,
        num_heads=2,
        vocab_size=VOCAB,
        max_seq=8,
        activation_checkpointing=ckpt,
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def make_rounds(n_rounds, seed=5, bsz=1):
    rng = seeded_rng(seed)
    return [
        [
            (rng.integers(0, VOCAB, (bsz, 8)), rng.integers(0, VOCAB, (bsz, 8)))
            for _ in range(WORLD)
        ]
        for _ in range(n_rounds)
    ]


def zcfg(stage=ZeroStage.PARAMETERS, **off):
    return ZeroConfig(
        world_size=WORLD,
        stage=stage,
        offload=OffloadConfig(**off),
        loss_scale=1.0,
    )


class TestGradientAccumulation:
    @pytest.mark.parametrize(
        "stage,off",
        [
            (ZeroStage.NONE, {}),
            (ZeroStage.GRADIENTS, {}),
            (ZeroStage.PARAMETERS, {}),
            (
                ZeroStage.PARAMETERS,
                dict(
                    param_device=OffloadDevice.NVME,
                    grad_device=OffloadDevice.NVME,
                    optimizer_device=OffloadDevice.NVME,
                ),
            ),
        ],
        ids=["dp", "zero2", "zero3", "inf-nvme"],
    )
    def test_accumulation_equals_big_batch(self, stage, off):
        """2 rounds of bsz 1 == 1 round of bsz 2 (same tokens)."""
        rounds = make_rounds(2, bsz=1)
        merged = [
            (
                np.concatenate([rounds[0][r][0], rounds[1][r][0]]),
                np.concatenate([rounds[0][r][1], rounds[1][r][1]]),
            )
            for r in range(WORLD)
        ]
        with ZeroInfinityEngine(zcfg(stage, **off), model_factory=factory, lr=1e-2) as a:
            a.train_step_accumulated(rounds)
            state_a = a.gather_state()
        with ZeroInfinityEngine(zcfg(stage, **off), model_factory=factory, lr=1e-2) as b:
            b.train_step(merged)
            state_b = b.gather_state()
        # tolerance note: for near-zero gradients Adam's m/sqrt(v) update is
        # sign-like, so fp32 summation-order noise between (g1+g2)/2 and
        # mean-over-merged-batch is amplified to O(lr * noise_sign); bound
        # the drift at a small fraction of one update instead of exact-match
        for name in state_a:
            np.testing.assert_allclose(
                state_a[name], state_b[name], rtol=1e-3, atol=5e-5, err_msg=name
            )

    def test_multiple_accumulated_steps(self):
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as eng:
            losses = []
            for step in range(3):
                r = eng.train_step_accumulated(make_rounds(2, seed=step))
                losses.append(r.mean_loss)
            assert all(np.isfinite(l) for l in losses)
            assert eng.steps_taken == 3

    def test_empty_rounds_raise(self):
        with ZeroInfinityEngine(zcfg(), model_factory=factory) as eng:
            with pytest.raises(ValueError):
                eng.train_step_accumulated([])

    def test_wrong_round_width_raises(self):
        with ZeroInfinityEngine(zcfg(), model_factory=factory) as eng:
            with pytest.raises(ValueError):
                eng.train_step_accumulated([make_rounds(1)[0][:1]])

    def test_no_stale_grads_across_steps(self):
        """Accumulation state must reset between optimizer steps."""
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as a, \
             ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as b:
            rounds = make_rounds(1, seed=9)
            # a: two identical separate steps; b: would differ if step 2
            # merged step 1's gradients
            a.train_step_accumulated(rounds)
            a.train_step_accumulated(rounds)
            b.train_step(rounds[0])
            b.train_step(rounds[0])
            sa, sb = a.gather_state(), b.gather_state()
            for name in sa:
                np.testing.assert_allclose(sa[name], sb[name], rtol=1e-6)


class TestActivationOffload:
    @pytest.mark.parametrize("device", [OffloadDevice.CPU, OffloadDevice.NVME])
    def test_offloaded_checkpoints_train_identically(self, device):
        rounds = make_rounds(1, seed=11, bsz=2)
        losses = {}
        for dev in (OffloadDevice.NONE, device):
            cfg = zcfg(
                param_device=OffloadDevice.NVME if dev is OffloadDevice.NVME else OffloadDevice.NONE,
                activation_device=dev,
            )
            with ZeroInfinityEngine(
                cfg, model_factory=lambda: factory(ckpt=True), lr=1e-2
            ) as eng:
                losses[dev] = [eng.train_step(rounds[0]).mean_loss for _ in range(2)]
        base, offl = losses[OffloadDevice.NONE], losses[device]
        np.testing.assert_allclose(base, offl, rtol=1e-6)

    def test_offloader_traffic_recorded(self):
        cfg = zcfg(activation_device=OffloadDevice.CPU)
        with ZeroInfinityEngine(
            cfg, model_factory=lambda: factory(ckpt=True), lr=1e-2
        ) as eng:
            eng.train_step(make_rounds(1)[0])
            total_off = sum(o.bytes_offloaded for o in eng.activation_offloaders)
            total_back = sum(o.bytes_restored for o in eng.activation_offloaders)
            assert total_off > 0
            assert total_off == total_back  # every checkpoint came back

    def test_nvme_checkpoints_are_single_use(self):
        cfg = zcfg(
            param_device=OffloadDevice.NVME,
            activation_device=OffloadDevice.NVME,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=lambda: factory(ckpt=True), lr=1e-2
        ) as eng:
            eng.train_step(make_rounds(1)[0])
            leftover = [k for k in eng.offload.store.keys() if k.startswith("act.")]
            assert leftover == []  # deleted after their backward

    def test_offload_without_checkpointing_raises(self):
        cfg = zcfg(activation_device=OffloadDevice.CPU)
        with pytest.raises(ValueError, match="CheckpointedBlock"):
            ZeroInfinityEngine(cfg, model_factory=lambda: factory(ckpt=False))


class TestSummary:
    def test_summary_mentions_configuration(self):
        cfg = zcfg(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory) as eng:
            text = eng.summary()
            assert "stage 3" in text
            assert f"{WORLD} rank" in text
            assert "params=nvme" in text
            assert "bandwidth-centric" in text
            assert "static x1" in text

    def test_summary_tracks_steps(self):
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-3) as eng:
            eng.train_step(make_rounds(1)[0])
            assert "1 taken" in eng.summary()


class TestShardedCheckpoint:
    def _train(self, engine, steps, seed=21):
        for s in range(steps):
            engine.train_step(make_rounds(1, seed=seed + s)[0])

    @pytest.mark.parametrize(
        "stage,off",
        [
            (ZeroStage.PARAMETERS, {}),
            (
                ZeroStage.PARAMETERS,
                dict(
                    param_device=OffloadDevice.NVME,
                    optimizer_device=OffloadDevice.NVME,
                    grad_device=OffloadDevice.NVME,
                ),
            ),
            (ZeroStage.GRADIENTS, {}),
        ],
        ids=["zero3", "inf-nvme", "zero2"],
    )
    def test_save_load_resume_matches_uninterrupted(self, tmp_path, stage, off):
        """Train 2 + save + load + train 2 == train 4 straight."""
        ck = str(tmp_path / "ck")
        with ZeroInfinityEngine(zcfg(stage, **off), model_factory=factory, lr=1e-2) as a:
            self._train(a, 2)
            save_checkpoint(a, ck)
            self._train(a, 2, seed=40)
            direct = a.gather_state()
        with ZeroInfinityEngine(zcfg(stage, **off), model_factory=factory, lr=1e-2) as b:
            load_checkpoint(b, ck)
            assert b.steps_taken == 2
            self._train(b, 2, seed=40)
            resumed = b.gather_state()
        for name in direct:
            np.testing.assert_allclose(
                resumed[name], direct[name], rtol=1e-5, atol=1e-7, err_msg=name
            )

    def test_manifest_contents(self, tmp_path):
        ck = str(tmp_path / "ck")
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as eng:
            self._train(eng, 1)
            manifest = save_checkpoint(eng, ck)
        assert manifest["world_size"] == WORLD
        assert manifest["steps_taken"] == 1
        assert os.path.exists(os.path.join(ck, "manifest.json"))
        assert any(f.endswith(".npy") for f in os.listdir(os.path.join(ck, "param")))

    def test_world_size_mismatch_rejected(self, tmp_path):
        ck = str(tmp_path / "ck")
        with ZeroInfinityEngine(zcfg(), model_factory=factory) as eng:
            save_checkpoint(eng, ck)
        other = ZeroConfig(world_size=4, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
        with ZeroInfinityEngine(other, model_factory=factory) as eng:
            with pytest.raises(ValueError, match="world"):
                load_checkpoint(eng, ck)

    def test_name_mismatch_rejected(self, tmp_path):
        ck = str(tmp_path / "ck")
        with ZeroInfinityEngine(zcfg(), model_factory=factory) as eng:
            save_checkpoint(eng, ck)

        def other_factory():
            cfg = TransformerConfig(
                num_layers=1, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
            )
            return GPTModel(cfg, rng=seeded_rng(0))

        with ZeroInfinityEngine(zcfg(), model_factory=other_factory) as eng:
            with pytest.raises(ValueError, match="name"):
                load_checkpoint(eng, ck)

    @pytest.mark.parametrize("new_world", [1, 3, 4])
    def test_reshard_to_different_world(self, tmp_path, new_world):
        """Elastic resume: train at world 2, reshard, resume at world N
        with identical weights and optimizer state."""
        from repro.core.checkpoint_io import reshard_checkpoint

        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as a:
            self._train(a, 2)
            save_checkpoint(a, src)
            expected = a.gather_state()
        manifest = reshard_checkpoint(src, dst, new_world)
        assert manifest["world_size"] == new_world
        cfg = ZeroConfig(
            world_size=new_world, stage=ZeroStage.PARAMETERS, loss_scale=1.0
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-2) as b:
            load_checkpoint(b, dst)
            assert b.steps_taken == 2
            got = b.gather_state()
            for name in expected:
                np.testing.assert_array_equal(got[name], expected[name])
            # optimizer step counters survived (bias correction continuity)
            ref = next(iter(b.optimizer._refs.values()))
            assert ref.step == 2
            # and training continues
            rng = seeded_rng(77)
            batch = [
                (rng.integers(0, VOCAB, (1, 8)), rng.integers(0, VOCAB, (1, 8)))
                for _ in range(new_world)
            ]
            r = b.train_step(batch)
            assert np.isfinite(r.mean_loss)

    def test_reshard_rejects_bad_world(self, tmp_path):
        from repro.core.checkpoint_io import reshard_checkpoint

        src = str(tmp_path / "src")
        with ZeroInfinityEngine(zcfg(), model_factory=factory) as eng:
            save_checkpoint(eng, src)
        with pytest.raises(ValueError):
            reshard_checkpoint(src, str(tmp_path / "dst"), 0)

    def test_consolidated_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.npz")
        with ZeroInfinityEngine(zcfg(), model_factory=factory, lr=1e-2) as eng:
            self._train(eng, 1)
            state = eng.gather_state()
            save_consolidated(eng, path)
        loaded = load_consolidated(path)
        assert loaded.keys() == state.keys()
        for name in state:
            np.testing.assert_array_equal(loaded[name], state[name])
