"""The deliberate-bug corpus: every snippet fires exactly its checker.

Two properties per snippet in ``tests/check_corpus/``:

* armed with its declared passes in raise mode, ``trigger()`` raises a
  :class:`CheckViolation` of exactly the declared ``EXPECT`` kind;
* armed with **all** passes in record mode, the recorded violations are of
  that kind only — no snippet trips an unrelated pass (precision, not
  just recall).
"""

import importlib.util
import pathlib

import pytest

from repro.check import CheckConfig, CheckViolation, use_checker
from repro.check.config import PASS_NAMES

CORPUS_DIR = pathlib.Path(__file__).parent / "check_corpus"
SNIPPETS = sorted(
    p for p in CORPUS_DIR.glob("*.py") if p.name != "__init__.py"
)


def load(path):
    spec = importlib.util.spec_from_file_location(f"corpus_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("path", SNIPPETS, ids=lambda p: p.stem)
def test_snippet_raises_expected_kind(path):
    mod = load(path)
    with use_checker(CheckConfig.from_spec(mod.PASSES, mode="raise")):
        with pytest.raises(CheckViolation) as exc:
            mod.trigger()
    assert exc.value.kind == mod.EXPECT


@pytest.mark.parametrize("path", SNIPPETS, ids=lambda p: p.stem)
def test_snippet_flagged_by_exactly_its_pass(path):
    mod = load(path)
    with use_checker(CheckConfig.from_spec("all", mode="record")) as ctx:
        mod.trigger()
        kinds = set(ctx.violation_counts())
    assert kinds == {mod.EXPECT}


def test_corpus_declares_valid_passes():
    for path in SNIPPETS:
        mod = load(path)
        declared = CheckConfig.from_spec(mod.PASSES)
        assert declared.any_runtime, path.name
        for name in mod.PASSES.split(","):
            assert name.strip() in PASS_NAMES


def test_corpus_exercises_every_runtime_pass():
    armed = set()
    for path in SNIPPETS:
        armed.update(
            n.strip() for n in load(path).PASSES.split(",") if n.strip()
        )
    assert {"zerosan", "collectives", "races"} <= armed


def test_corpus_size():
    assert len(SNIPPETS) >= 6, [p.name for p in SNIPPETS]
