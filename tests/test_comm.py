"""Functional collectives, process-group accounting, and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CollectiveCostModel,
    ProcessGroup,
    allgather,
    allreduce,
    alltoall,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from repro.comm.cost import broadcast_time, ring_allgather_time, ring_allreduce_time
from repro.hardware.devices import NVLINK_V100


def shards_for(world, n=6, dtype=np.float32):
    return [np.arange(n, dtype=dtype) + 100 * r for r in range(world)]


class TestBroadcast:
    def test_all_ranks_get_root_copy(self):
        bufs = [np.array([1.0, 2.0]), None, None]
        out = broadcast(bufs, root=0)
        for o in out:
            np.testing.assert_array_equal(o, [1.0, 2.0])

    def test_ranks_share_one_readonly_view(self):
        # O(1) copies: every rank aliases one private copy of the root's
        # payload, read-only so no rank can mutate what the others see
        out = broadcast([np.zeros(2), None], root=0)
        assert np.shares_memory(out[0], out[1])
        for o in out:
            assert not o.flags.writeable
            with pytest.raises(ValueError):
                o[0] = 5

    def test_broadcast_detached_from_root_buffer(self):
        root_buf = np.zeros(2)
        out = broadcast([root_buf, None], root=0)
        root_buf[0] = 9  # later writes must not leak into the broadcast
        assert out[1][0] == 0

    def test_nonzero_root(self):
        out = broadcast([None, np.array([7.0])], root=1)
        assert out[0][0] == 7.0

    def test_bad_root_raises(self):
        with pytest.raises(ValueError):
            broadcast([np.zeros(1)], root=1)

    def test_none_root_raises(self):
        with pytest.raises(ValueError):
            broadcast([None, np.zeros(1)], root=0)


class TestAllgather:
    def test_rank_order_concat(self):
        out = allgather([np.full(2, r, dtype=np.float32) for r in range(3)])
        np.testing.assert_array_equal(out[0], [0, 0, 1, 1, 2, 2])
        assert len(out) == 3

    def test_uneven_shards(self):
        out = allgather([np.array([1.0]), np.array([2.0, 3.0])])
        np.testing.assert_array_equal(out[1], [1.0, 2.0, 3.0])

    def test_multidim_shards_flatten(self):
        out = allgather([np.ones((2, 2)), np.zeros((2, 2))])
        assert out[0].shape == (8,)


class TestReduceScatter:
    def test_sum(self):
        bufs = [np.arange(4, dtype=np.float32) for _ in range(2)]
        out = reduce_scatter(bufs, op="sum")
        np.testing.assert_array_equal(out[0], [0, 2])
        np.testing.assert_array_equal(out[1], [4, 6])

    def test_mean(self):
        bufs = [np.full(4, 2.0), np.full(4, 4.0)]
        out = reduce_scatter(bufs, op="mean")
        np.testing.assert_array_equal(out[0], [3.0, 3.0])

    def test_fp16_accumulates_in_fp32(self):
        # many small fp16 values whose naive fp16 sum loses precision
        bufs = [np.full(4, 0.001, dtype=np.float16) for _ in range(1000)]
        out = allreduce(bufs, op="sum")
        assert out[0].dtype == np.float16
        assert float(out[0][0]) == pytest.approx(1.0, rel=0.01)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            reduce_scatter([np.zeros(5), np.zeros(5)])

    def test_unequal_sizes_raise(self):
        with pytest.raises(ValueError):
            reduce_scatter([np.zeros(4), np.zeros(6)])

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            reduce_scatter([np.zeros(4), np.zeros(4)], op="median")


class TestAllreduce:
    def test_sum_equals_manual(self):
        bufs = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        out = allreduce(bufs, op="sum")
        for o in out:
            np.testing.assert_array_equal(o, [4.0, 6.0])

    def test_mean(self):
        out = allreduce([np.zeros(2), np.full(2, 4.0)], op="mean")
        np.testing.assert_array_equal(out[0], [2.0, 2.0])

    def test_max(self):
        out = allreduce([np.array([1.0, 9.0]), np.array([5.0, 2.0])], op="max")
        np.testing.assert_array_equal(out[0], [5.0, 9.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            allreduce([np.zeros(2), np.zeros(3)])


class TestScatterGather:
    def test_scatter_splits_evenly(self):
        out = scatter(np.arange(6), world=3)
        np.testing.assert_array_equal(out[1], [2, 3])

    def test_scatter_indivisible_raises(self):
        with pytest.raises(ValueError):
            scatter(np.arange(5), world=2)

    def test_gather_root_only(self):
        out = gather([np.array([1]), np.array([2])], root=1)
        assert out[0] is None
        np.testing.assert_array_equal(out[1], [1, 2])

    def test_alltoall_transpose(self):
        mat = [[np.array([i * 10 + j]) for j in range(2)] for i in range(2)]
        out = alltoall(mat)
        assert out[1][0][0] == 1  # rank0 sent [0][1]=1 to rank 1

    def test_alltoall_nonsquare_raises(self):
        with pytest.raises(ValueError):
            alltoall([[np.zeros(1)]* 2, [np.zeros(1)]])


class TestCollectiveProperties:
    @given(world=st.integers(1, 8), n=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_reduce_scatter_then_allgather_is_allreduce(self, world, n):
        """The ring-allreduce identity the paper's Sec. 6.1 argument uses."""
        rng = np.random.default_rng(world * 100 + n)
        padded = n * world
        bufs = [rng.random(padded).astype(np.float32) for _ in range(world)]
        rs = reduce_scatter(bufs, op="sum")
        ag = allgather(rs)
        ar = allreduce(bufs, op="sum")
        np.testing.assert_allclose(ag[0], ar[0], rtol=1e-6)

    @given(world=st.integers(1, 8), n=st.integers(0, 32))
    @settings(max_examples=50, deadline=None)
    def test_scatter_allgather_roundtrip(self, world, n):
        data = np.arange(n * world, dtype=np.float64)
        out = allgather(scatter(data, world))
        np.testing.assert_array_equal(out[0], data)


class TestProcessGroup:
    def test_volume_accounting_broadcast_equals_allgather(self):
        """Sec. 6.1: 'both broadcast and allgather ... have the same
        communication cost when it comes to data movement volume'."""
        world, n = 4, 64
        pg1 = ProcessGroup(world)
        pg1.broadcast([np.zeros(n, dtype=np.float32)] + [None] * (world - 1))
        pg2 = ProcessGroup(world)
        pg2.allgather([np.zeros(n // world, dtype=np.float32) for _ in range(world)])
        assert pg1.stats.total_bytes == pg2.stats.total_bytes > 0

    def test_allreduce_twice_reduce_scatter_volume(self):
        world, n = 4, 64
        pg = ProcessGroup(world)
        pg.allreduce([np.zeros(n, dtype=np.float32) for _ in range(world)])
        pg2 = ProcessGroup(world)
        pg2.reduce_scatter([np.zeros(n, dtype=np.float32) for _ in range(world)])
        assert (
            pg.stats.bytes_by_op["allreduce"]
            == 2 * pg2.stats.bytes_by_op["reduce_scatter"]
        )

    def test_call_counters(self):
        pg = ProcessGroup(2)
        pg.barrier()
        pg.allgather([np.zeros(2), np.zeros(2)])
        assert pg.stats.total_calls == 2
        pg.stats.reset()
        assert pg.stats.total_calls == 0

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            ProcessGroup(0)


class TestCostModels:
    def test_single_rank_is_free(self):
        assert ring_allgather_time(1e9, 1, NVLINK_V100) == 0.0

    def test_allreduce_is_twice_allgather(self):
        assert ring_allreduce_time(1e9, 8, NVLINK_V100) == pytest.approx(
            2 * ring_allgather_time(1e9, 8, NVLINK_V100)
        )

    def test_broadcast_cost_equals_allgather(self):
        # the Sec. 6.1 equivalence, in time units
        assert broadcast_time(1e9, 16, NVLINK_V100) == ring_allgather_time(
            1e9, 16, NVLINK_V100
        )

    def test_bandwidth_term_dominates_large_payloads(self):
        t = ring_allgather_time(150e9, 2, NVLINK_V100)
        # (p-1)/p = 1/2 of the payload over 150 GB/s = ~0.5 s
        assert t == pytest.approx(0.5, rel=0.01)

    def test_model_object(self):
        m = CollectiveCostModel(NVLINK_V100, 8)
        assert m.allreduce(1e9) == pytest.approx(2 * m.allgather(1e9))
        assert m.broadcast(1e9) == m.allgather(1e9)
        assert m.reduce_scatter(1e9) == m.allgather(1e9)
