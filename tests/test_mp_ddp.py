"""Real multi-process data parallelism matches the in-process oracle."""

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.baselines.mp_ddp import MultiprocessDDP
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def mp_factory():
    """Module-level (picklable) replica factory for fork/spawn workers."""
    cfg = TransformerConfig(
        num_layers=1, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(11))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8))) for r in rngs
    ]


class TestMultiprocessDDP:
    def test_losses_match_inprocess_ddp(self):
        ref = DDPTrainer(mp_factory, WORLD, lr=1e-2)
        with MultiprocessDDP(mp_factory, WORLD, lr=1e-2, timeout=120) as mpddp:
            for step in range(2):
                b = batches(step)
                ref_losses = ref.train_step(b)
                mp_losses = mpddp.train_step(b)
                np.testing.assert_allclose(mp_losses, ref_losses, rtol=1e-6)
            ref_state = ref.state_dict()
            mp_state = mpddp.master_state()
        for name in ref_state:
            np.testing.assert_allclose(
                mp_state[name], ref_state[name], rtol=1e-4, atol=1e-6, err_msg=name
            )

    def test_workers_synchronized_after_step(self):
        with MultiprocessDDP(mp_factory, WORLD, lr=1e-2, timeout=120) as mpddp:
            mpddp.train_step(batches())
            master = mpddp.master_state()
            for rank in range(WORLD):
                worker = mpddp.state_dict(rank)
                for name in master:
                    np.testing.assert_array_equal(worker[name], master[name])

    def test_wrong_batch_count_raises(self):
        with MultiprocessDDP(mp_factory, WORLD, timeout=120) as mpddp:
            with pytest.raises(ValueError):
                mpddp.train_step(batches()[:1])

    def test_closed_trainer_rejects_work(self):
        mpddp = MultiprocessDDP(mp_factory, WORLD, timeout=120)
        mpddp.close()
        with pytest.raises(RuntimeError):
            mpddp.train_step(batches())
        mpddp.close()  # idempotent

    def test_invalid_world_raises(self):
        with pytest.raises(ValueError):
            MultiprocessDDP(mp_factory, 0)
