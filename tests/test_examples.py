"""Every example script runs to completion (the deliverable stays green)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_all_examples_discovered():
    """The suite covers at least the five documented scenarios."""
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip()  # every example narrates what it did
