"""Regression guard: the ZeRO-3 hot path stays O(modules + buckets).

Before the bucketed runtime, one training step issued a collective per
parameter per rank per phase — O(params).  The coalesced allgather and the
gradient bucket store bring that down to one allgather per (rank, module,
phase) plus one reduce-scatter per bucket flush.  This test computes that
bound from the model structure and pins the measured collective count under
it, so a future change can't silently regress to per-tensor communication.
"""

from repro.core import ZeroConfig, ZeroInfinityEngine, ZeroStage
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 64

# allreduces issued outside the gather/reduce protocol (loss averaging,
# overflow check, global grad norm); generous constant slack
STEP_SLACK = 8


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(1))


def batch():
    rngs = spawn_rngs(2, WORLD)
    return [
        (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8)))
        for r in rngs
    ]


def run_one_step(**overrides):
    cfg = ZeroConfig(
        world_size=WORLD,
        stage=ZeroStage.PARAMETERS,
        loss_scale=1.0,
        **overrides,
    )
    with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-3) as eng:
        hooked_modules = sum(
            1 for m in eng.model.modules() if m.direct_parameters()
        )
        n_params = len(list(eng.model.named_parameters()))
        baseline = eng.report().total_collective_calls  # init-time comm
        eng.train_step(batch())
        report = eng.report()
        bucket_collectives = (
            eng.coordinator.bucket_store.stats.collectives
            if eng.coordinator.bucket_store
            else None
        )
    return {
        "per_step": report.total_collective_calls - baseline,
        "modules": hooked_modules,
        "params": n_params,
        "bucket_collectives": bucket_collectives,
        "report": report,
    }


class TestCommBudget:
    def test_step_is_o_modules_plus_buckets(self):
        r = run_one_step()  # defaults: coalesced + bucketed
        # one coalesced allgather per (rank, hooked module) in forward and
        # again in backward, plus one reduce-scatter per bucket flush
        bound = (
            2 * WORLD * r["modules"] + r["bucket_collectives"] + STEP_SLACK
        )
        assert r["per_step"] <= bound, (r["per_step"], bound)
        # the guard is meaningful: the bound itself is far below the old
        # per-parameter cost (gathers alone were 2 * world * params)
        assert bound < 2 * WORLD * r["params"]
        assert r["modules"] < r["params"]

    def test_strictly_fewer_than_per_param_path(self):
        bucketed = run_one_step()
        legacy = run_one_step(coalesce_allgather=False, reduce_bucket_numel=0)
        assert bucketed["per_step"] < legacy["per_step"]
        # legacy really is O(params): at least one collective per param for
        # the gradient reduce-scatter alone
        assert legacy["per_step"] >= legacy["params"]

    def test_bucket_flushes_scale_with_numel_not_params(self):
        r = run_one_step()
        # flushes are bounded by total gradient volume / capacity (+1 per
        # partially filled final bucket, +1 per oversized param)
        report = r["report"]
        assert report.bucket_flushes >= 1
        assert report.grads_bucketed >= 1
        assert r["bucket_collectives"] < r["params"]
