"""Property tests for the overlapped optimizer pipeline and delayed update.

Two exactness contracts from ISSUE 10:

* **Pipeline**: with ``optimizer_pipeline`` on, the double-buffered chunked
  NVMe step must be bit-identical to the serial reference schedule for any
  chunk size, world, and overflow-skip pattern — the overlap is pure
  scheduling, never arithmetic.
* **Delayed update**: ``delayed_update`` training must match a reference
  NumPy one-step-delayed Adam trajectory exactly (losses and final
  parameters), including the ``scale_delayed_lr`` staleness correction and
  the end-of-run flush of the final pending update.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.optim.adam import adam_step
from repro.utils.rng import seeded_rng
from repro.workloads import MarkovCorpus, per_rank_batches
from repro.workloads.calibrate import CalibSpec, run_training, state_digest

SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --- pipelined vs serial oracle ----------------------------------------------
class TestPipelineBitExact:
    @settings(max_examples=6, **SETTINGS)
    @given(
        chunk=st.integers(min_value=13, max_value=4096),
        world=st.sampled_from([1, 2, 4]),
        stage=st.sampled_from([2, 3]),
    )
    def test_pipelined_matches_serial_oracle(self, chunk, world, stage):
        base = dict(
            world=world, steps=2, stage=stage, offload="nvme",
            chunk_numel=chunk,
        )
        serial = run_training(CalibSpec(**base, optimizer_pipeline=False))
        piped = run_training(CalibSpec(**base, optimizer_pipeline=True))
        assert piped.numerics() == serial.numerics()

    @settings(max_examples=4, **SETTINGS)
    @given(chunk=st.integers(min_value=13, max_value=1024))
    def test_delayed_pipelined_matches_delayed_serial(self, chunk):
        base = dict(
            world=2, steps=3, stage=3, offload="nvme",
            chunk_numel=chunk, delayed_update=True,
        )
        serial = run_training(CalibSpec(**base, optimizer_pipeline=False))
        piped = run_training(CalibSpec(**base, optimizer_pipeline=True))
        assert piped.numerics() == serial.numerics()


# --- overflow-skip schedules --------------------------------------------------
VOCAB = 64


def _model_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def _scheduled_run(schedule, *, pipeline, delayed):
    """Train with a forced overflow-skip schedule; returns the trajectory.

    ``loss_scale=2.0`` makes the engine consult ``grads_overflowed`` each
    step; replacing it with the schedule exercises the skip branch (and,
    in delayed mode, the apply-pending-without-harvest path)
    deterministically.
    """
    cfg = ZeroConfig(
        world_size=2,
        stage=ZeroStage.PARAMETERS,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            optimizer_chunk_numel=97,
            optimizer_pipeline=pipeline,
        ),
        loss_scale=2.0,
        delayed_update=delayed,
    )
    rng = seeded_rng(3)
    batches = [
        [
            (
                rng.integers(0, VOCAB, size=(2, 8)),
                rng.integers(0, VOCAB, size=(2, 8)),
            )
            for _ in range(2)
        ]
        for _ in range(len(schedule))
    ]
    with ZeroInfinityEngine(cfg, model_factory=_model_factory, lr=1e-2) as eng:
        flags = iter(schedule)
        eng.optimizer.grads_overflowed = lambda: next(flags)  # type: ignore[method-assign]
        losses, skipped = [], []
        for b in batches:
            result = eng.train_step(b)
            losses.append(list(result.losses))
            skipped.append(result.skipped)
        eng.flush_delayed_update()
        state = eng.gather_state()
    return losses, skipped, state


class TestOverflowSchedules:
    @settings(max_examples=4, **SETTINGS)
    @given(
        schedule=st.lists(st.booleans(), min_size=2, max_size=4),
        delayed=st.booleans(),
    )
    def test_pipeline_invariant_under_skip_schedule(self, schedule, delayed):
        serial = _scheduled_run(schedule, pipeline=False, delayed=delayed)
        piped = _scheduled_run(schedule, pipeline=True, delayed=delayed)
        assert piped[1] == schedule, "skip pattern must follow the schedule"
        assert serial[0] == piped[0], "losses diverged"
        assert serial[2].keys() == piped[2].keys()
        for name, ref in serial[2].items():
            assert np.array_equal(piped[2][name], ref), name


# --- delayed update vs NumPy reference ---------------------------------------
def _reference_delayed_run(spec: CalibSpec, lr: float = 5e-3):
    """One-step-delayed Adam trajectory, straight NumPy over the raw model.

    Mirrors :func:`repro.workloads.calibrate.build_engine`'s workload at
    ``world=1``: same seeded model, same corpus stream, fp32 masters cast
    back to the parameter dtype after every update — but the update for
    step ``t``'s gradients is applied at step ``t+1`` with
    ``lr * scale_delayed_lr``, and the final pending update is flushed
    after the last step.
    """
    model_cfg = TransformerConfig(
        num_layers=spec.layers,
        hidden_dim=spec.hidden,
        num_heads=4,
        vocab_size=spec.vocab,
        max_seq=spec.seq,
        activation_checkpointing=True,
    )
    model = GPTModel(model_cfg, rng=seeded_rng(0))
    data = per_rank_batches(
        MarkovCorpus(spec.vocab, seed=1),
        world_size=1,
        bsz_per_rank=spec.bsz_per_rank,
        seq=spec.seq,
        seed=2,
    )
    params = list(model.named_parameters())
    masters = {
        name: p.data.astype(np.float32).reshape(-1).copy()
        for name, p in params
    }
    mom = {name: np.zeros_like(m) for name, m in masters.items()}
    var = {name: np.zeros_like(m) for name, m in masters.items()}
    steps = {name: 0 for name, _ in params}

    def apply(grads):
        for name, p in params:
            steps[name] += 1
            adam_step(
                masters[name],
                grads[name],
                mom[name],
                var[name],
                step=steps[name],
                lr=lr * spec.scale_delayed_lr,
            )
            p.data = (
                masters[name].astype(p.data.dtype).reshape(p.data.shape)
            )

    losses = []
    pending = None
    for _ in range(spec.steps):
        ((x, y),) = next(data)
        loss = model(x, y)
        losses.append([float(loss)])
        model.backward(1.0)
        grads = {
            name: p.grad.astype(np.float32).reshape(-1).copy()
            for name, p in params
        }
        model.zero_grad()
        if pending is not None:
            apply(pending)
        pending = grads
    apply(pending)
    return losses, state_digest({name: p.data.copy() for name, p in params})


class TestDelayedMatchesReference:
    @settings(max_examples=4, **SETTINGS)
    @given(
        steps=st.integers(min_value=2, max_value=4),
        scale_delayed_lr=st.sampled_from([0.5, 0.9, 1.0, 1.37]),
        offload=st.sampled_from(["cpu", "nvme"]),
    )
    def test_trajectory_matches_numpy_reference(
        self, steps, scale_delayed_lr, offload
    ):
        spec = CalibSpec(
            world=1,
            steps=steps,
            stage=2,
            offload=offload,
            delayed_update=True,
            scale_delayed_lr=scale_delayed_lr,
        )
        ref_losses, ref_digest = _reference_delayed_run(spec)
        run = run_training(spec)
        assert run.losses == ref_losses
        assert run.state_digest == ref_digest

    def test_delayed_off_is_a_different_trajectory(self):
        """Sanity: the delayed schedule really is one step stale, not a
        relabeling of the eager one."""
        base = CalibSpec(world=1, steps=3, stage=2, offload="cpu")
        eager = run_training(base)
        delayed = run_training(
            CalibSpec(
                world=1, steps=3, stage=2, offload="cpu", delayed_update=True
            )
        )
        assert delayed.state_digest != eager.state_digest
