"""The BERT-style encoder: numerics, and training under ZeRO unchanged —
the 'arbitrary model architectures' claim of Sec. 5.3 exercised on a second
architecture, plus a dynamic-control-flow model exercising the prefetcher's
trace invalidation during real training (Sec. 6.2)."""

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, Module, TransformerConfig
from repro.nn.encoder import BertStyleEncoder, EncoderConfig
from repro.nn.transformer import TransformerBlock
from repro.optim import Adam
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2


def enc_config():
    return EncoderConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=37, max_seq=12
    )


def enc_factory():
    return BertStyleEncoder(enc_config(), rng=seeded_rng(3))


def mlm_batch(rng, vocab=37, bsz=2, seq=10):
    clean = rng.integers(1, vocab, size=(bsz, seq))
    return BertStyleEncoder.apply_masking(clean, rng, mask_token=0)


class TestEncoderNumerics:
    def test_bidirectional_attention(self, rng):
        """Changing a late token must affect early positions (no causality)."""
        model = enc_factory()
        ids, targets, mask = mlm_batch(rng)
        pos = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x1 = model.tok_emb(ids) + model.pos_emb(pos)
        h1 = model.block0(x1)
        ids2 = ids.copy()
        ids2[:, -1] = (ids2[:, -1] + 1) % 37
        x2 = model.tok_emb(ids2) + model.pos_emb(pos)
        h2 = model.block0(x2)
        assert not np.allclose(h1[:, 0], h2[:, 0])

    def test_loss_initially_near_log_vocab(self, rng):
        model = enc_factory()
        loss = model(*mlm_batch(rng))
        assert loss == pytest.approx(np.log(37), rel=0.15)

    def test_loss_only_over_masked_positions(self, rng):
        """Un-masked targets must not influence the loss."""
        model = enc_factory()
        ids, targets, mask = mlm_batch(rng)
        l1 = model(ids, targets, mask)
        corrupted_targets = targets.copy()
        corrupted_targets[~mask] = 1  # scramble only unmasked targets
        l2 = model(ids, corrupted_targets, mask)
        assert l1 == pytest.approx(l2, rel=1e-7)

    def test_gradcheck_spot(self, rng):
        model = enc_factory()
        for _, p in model.named_parameters():
            p.data = p.data.astype(np.float64)
        batch = mlm_batch(rng)
        model(*batch)
        model.backward(1.0)
        params = dict(model.named_parameters())
        for name in ("mlm.proj.weight", "block1.attn.qkv.weight", "tok_emb.weight"):
            p = params[name]
            idx = tuple(rng.integers(0, s) for s in p.data.shape)
            analytic = p.grad[idx]
            eps = 1e-6
            orig = p.data[idx]
            p.data[idx] = orig + eps
            lp = model(*batch)
            p.data[idx] = orig - eps
            lm = model(*batch)
            p.data[idx] = orig
            numeric = (lp - lm) / (2 * eps)
            assert analytic == pytest.approx(numeric, rel=2e-4, abs=1e-7), name

    def test_masking_helper(self, rng):
        clean = rng.integers(1, 37, size=(4, 16))
        corrupted, targets, mask = BertStyleEncoder.apply_masking(
            clean, rng, mask_token=0, mask_prob=0.5
        )
        assert np.array_equal(targets, clean)
        assert np.all(corrupted[mask] == 0)
        assert np.array_equal(corrupted[~mask], clean[~mask])
        assert mask.any()

    def test_training_reduces_loss(self, rng):
        model = enc_factory()
        opt = Adam(model.parameters(), lr=1e-2)
        batch = mlm_batch(rng, bsz=4)
        first = model(*batch)
        for _ in range(20):
            loss = model(*batch)
            model.backward(1.0)
            opt.step()
            opt.zero_grad()
        assert loss < first * 0.6


class TestEncoderUnderZero:
    def test_encoder_matches_ddp_with_nvme(self):
        """The whole engine works on an architecture it never saw —
        no registration, no refactoring (Sec. 5.3)."""
        rngs = spawn_rngs(5, WORLD)
        batches = [mlm_batch(r) for r in rngs]
        ddp = DDPTrainer(enc_factory, WORLD, lr=1e-2)
        ref = ddp.train_step(batches)
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=enc_factory, lr=1e-2) as eng:
            result = eng.train_step(batches)
            np.testing.assert_allclose(result.losses, ref, rtol=1e-5)
            state = eng.gather_state()
        for name, refv in ddp.state_dict().items():
            np.testing.assert_allclose(
                state[name], refv, rtol=1e-3, atol=2e-5, err_msg=name
            )


class LayerDropModel(Module):
    """GPT-like model that skips blocks per a step-dependent pattern —
    dynamic control flow that breaks any fixed operator trace."""

    def __init__(self):
        super().__init__()
        base = TransformerConfig(
            num_layers=3, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
        )
        self.inner = GPTModel(base, rng=seeded_rng(4))
        self.step = 0

    def active_blocks(self) -> list[int]:
        # alternate between using all blocks and skipping the middle one
        return [0, 1, 2] if self.step % 2 == 0 else [0, 2]

    def forward(self, ids, targets):
        m = self.inner
        bsz, seq = ids.shape
        pos = np.broadcast_to(np.arange(seq), (bsz, seq))
        x = m.tok_emb(ids) + m.pos_emb(pos)
        self._executed = self.active_blocks()
        for i in self._executed:
            x = m._modules[f"block{i}"](x)
        x = m.ln_f(x)
        return m.head(x, targets)

    def _backward(self, grad_loss):
        m = self.inner
        grad = m.head.backward(grad_loss)
        grad = m.ln_f.backward(grad)
        for i in reversed(self._executed):
            grad = m._modules[f"block{i}"].backward(grad)
        m.pos_emb.backward(grad)
        m.tok_emb.backward(grad)
        return None


class TestDynamicWorkflow:
    def test_prefetcher_survives_changing_graphs(self):
        """Sec. 6.2: 'appropriate prefetching even when the forward and
        backward propagation changes across iterations' — the trace
        invalidates, re-records, and training stays finite and correct."""
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
            loss_scale=1.0,
            prefetch_depth=2,
        )
        with ZeroInfinityEngine(
            cfg, model_factory=LayerDropModel, lr=1e-3
        ) as eng:
            rngs = spawn_rngs(9, WORLD)
            losses = []
            for step in range(4):
                eng.model.step = step
                batches = [
                    (r.integers(0, 32, (1, 8)), r.integers(0, 32, (1, 8)))
                    for r in rngs
                ]
                losses.append(eng.train_step(batches).mean_loss)
            assert all(np.isfinite(l) for l in losses)
            assert eng.prefetcher.invalidations > 0  # the graph did change
            assert eng.prefetcher.issued > 0  # and prefetching still ran
