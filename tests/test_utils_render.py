"""Table/chart rendering and RNG utilities."""

import numpy as np
import pytest

from repro.utils import Table, ascii_bar_chart, ascii_line_chart
from repro.utils.rng import seeded_rng, spawn_rngs


class TestTable:
    def test_alignment_and_structure(self):
        t = Table(["name", "value"], title="T")
        t.add_row(["a", 1.5])
        t.add_row(["long-name", 22.25])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # all rows share the same width
        assert len({len(l) for l in lines[1:]}) == 1

    def test_float_formatting(self):
        t = Table(["x"], float_fmt="{:.3f}")
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_wrong_cell_count_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_str_is_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_empty_table_renders_header(self):
        t = Table(["only"])
        assert "only" in t.render()


class TestBarChart:
    def test_scaling_to_max(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_and_negative_render_empty(self):
        out = ascii_bar_chart(["oom", "ok"], [0.0, 4.0])
        assert "oom" in out
        assert out.splitlines()[0].count("#") == 0

    def test_all_zero_no_crash(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "a" in out

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_title_and_value_fmt(self):
        out = ascii_bar_chart(["x"], [3.14159], title="pi", value_fmt="{:.1f}")
        assert out.startswith("pi")
        assert "3.1" in out


class TestLineChart:
    def test_markers_and_legend(self):
        x = [0, 1, 2, 3]
        out = ascii_line_chart(
            x, {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]}, height=8, width=20
        )
        assert "o=up" in out and "x=down" in out
        assert "y:" in out

    def test_constant_series_no_crash(self):
        out = ascii_line_chart([0, 1], {"flat": [5.0, 5.0]})
        assert "flat" in out

    def test_single_point(self):
        out = ascii_line_chart([0], {"p": [1.0]})
        assert "p" in out

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart([0], {})

    def test_collision_marker(self):
        # two series crossing at the same cell render '*'
        out = ascii_line_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [0.0, 1.0]}, height=6, width=10
        )
        assert "*" in out


class TestRng:
    def test_seeded_rng_reproducible(self):
        a = seeded_rng(42).random(5)
        b = seeded_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(seeded_rng(1).random(5), seeded_rng(2).random(5))

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        draws = [r.random(100) for r in rngs]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_reproducible(self):
        a = [r.random(4) for r in spawn_rngs(5, 2)]
        b = [r.random(4) for r in spawn_rngs(5, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
