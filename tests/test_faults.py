"""Unit tests for repro.faults and the per-layer resilience tiers.

The chaos *matrix* (full engine runs under fault schedules) lives in
``tests/test_chaos.py``; this file pins down the primitives it builds on:
the spec grammar, deterministic scheduling, the virtual clock, bounded
retries, checksum verify-on-fetch, atomic spool commits (the torn-write
regression), leak-proof pinned acquisition, and the offload fallbacks.
"""

import os

import numpy as np
import pytest

from repro.core.checkpoint_io import _atomic_json, _atomic_save
from repro.core.config import OffloadConfig, OffloadDevice
from repro.core.offload import InfinityOffloadEngine
from repro.faults import (
    FaultPlane,
    FaultRule,
    FaultUnrecoverable,
    InjectedExhaustion,
    InjectedIOError,
    InjectedTornWrite,
    RetryPolicy,
    format_faults,
    parse_faults,
    run_with_retries,
    use_faults,
    virtual_clock,
)
from repro.nvme.buffers import PinnedBudgetExceeded, PinnedBufferPool
from repro.nvme.store import ChunkedSwapper, TensorStore


class TestSpec:
    def test_parse_format_round_trip(self):
        spec = (
            "io_error@aio.read:times=2;"
            "bit_flip@aio.read:key=master;"
            "slow@aio.write:p=0.5,delay_us=500"
        )
        rules = parse_faults(spec)
        assert parse_faults(format_faults(rules)) == rules

    def test_parse_fields(self):
        (rule,) = parse_faults("io_error@aio.write:times=3,after=2,key=grad16")
        assert rule.kind == "io_error"
        assert rule.site == "aio.write"
        assert rule.times == 3
        assert rule.after == 2
        assert rule.key == "grad16"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("meteor@aio.read")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("io_error@gpu.hbm")

    def test_kind_site_compatibility(self):
        # exhaustion only makes sense where an allocation happens
        with pytest.raises(ValueError):
            parse_faults("pinned_exhaustion@aio.read")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="io_error", site="aio.read", p=1.5)


class TestPlane:
    def test_times_fires_exactly_n(self):
        plane = FaultPlane("io_error@aio.read:times=2")
        hits = 0
        for _ in range(10):
            try:
                plane.on_event("aio.read", key="k")
            except InjectedIOError:
                hits += 1
        assert hits == 2
        assert plane.injected == {"io_error@aio.read": 2}
        assert plane.injected_total == 2

    def test_at_fires_on_exact_occurrence(self):
        plane = FaultPlane("io_error@aio.read:at=3")
        outcomes = []
        for _ in range(6):
            try:
                plane.on_event("aio.read")
                outcomes.append(False)
            except InjectedIOError:
                outcomes.append(True)
        assert outcomes == [False, False, False, True, False, False]

    def test_key_filter_is_substring(self):
        plane = FaultPlane("io_error@aio.read:key=exp_avg")
        plane.on_event("aio.read", key="p3.r0.master")  # no match, no raise
        with pytest.raises(InjectedIOError):
            plane.on_event("aio.read", key="p3.r0.exp_avg")

    def test_rank_filter(self):
        plane = FaultPlane("straggler@rank.begin:rank=1,delay_us=777,times=1")
        before = virtual_clock().now_us()
        plane.on_event("rank.begin", rank=0)
        assert virtual_clock().now_us() == before
        plane.on_event("rank.begin", rank=1)
        assert virtual_clock().now_us() == before + 777

    def test_probability_schedule_is_seed_deterministic(self):
        def fires(seed):
            plane = FaultPlane("io_error@aio.read:p=0.5", seed=seed)
            out = []
            for _ in range(64):
                try:
                    plane.on_event("aio.read")
                    out.append(0)
                except InjectedIOError:
                    out.append(1)
            return out

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)
        assert 0 < sum(fires(7)) < 64  # actually probabilistic

    def test_bit_flip_corrupts_deterministic_byte(self):
        buf_a = np.zeros(256, dtype=np.uint8)
        buf_b = np.zeros(256, dtype=np.uint8)
        FaultPlane("bit_flip@aio.read").corrupt("aio.read", buf_a, key="k")
        FaultPlane("bit_flip@aio.read").corrupt("aio.read", buf_b, key="k")
        assert buf_a.sum() == 0xFF  # exactly one byte flipped
        assert np.array_equal(buf_a, buf_b)  # the same byte both times

    def test_exhaustion_is_a_memory_error(self):
        plane = FaultPlane("pinned_exhaustion@pool.acquire")
        with pytest.raises(MemoryError):
            plane.on_event("pool.acquire", nbytes=4096)

    def test_torn_write_is_an_os_error(self):
        plane = FaultPlane("torn_write@store.commit")
        with pytest.raises(OSError):
            plane.on_event("store.commit", key="x.bin")


class TestRetry:
    def test_succeeds_within_budget_on_virtual_clock(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        before = virtual_clock().now_us()
        policy = RetryPolicy(attempts=2, backoff_us=100, backoff_mult=2.0)
        assert run_with_retries("aio.read", flaky, policy=policy) == "ok"
        assert calls["n"] == 3
        # 100us after try 1, 200us after try 2 — virtual, never slept
        assert virtual_clock().now_us() == before + 300

    def test_exhaustion_reraises_the_original_error(self):
        def always():
            raise OSError("device gone")

        policy = RetryPolicy(attempts=2, backoff_us=1)
        with pytest.raises(OSError, match="device gone"):
            run_with_retries("aio.write", always, policy=policy)

    def test_non_retryable_errors_pass_straight_through(self):
        def boom():
            raise ValueError("logic bug")

        calls = []
        with pytest.raises(ValueError):
            run_with_retries(
                "aio.read",
                boom,
                policy=RetryPolicy(attempts=5, backoff_us=1),
                on_retry=lambda: calls.append(1),
            )
        assert calls == []


class TestStoreResilience:
    def test_injected_read_errors_healed_by_aio_retries(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            data = np.arange(1024, dtype=np.float32)
            store.write("k", data)
            with use_faults("io_error@aio.read:times=2"):
                out = store.read("k")
            assert np.array_equal(out, data)
            assert store.engine.stats.read_retries == 2

    def test_read_error_storm_escapes_after_budget(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            store.write("k", np.zeros(64, dtype=np.float32))
            with use_faults("io_error@aio.read:times=50"):
                with pytest.raises(InjectedIOError):
                    store.read("k")

    def test_bit_flip_healed_by_checksum_refetch(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            data = np.arange(4096, dtype=np.float32)
            store.write("k", data)
            with use_faults("bit_flip@aio.read:times=1"):
                out = store.read("k")
            assert np.array_equal(out, data)
            assert store.checksum_refetches == 1
            assert store.checksum_failures == 0

    def test_persistent_corruption_is_unrecoverable_and_attributed(
        self, tmp_path
    ):
        with TensorStore(str(tmp_path), refetch_retries=2) as store:
            store.write("p0.r0.master", np.ones(512, dtype=np.float32))
            with use_faults("bit_flip@aio.read:times=10"):
                with pytest.raises(FaultUnrecoverable) as exc:
                    store.read("p0.r0.master")
            assert exc.value.site == "store.read"
            assert exc.value.kind == "checksum"
            assert exc.value.attempts == 2
            assert store.checksum_failures == 1

    def test_checksum_can_be_disabled(self, tmp_path):
        with TensorStore(str(tmp_path), verify_checksums=False) as store:
            store.write("k", np.zeros(128, dtype=np.float32))
            with use_faults("bit_flip@aio.read:times=1"):
                out = store.read("k")  # corruption sails through
            assert out.view(np.uint8).sum() == 0xFF

    def test_torn_commit_keeps_old_record_readable(self, tmp_path):
        """Satellite regression: a writer killed mid-write must never tear.

        The injected torn write raises at the commit point — after the temp
        bytes, before the rename — exactly where a killed writer stops.
        """
        with TensorStore(str(tmp_path)) as store:
            v1 = np.full(256, 1.0, dtype=np.float32)
            v2 = np.full(256, 2.0, dtype=np.float32)
            store.write("k", v1)
            with use_faults("torn_write@store.commit:times=1"):
                with pytest.raises(InjectedTornWrite):
                    store.write("k", v2)
            # old bytes and old metadata both still describe v1
            assert np.array_equal(store.read("k"), v1)
            assert store.engine.stats.failed_commits == 1
            # the failed temp spool file was cleaned up
            leftovers = [f for f in os.listdir(tmp_path) if ".tmp" in f]
            assert leftovers == []
            # and the store heals: the next write commits normally
            store.write("k", v2)
            assert np.array_equal(store.read("k"), v2)

    def test_torn_commit_of_a_new_key_rolls_back_metadata(self, tmp_path):
        with TensorStore(str(tmp_path)) as store:
            with use_faults("torn_write@store.commit:times=1"):
                with pytest.raises(InjectedTornWrite):
                    store.write("fresh", np.zeros(64, dtype=np.float32))
            assert "fresh" not in store

    def test_non_atomic_mode_still_works(self, tmp_path):
        with TensorStore(str(tmp_path), atomic_commits=False) as store:
            data = np.arange(128, dtype=np.float16)
            store.write("k", data)
            assert np.array_equal(store.read("k"), data)


class TestPinnedPoolLeaks:
    def test_failed_fresh_acquire_leaks_nothing(self):
        """Satellite regression: a raise inside acquire must not leak the
        reservation — loop acquire/fail and assert the pool is unchanged."""
        pool = PinnedBufferPool(1 << 20)
        with use_faults("pinned_exhaustion@pool.acquire:times=8"):
            for _ in range(8):
                with pytest.raises(InjectedExhaustion):
                    pool.acquire(1024, np.float32)
        assert pool.live_bytes == 0
        assert pool.cached_bytes == 0
        # pool still fully usable at the full budget
        buf = pool.acquire((1 << 20) // 4, np.float32)
        buf.release()
        assert pool.live_bytes == 0

    def test_failed_reuse_acquire_restores_free_list(self):
        pool = PinnedBufferPool(1 << 20)
        pool.acquire(1024, np.float32).release()  # seed the free list
        cached_before = pool.cached_bytes
        with use_faults("pinned_exhaustion@pool.acquire:times=4"):
            for _ in range(4):
                with pytest.raises(InjectedExhaustion):
                    pool.acquire(1024, np.float32)
        assert pool.live_bytes == 0
        assert pool.cached_bytes == cached_before
        # the cached buffer is still reusable
        buf = pool.acquire(1024, np.float32)
        assert pool.stats.reuse_hits == 1
        buf.release()

    def test_organic_budget_exceeded_still_raises_and_leaks_nothing(self):
        pool = PinnedBufferPool(4096)
        with pytest.raises(PinnedBudgetExceeded):
            pool.acquire(8192, np.float32)
        assert pool.live_bytes == 0
        assert pool.cached_bytes == 0

    def test_interleaved_fail_and_success_conserves_bytes(self):
        pool = PinnedBufferPool(1 << 20)
        with use_faults("pinned_exhaustion@pool.acquire:p=0.5", seed=3):
            for _ in range(32):
                try:
                    pool.acquire(2048, np.float32).release()
                except MemoryError:
                    pass
        assert pool.live_bytes == 0


class TestChunkedSwapperDegradation:
    def test_pinned_exhaustion_degrades_to_sync_not_failure(self, tmp_path):
        pool = PinnedBufferPool(1 << 22)
        with TensorStore(str(tmp_path), pool=pool) as store:
            data = np.arange(10_000, dtype=np.float32)
            store.write("k", data)
            swapper = ChunkedSwapper(store, chunk_numel=1024, pool=pool)
            with use_faults("pinned_exhaustion@pool.acquire:times=1"):
                swapper.apply("k", lambda c: c + 1.0)
            assert swapper.sync_fallbacks == 1
            assert np.array_equal(store.read("k"), data + 1.0)
            assert pool.live_bytes == 0

    def test_healthy_apply_does_not_degrade(self, tmp_path):
        pool = PinnedBufferPool(1 << 22)
        with TensorStore(str(tmp_path), pool=pool) as store:
            data = np.arange(5_000, dtype=np.float32)
            store.write("k", data)
            swapper = ChunkedSwapper(store, chunk_numel=512, pool=pool)
            swapper.apply("k", lambda c: c * 2.0)
            assert swapper.sync_fallbacks == 0
            assert np.array_equal(store.read("k"), data * 2.0)


class TestOffloadFallbacks:
    def _nvme_engine(self, tmp_path):
        return InfinityOffloadEngine(
            OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
                nvme_dir=str(tmp_path),
            )
        )

    def test_failed_prefetch_falls_back_to_sync_read(self, tmp_path):
        with self._nvme_engine(tmp_path) as off:
            data = np.arange(2048, dtype=np.float32)
            off.stash("k", data, OffloadDevice.NVME, rank=0)
            # 3 fires: the prefetch read's first try + both retries fail;
            # the sync fallback read then runs with the rule exhausted
            with use_faults("io_error@aio.read:times=3"):
                assert off.prefetch("k", rank=0)
                out = off.fetch("k", rank=0)
            assert np.array_equal(out, data.reshape(out.shape))
            assert off.counters.prefetch_fallbacks == 1
            assert off.pool.live_bytes == 0

    def test_failed_prefetch_fetch_into_falls_back(self, tmp_path):
        with self._nvme_engine(tmp_path) as off:
            data = np.arange(1024, dtype=np.float32)
            off.stash("k", data, OffloadDevice.NVME, rank=0)
            dest = np.empty(1024, dtype=np.float32)
            with use_faults("io_error@aio.read:times=3"):
                assert off.prefetch("k", rank=0)
                off.fetch_into("k", dest, rank=0)
            assert np.array_equal(dest, data)
            assert off.counters.prefetch_fallbacks == 1

    def test_pinned_exhaustion_prefetch_stages_unpinned(self, tmp_path):
        with self._nvme_engine(tmp_path) as off:
            data = np.arange(512, dtype=np.float32)
            off.stash("k", data, OffloadDevice.NVME, rank=0)
            with use_faults("pinned_exhaustion@pool.acquire:times=1"):
                assert off.prefetch("k", rank=0)
                out = off.fetch("k", rank=0)
            assert np.array_equal(out, data.reshape(out.shape))
            assert off.counters.pinned_fallbacks == 1

    def test_overwrite_drains_failed_prefetch_without_raising(self, tmp_path):
        with self._nvme_engine(tmp_path) as off:
            v1 = np.zeros(256, dtype=np.float32)
            v2 = np.ones(256, dtype=np.float32)
            off.stash("k", v1, OffloadDevice.NVME, rank=0)
            with use_faults("io_error@aio.read:times=3"):
                assert off.prefetch("k", rank=0)
                off.stash("k", v2, OffloadDevice.NVME, rank=0)  # must not raise
            assert off.counters.abandoned_prefetch_errors == 1
            assert np.array_equal(off.fetch("k", rank=0), v2)
            assert off.pool.live_bytes == 0


class TestAtomicCheckpointWrites:
    def test_atomic_save_round_trip(self, tmp_path):
        path = str(tmp_path / "shard.npy")
        data = np.arange(64, dtype=np.float16)
        _atomic_save(path, data)
        assert np.array_equal(np.load(path), data)
        assert os.listdir(tmp_path) == ["shard.npy"]

    def test_killed_writer_preserves_previous_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "shard.npy")
        v1 = np.arange(64, dtype=np.float32)
        _atomic_save(path, v1)

        def dying_save(f, arr):
            f.write(b"\x93NUMPY-partial-garbage")
            raise KeyboardInterrupt  # the harshest writer death

        monkeypatch.setattr(np, "save", dying_save)
        with pytest.raises(KeyboardInterrupt):
            _atomic_save(path, v1 * 2)
        monkeypatch.undo()
        assert np.array_equal(np.load(path), v1)  # old bytes intact
        assert os.listdir(tmp_path) == ["shard.npy"]  # temp cleaned up

    def test_atomic_json_round_trip_and_rollback(self, tmp_path, monkeypatch):
        import json as json_mod

        path = str(tmp_path / "manifest.json")
        _atomic_json(path, {"a": 1})
        assert json_mod.load(open(path)) == {"a": 1}

        def dying_dump(obj, f, **kw):
            f.write("{tor")
            raise OSError("disk full")

        monkeypatch.setattr(json_mod, "dump", dying_dump)
        import repro.core.checkpoint_io as ckio

        monkeypatch.setattr(ckio.json, "dump", dying_dump)
        with pytest.raises(OSError):
            _atomic_json(path, {"a": 2})
        monkeypatch.undo()
        assert json_mod.load(open(path)) == {"a": 1}
        assert os.listdir(tmp_path) == ["manifest.json"]
