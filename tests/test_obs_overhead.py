"""Tier-1 guard for the tracer overhead contract.

A lighter twin of ``benchmarks/bench_obs_overhead.py``: the instrumented
hot paths ship always-on, so the no-op fast path must stay under 2% of a
step and active tracing under 10%.  Timing tests on shared CI boxes flake
under load, so a measurement over budget is retried up to twice — a real
regression fails all three attempts.
"""

from repro.obs.overhead import measure_overhead

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10
ATTEMPTS = 3


def test_overhead_within_budget():
    report = None
    for _ in range(ATTEMPTS):
        report = measure_overhead()
        if (
            report.disabled_overhead < DISABLED_BUDGET
            and report.enabled_overhead < ENABLED_BUDGET
        ):
            break
    assert report.spans_per_step > 100, report.render()
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
    # sanity on the model's ingredients
    assert 0 < report.noop_call_s < report.span_call_s
    assert report.step_disabled_s > 0
