"""repro.check: checker passes, engine integration, and the exception path.

Unit-drives each runtime pass (ZeroSan lifecycle, collective ordering, aio
races), then proves the two integration properties the subsystem exists
for: a sanitized mainline engine run is violation-free on every placement,
and a forward fault mid-module unwinds without leaking gather buffers.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.check import (
    CheckConfig,
    CheckContext,
    CheckViolation,
    context_from_config,
    get_checker,
    use_checker,
)
from repro.check.races import AioRaceDetector
from repro.check.zerosan import ZeroSan
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng

WORLD = 2
VOCAB = 32


def model_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def make_batches(seed=3, bsz=2, seq=8):
    rng = seeded_rng(seed)
    return [
        (
            rng.integers(0, VOCAB, size=(bsz, seq)),
            rng.integers(0, VOCAB, size=(bsz, seq)),
        )
        for _ in range(WORLD)
    ]


ALL_ON = CheckConfig(zerosan=True, collectives=True, races=True)


@pytest.fixture
def no_global_checker():
    """Clear any env-installed checker (``REPRO_CHECK=all`` runs) so tests
    of the installation machinery itself see a clean global slate."""
    from repro.check.runtime import install_checker

    previous = get_checker()
    install_checker(None)
    try:
        yield
    finally:
        install_checker(previous)


class _FakeParam:
    """The attribute surface ZeroSan reads off a Parameter."""

    _next = [0]

    def __init__(self, name):
        self.name = name
        self.unique_id = 900_000 + self._next[0]
        self._next[0] += 1


# --- config -----------------------------------------------------------------------


class TestCheckConfig:
    @pytest.mark.parametrize("spec", ["", "none", "off", "0"])
    def test_disabled_specs(self, spec):
        cfg = CheckConfig.from_spec(spec)
        assert cfg.enabled_passes == ()
        assert not cfg.any_runtime
        assert context_from_config(cfg) is None

    @pytest.mark.parametrize("spec", ["all", "1", "on"])
    def test_all_specs(self, spec):
        cfg = CheckConfig.from_spec(spec)
        assert cfg.enabled_passes == ("zerosan", "collectives", "races", "lint")

    def test_comma_list_and_roundtrip(self):
        cfg = CheckConfig.from_spec("zerosan, races")
        assert cfg.zerosan and cfg.races
        assert not cfg.collectives and not cfg.lint
        assert CheckConfig.from_spec(cfg.spec()) == cfg

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown check pass"):
            CheckConfig.from_spec("zerosan,typo")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="raise.*record"):
            CheckConfig(mode="explode")

    def test_lint_only_builds_no_runtime_context(self):
        assert context_from_config(CheckConfig(lint=True)) is None


class TestInstallation:
    def test_use_checker_scoped(self, no_global_checker):
        assert get_checker() is None
        with use_checker("zerosan") as ctx:
            assert get_checker() is ctx
            assert ctx.zerosan is not None and ctx.races is None
        assert get_checker() is None

    def test_env_install(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.check import get_checker;"
                "ctx = get_checker();"
                "print(ctx.config.spec(), ctx.config.mode)",
            ],
            env={
                **os.environ,
                "REPRO_CHECK": "zerosan,races",
                "REPRO_CHECK_MODE": "record",
                "PYTHONPATH": "src",
            },
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == ["zerosan,races", "record"]


# --- ZeroSan ----------------------------------------------------------------------


class TestZeroSan:
    def ctx(self, mode="record"):
        return CheckContext(CheckConfig(zerosan=True, mode=mode))

    def test_clean_lifecycle(self):
        ctx = self.ctx(mode="raise")
        san = ctx.zerosan
        p = _FakeParam("w")
        san.on_partition(p)
        san.on_gather_begin(p)
        san.on_gather_end(p)
        san.on_release(p)
        ctx.on_step_boundary()  # nothing open: no report

    def test_double_gather(self):
        ctx = self.ctx()
        p = _FakeParam("w")
        ctx.zerosan.on_gather_begin(p)
        ctx.zerosan.on_gather_end(p)
        ctx.zerosan.on_gather_begin(p)
        assert ctx.violation_counts() == {"double-gather": 1}

    def test_release_without_gather(self):
        ctx = self.ctx()
        ctx.zerosan.on_release(_FakeParam("w"))
        assert ctx.violation_counts() == {"release-without-gather": 1}

    def test_gather_leak_and_stuck_gather_at_boundary(self):
        ctx = self.ctx()
        leaked, stuck = _FakeParam("leaked"), _FakeParam("stuck")
        ctx.zerosan.on_gather_begin(leaked)
        ctx.zerosan.on_gather_end(leaked)
        ctx.zerosan.on_gather_begin(stuck)
        ctx.on_step_boundary([leaked.unique_id, stuck.unique_id])
        assert ctx.violation_counts() == {"gather-leak": 1, "stuck-gather": 1}
        # the sweep drains shadow state: a second boundary is clean
        ctx.violations.clear()
        ctx.on_step_boundary()
        assert ctx.violation_counts() == {}

    def test_boundary_scopes_to_param_ids(self):
        ctx = self.ctx()
        outside = _FakeParam("outside")
        ctx.zerosan.on_gather_begin(outside)
        ctx.zerosan.on_gather_end(outside)
        ctx.on_step_boundary([123456789])  # scope excludes it
        assert ctx.violation_counts() == {}

    def test_placeholder_tripwire(self):
        ctx = self.ctx()
        p = _FakeParam("blocks.0.w")
        arr = ctx.zerosan.placeholder(p, np.float16)
        assert arr.size == 0
        _ = arr + 1.0  # any ufunc fires the tripwire
        counts = ctx.violation_counts()
        assert counts == {"use-after-release": 1}
        assert "blocks.0.w" in str(ctx.violations[0])

    def test_placeholder_raises_in_raise_mode(self):
        ctx = self.ctx(mode="raise")
        arr = ctx.zerosan.placeholder(_FakeParam("w"), np.float32)
        with pytest.raises(CheckViolation, match="use-after-release"):
            np.add(arr, arr)

    def test_placeholder_survives_pickle(self):
        import pickle

        ctx = self.ctx()
        arr = ctx.zerosan.placeholder(_FakeParam("w"), np.float32)
        clone = pickle.loads(pickle.dumps(arr))
        assert clone.size == 0 and clone.dtype == np.float32

    def test_shared_view_write(self):
        ctx = self.ctx()
        owner = np.zeros(8, dtype=np.float32)
        view = owner[:4]
        ctx.zerosan.register_shared(owner, [view])
        ctx.zerosan.check_write(view)
        assert "shared-view-write" in ctx.violation_counts()
        ctx.violations.clear()
        ctx.zerosan.reclaim(owner)
        ctx.zerosan.check_write(view)  # reclaimed: no longer shared
        assert ctx.violation_counts() == {}

    def test_writable_shared_view_flagged(self):
        ctx = self.ctx()
        owner = np.zeros(8, dtype=np.float32)
        ctx.zerosan.register_shared(owner, [owner[:4]])  # writable view
        assert "writable-shared-view" in ctx.violation_counts()


# --- collective ordering ----------------------------------------------------------


class TestCollectiveOrdering:
    def ctx(self, mode="record"):
        return CheckContext(CheckConfig(collectives=True, mode=mode))

    def test_matching_sequences_clean(self):
        ctx = self.ctx(mode="raise")
        chk = ctx.collectives
        gid = chk.register_group(2)
        chk.record(gid, "allgather", ["float16", "float16"], [64, 64])
        chk.cross_check(gid)
        assert chk.pending(gid) == 0  # verified prefix truncated

    def test_shape_mismatch(self):
        ctx = self.ctx()
        chk = ctx.collectives
        gid = chk.register_group(2)
        chk.record(gid, "allgather", ["float16", "float16"], [64, 32])
        assert ctx.violation_counts() == {"collective-shape-mismatch": 1}

    def test_reorder_divergence(self):
        ctx = self.ctx()
        chk = ctx.collectives
        gid = chk.register_group(2)
        # rank 0: allgather then reduce_scatter; rank 1: the reverse
        chk.record_rank(gid, 0, "allgather", "float16", 64)
        chk.record_rank(gid, 0, "reduce_scatter", "float32", 128)
        chk.record_rank(gid, 1, "reduce_scatter", "float32", 128)
        chk.record_rank(gid, 1, "allgather", "float16", 64)
        chk.cross_check(gid)
        assert ctx.violation_counts() == {"collective-divergence": 1}
        assert ctx.violations[0].details["index"] == 0

    def test_missing_collective_divergence(self):
        ctx = self.ctx()
        chk = ctx.collectives
        gid = chk.register_group(2)
        chk.record_rank(gid, 0, "allgather", "float16", 64)
        chk.cross_check(gid)
        assert ctx.violation_counts() == {"collective-divergence": 1}

    def test_process_group_fingerprints_and_barrier(self):
        from repro.comm.group import ProcessGroup

        ctx = self.ctx(mode="raise")
        pg = ProcessGroup(2, check=ctx)
        shards = [np.ones(4, np.float32), np.ones(4, np.float32)]
        pg.allgather(shards)
        assert ctx.collectives.pending(pg._check_gid) == 1
        pg.barrier()  # cross-check point
        assert ctx.collectives.pending(pg._check_gid) == 0

    def test_process_group_shape_mismatch_reported(self):
        from repro.comm.group import ProcessGroup

        ctx = self.ctx()
        pg = ProcessGroup(2, check=ctx)
        try:
            pg.allgather([np.ones(4, np.float32), np.ones(3, np.float32)])
        except ValueError:
            pass  # the functional layer also rejects ragged shards
        assert "collective-shape-mismatch" in ctx.violation_counts()


# --- aio races --------------------------------------------------------------------


class TestAioRaces:
    def ctx(self, mode="record"):
        return CheckContext(CheckConfig(races=True, mode=mode))

    def test_double_submit_read(self):
        ctx = self.ctx()
        det = ctx.races
        buf = np.zeros(16, np.float32)
        det.on_submit_read(1, buf[:8])
        det.on_submit_read(2, buf[4:12])  # overlaps, no wait between
        assert ctx.violation_counts() == {"aio-double-submit": 1}

    def test_read_write_race(self):
        ctx = self.ctx()
        det = ctx.races
        buf = np.zeros(16, np.float32)
        det.on_submit_read(1, buf)
        det.on_submit_write(2, buf)
        assert ctx.violation_counts() == {"aio-race": 1}

    def test_wait_is_the_join_edge(self):
        ctx = self.ctx(mode="raise")
        det = ctx.races
        buf = np.zeros(16, np.float32)
        det.on_submit_read(1, buf)
        det.on_wait(1)
        det.on_submit_write(2, buf)  # ordered after the join: clean
        det.on_wait(2)
        assert det.inflight == 0

    def test_file_range_overlap(self):
        ctx = self.ctx()
        det = ctx.races
        a, b = np.zeros(8, np.float32), np.zeros(8, np.float32)
        det.on_submit_write(1, a, path="/spool/k.bin", file_lo=0, file_hi=32)
        det.on_submit_read(2, b, path="/spool/k.bin", file_lo=16, file_hi=48)
        assert ctx.violation_counts() == {"aio-race": 1}

    def test_disjoint_file_ranges_clean(self):
        ctx = self.ctx(mode="raise")
        det = ctx.races
        a, b = np.zeros(8, np.float32), np.zeros(8, np.float32)
        det.on_submit_write(1, a, path="/spool/k.bin", file_lo=0, file_hi=32)
        det.on_submit_write(2, b, path="/spool/k.bin", file_lo=32, file_hi=64)

    def test_buffer_release_while_inflight(self):
        ctx = self.ctx()
        det = ctx.races
        buf = np.zeros(16, np.float32)
        det.on_submit_write(1, buf[:8])
        det.on_buffer_release(buf)
        assert ctx.violation_counts() == {"buffer-release-while-inflight": 1}

    def test_completed_requests_pruned(self):
        ctx = self.ctx(mode="raise")
        det = ctx.races
        buf = np.zeros(16, np.float32)
        det.on_submit_read(1, buf, done=lambda: True)  # already landed
        det.on_submit_read(2, buf, done=lambda: False)  # ordered after it
        assert det.inflight == 1

    def test_aio_engine_emits_events(self, tmp_path):
        from repro.nvme.aio import AsyncIOEngine

        ctx = self.ctx(mode="raise")
        with AsyncIOEngine(num_threads=2, check=ctx) as eng:
            data = np.arange(64, dtype=np.float32)
            out = np.empty_like(data)
            path = str(tmp_path / "t.bin")
            eng.submit_write(path, data).wait()
            eng.submit_read(path, out).wait()
            assert ctx.races.inflight == 0
        np.testing.assert_array_equal(out, data)


# --- engine integration ----------------------------------------------------------


G, C, N = OffloadDevice.NONE, OffloadDevice.CPU, OffloadDevice.NVME


def checked_config(dev, **kw):
    return ZeroConfig(
        world_size=WORLD,
        offload=OffloadConfig(
            param_device=dev, grad_device=dev, optimizer_device=dev
        ),
        loss_scale=1.0,
        check=ALL_ON,  # raise mode: any violation fails the test
        **kw,
    )


class TestEngineSanitized:
    @pytest.mark.parametrize("dev", [G, C, N], ids=["gpu", "cpu", "nvme"])
    def test_mainline_run_is_violation_free(self, dev):
        with ZeroInfinityEngine(
            checked_config(dev), model_factory=model_factory
        ) as eng:
            ctx = eng.check_context
            assert ctx is not None and ctx.config.mode == "raise"
            for step in range(2):
                result = eng.train_step(make_batches(seed=step))
                assert not result.skipped
            # accumulation path, then a gather_state sweep
            eng.train_step_accumulated([make_batches(seed=8), make_batches(seed=9)])
            state = eng.gather_state()
            assert state
        assert ctx.violations == []

    def test_private_context_threaded_to_subsystems(self, no_global_checker):
        with ZeroInfinityEngine(
            checked_config(C), model_factory=model_factory
        ) as eng:
            ctx = eng.check_context
            assert get_checker() is None  # config-scoped, not global
            assert eng.comm._check is ctx
            assert eng.partitioner._check is ctx
            assert eng.offload._check is ctx

    def test_disabled_config_means_no_context(self, no_global_checker):
        cfg = ZeroConfig(world_size=WORLD, loss_scale=1.0)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            assert eng.check_context is None

    def test_global_checker_adopted_when_config_silent(self):
        cfg = ZeroConfig(world_size=WORLD, loss_scale=1.0)
        with use_checker(CheckConfig(zerosan=True, mode="raise")) as ctx:
            with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
                assert eng.check_context is ctx
                eng.train_step(make_batches())


class TestExceptionRelease:
    """Satellite: a fault mid-forward must not leak gather buffers."""

    def install_bomb(self, eng, fail_on_call=0):
        """Arm a pre-forward hook on a mid-model block that raises."""
        block = eng.model._modules["block1"]
        calls = [0]

        def boom(module, args):
            if calls[0] == fail_on_call:
                calls[0] += 1
                raise RuntimeError("injected fault")
            calls[0] += 1

        return block.register_forward_pre_hook(boom)

    def assert_step_clean(self, eng):
        for p in eng.model.parameters():
            if p.zero_meta is not None:
                assert p.state is PartitionState.PARTITIONED, p.name
            assert p.grad is None
        assert eng.coordinator._pending_grads == {}
        assert not eng.coordinator.accumulating

    @pytest.mark.parametrize("dev", [C, N], ids=["cpu", "nvme"])
    def test_forward_fault_unwinds_clean(self, dev):
        # the post-abort sweep records (never raises, so the injected fault
        # stays primary); a leaked gather would land in ctx.violations,
        # failing the final assertion below
        with ZeroInfinityEngine(
            checked_config(dev), model_factory=model_factory
        ) as eng:
            remove = self.install_bomb(eng)
            with pytest.raises(RuntimeError, match="injected fault"):
                eng.train_step(make_batches())
            remove()
            self.assert_step_clean(eng)
            result = eng.train_step(make_batches())  # engine still usable
            assert not result.skipped
        assert eng.check_context.violations == []

    def test_fault_on_second_rank_drops_banked_grads(self):
        # rank 0 completes fwd+bwd (gradients banked / bucketed) before the
        # fault hits rank 1's forward; abort must drop the partial reduction
        with ZeroInfinityEngine(
            checked_config(C), model_factory=model_factory
        ) as eng:
            remove = self.install_bomb(eng, fail_on_call=1)  # rank 1's fwd
            with pytest.raises(RuntimeError, match="injected fault"):
                eng.train_step(make_batches())
            remove()
            self.assert_step_clean(eng)
            eng.train_step(make_batches())
        assert eng.check_context.violations == []

    def test_abort_sweep_records_instead_of_raising(self):
        # a fault *during* a gather (e.g. a lost NVMe shard) leaves a
        # mid-gather shadow entry; the abort sweep must record the
        # stuck-gather rather than raise over the propagating root cause,
        # and must drop legitimately-ragged collective sequences unchecked
        ctx = CheckContext(
            CheckConfig(zerosan=True, collectives=True, mode="raise")
        )
        p = _FakeParam("w")
        ctx.zerosan.on_partition(p)
        ctx.zerosan.on_gather_begin(p)  # interrupted: no gather_end
        gid = ctx.collectives.register_group(2)
        ctx.collectives.record_rank(gid, 0, "allgather", "float16", 64)
        ctx.on_step_abort([p.unique_id])  # must not raise
        assert ctx.violation_counts() == {"stuck-gather": 1}
        assert ctx.collectives.pending(gid) == 0  # discarded, not diverged
        ctx.on_step_boundary([p.unique_id])  # slate is clean again

    def test_unchecked_engine_unwinds_too(self):
        cfg = ZeroConfig(world_size=WORLD, loss_scale=1.0)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            remove = self.install_bomb(eng)
            with pytest.raises(RuntimeError, match="injected fault"):
                eng.train_step(make_batches())
            remove()
            self.assert_step_clean(eng)
            eng.train_step(make_batches())


# --- a genuine leak is caught ------------------------------------------------------


class TestLeakDetection:
    def test_skipped_release_hook_reports_gather_leak(self):
        """Disabling a module's releases trips the boundary sweep."""
        cfg = ZeroConfig(
            world_size=WORLD,
            loss_scale=1.0,
            check=CheckConfig(zerosan=True, mode="record"),
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            coord = eng.coordinator
            block = eng.model._modules["block1"]
            # sabotage: the coordinator "forgets" to release block1's
            # submodules — the skipped-release-hook bug class
            sabotaged = {id(m) for m in block.modules()}
            orig = coord._release_module
            coord._release_module = (
                lambda m: None if id(m) in sabotaged else orig(m)
            )
            eng.train_step(make_batches())
            counts = eng.check_context.violation_counts()
            assert counts.get("gather-leak", 0) >= 1
