"""External parameters (Sec. 7.1.1): manual registration, access
interception, and activation introspection."""

import numpy as np
import pytest

from repro.comm.group import ProcessGroup
from repro.core.config import OffloadConfig, ZeroConfig, ZeroStage
from repro.core.coordinator import ParameterCoordinator
from repro.core.external import (
    install_activation_introspection,
    install_parameter_interception,
    register_external_parameter,
)
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn import GPTModel, Linear, Module, Parameter, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng
from repro.core import ZeroInfinityEngine, OffloadDevice


class ForeignConsumer(Module):
    """Uses a parameter it does not own — the external-parameter scenario."""

    def __init__(self, foreign: Parameter):
        super().__init__()
        self._foreign = foreign  # deliberately NOT registered as attribute

    def forward(self, x):
        return x @ self._foreign.data.T

    def _backward(self, g):
        # intentionally no grad handling: tests focus on gather behaviour
        return g @ self._foreign.data


class BiasReturner(Module):
    """Megatron-style: returns a parameter from forward (Sec. 7.1.1)."""

    def __init__(self, rng):
        super().__init__()
        self.lin = Linear(4, 4, rng=rng)

    def forward(self, x):
        return self.lin(x), self.lin._parameters["bias"]

    def _backward(self, g):
        return self.lin.backward(g)


def build_coordinator(model, world=2):
    cfg = ZeroConfig(world_size=world, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
    offload = InfinityOffloadEngine(OffloadConfig())
    part = ParameterPartitioner(world, offload=offload)
    for p in model.parameters():
        part.partition(p)
    comm = ProcessGroup(world)
    coord = ParameterCoordinator(
        model, cfg, partitioner=part, offload=offload, comm=comm
    )
    return coord, part, offload


class TestManualRegistration:
    def test_registered_param_gathers_with_consumer(self, rng):
        owner = Linear(4, 4, rng=seeded_rng(0))
        holder = ForeignConsumer(owner._parameters["weight"])
        root = Module()
        root.owner = owner
        root.holder = holder
        coord, part, offload = build_coordinator(root)
        register_external_parameter(coord, holder, owner._parameters["weight"])
        x = rng.standard_normal((2, 4)).astype(np.float32)
        y = holder(x)  # hooks gather the foreign weight
        assert y.shape == (2, 4)
        # and release it again after forward
        assert owner._parameters["weight"].state is PartitionState.PARTITIONED
        offload.close()

    def test_double_registration_is_idempotent(self):
        owner = Linear(4, 4, rng=seeded_rng(0))
        w = owner._parameters["weight"]
        holder = ForeignConsumer(w)
        root = Module()
        root.owner = owner
        root.holder = holder
        coord, part, offload = build_coordinator(root)
        register_external_parameter(coord, holder, w)
        register_external_parameter(coord, holder, w)
        assert len(coord.external_registry) == 1
        offload.close()


class TestAccessInterception:
    def test_touch_gathers_and_registers(self, rng):
        """'When a partitioned parameter is accessed, we do a blocking
        allgather ... register it ... and return the gathered parameter.'"""
        lin = Linear(4, 4, rng=seeded_rng(0))
        root = Module()
        root.lin = lin
        coord, part, offload = build_coordinator(root)
        coord.remove_hooks()  # simulate a code path the hooks don't cover
        install_parameter_interception(root, coord)
        w = lin.weight  # attribute access -> dict __getitem__ -> intercept
        assert w.state is PartitionState.AVAILABLE
        assert coord.external_registry.auto_registrations == 1
        assert w.data.shape == (4, 4)
        offload.close()

    def test_available_param_untouched(self, rng):
        lin = Linear(4, 4, rng=seeded_rng(0))
        root = Module()
        root.lin = lin
        cfg = ZeroConfig(world_size=2, stage=ZeroStage.PARAMETERS, loss_scale=1.0)
        offload = InfinityOffloadEngine(OffloadConfig())
        part = ParameterPartitioner(2, offload=offload)
        comm = ProcessGroup(2)
        coord = ParameterCoordinator(
            root, cfg, partitioner=part, offload=offload, comm=comm
        )
        install_parameter_interception(root, coord)
        _ = lin.weight  # never partitioned: no registration
        assert coord.external_registry.auto_registrations == 0
        offload.close()

    def test_interception_is_installed_once(self, rng):
        from repro.core.external import InterceptingParameterDict

        lin = Linear(4, 4, rng=seeded_rng(0))
        root = Module()
        root.lin = lin
        coord, part, offload = build_coordinator(root)
        install_parameter_interception(root, coord)
        first = lin._parameters
        install_parameter_interception(root, coord)
        assert lin._parameters is first
        assert isinstance(first, InterceptingParameterDict)
        offload.close()


class TestActivationIntrospection:
    def test_returned_parameter_detected(self, rng):
        mod = BiasReturner(seeded_rng(0))
        root = Module()
        root.mod = mod
        coord, part, offload = build_coordinator(root)
        install_activation_introspection(root, coord)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        out, bias = mod(x)
        assert isinstance(bias, Parameter)
        assert bias.state is PartitionState.AVAILABLE  # gathered on detection
        assert coord.external_registry.auto_registrations >= 1
        offload.close()


class TestTiedWeightsEndToEnd:
    def test_gpt_tied_embedding_trains_with_zero3(self):
        """The GPT tied embedding is the paper's canonical external
        parameter; training must handle its cross-module gradient."""

        def factory():
            cfg = TransformerConfig(
                num_layers=1,
                hidden_dim=16,
                num_heads=2,
                vocab_size=32,
                max_seq=8,
                tie_embeddings=True,
            )
            return GPTModel(cfg, rng=seeded_rng(3))

        zcfg = ZeroConfig(
            world_size=2,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
            loss_scale=1.0,
        )
        rng = seeded_rng(1)
        batches = [
            (rng.integers(0, 32, (2, 4)), rng.integers(0, 32, (2, 4)))
            for _ in range(2)
        ]
        with ZeroInfinityEngine(zcfg, model_factory=factory, lr=1e-2) as eng:
            # the tied weight appears once in the optimizer
            names = [n for n, _ in eng.model.named_parameters()]
            assert len(names) == len(set(names))
            r1 = eng.train_step(batches)
            r2 = eng.train_step(batches)
            assert np.isfinite(r1.mean_loss) and np.isfinite(r2.mean_loss)
            assert r2.mean_loss < r1.mean_loss  # tied grads actually applied
