"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng

#: Default wall-clock deadline for one ``@pytest.mark.mp`` test.  The mp
#: launcher has its own rendezvous timeout, but a bug in the launcher
#: itself (or a worker wedged before the barrier exists) would hang the
#: whole suite — the alarm turns that into a failed test.
MP_TEST_TIMEOUT_S = 180


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Arm a SIGALRM deadline around ``mp``-marked tests.

    ``signal.alarm`` timers are *not* inherited across ``fork`` (POSIX
    clears the pending alarm in the child), so rank worker processes
    never see the signal — only the parent test process can trip it.
    Override per test with ``@pytest.mark.mp(timeout=...)``.
    """
    marker = item.get_closest_marker("mp")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    deadline = int(marker.kwargs.get("timeout", MP_TEST_TIMEOUT_S))

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"mp test exceeded its {deadline}s deadline (likely a wedged"
            f" rank rendezvous; see repro.comm.launcher timeouts)"
        )

    prev_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(deadline)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, prev_handler)


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng(1234)


@pytest.fixture
def tiny_config() -> TransformerConfig:
    """A model small enough for exhaustive numeric checks."""
    return TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, max_seq=16
    )


@pytest.fixture
def tiny_model(tiny_config) -> GPTModel:
    return GPTModel(tiny_config, rng=seeded_rng(7))


def make_batch(rng, *, vocab=64, bsz=2, seq=8):
    ids = rng.integers(0, vocab, size=(bsz, seq))
    targets = rng.integers(0, vocab, size=(bsz, seq))
    return ids, targets


@pytest.fixture
def batch(rng):
    return make_batch(rng)
