"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng(1234)


@pytest.fixture
def tiny_config() -> TransformerConfig:
    """A model small enough for exhaustive numeric checks."""
    return TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, max_seq=16
    )


@pytest.fixture
def tiny_model(tiny_config) -> GPTModel:
    return GPTModel(tiny_config, rng=seeded_rng(7))


def make_batch(rng, *, vocab=64, bsz=2, seq=8):
    ids = rng.integers(0, vocab, size=(bsz, seq))
    targets = rng.integers(0, vocab, size=(bsz, seq))
    return ids, targets


@pytest.fixture
def batch(rng):
    return make_batch(rng)
