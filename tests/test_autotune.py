"""The placement planner reproduces Table 1's decisions."""

import pytest

from repro.core import OffloadDevice, ZeroInfinityEngine
from repro.core.autotune import recommend_config
from repro.hardware import dgx2_cluster
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs


@pytest.fixture(scope="module")
def one_node():
    return dgx2_cluster(1)


class TestTable1Decisions:
    """Each Table 1 single-node row's placement, rediscovered."""

    def test_10b_stays_on_gpu(self, one_node):
        plan = recommend_config(one_node, int(10e9), hidden_dim=4096)
        assert plan.param_device is OffloadDevice.NONE
        assert plan.optimizer_device is OffloadDevice.NONE

    def test_100b_params_cpu_optimizer_spills(self, one_node):
        """Table 1: 50-100B runs fp16 params on CPU, optimizer on NVMe."""
        plan = recommend_config(one_node, int(100e9), hidden_dim=8192)
        assert plan.param_device is OffloadDevice.CPU
        assert plan.optimizer_device in (OffloadDevice.CPU, OffloadDevice.NVME)

    def test_1t_all_nvme(self, one_node):
        plan = recommend_config(one_node, int(1e12), hidden_dim=25600)
        assert plan.param_device is OffloadDevice.NVME
        assert plan.optimizer_device is OffloadDevice.NVME

    def test_too_big_raises_with_limit(self, one_node):
        with pytest.raises(ValueError, match="nvme-capacity"):
            recommend_config(one_node, int(100e12))

    def test_bigger_cluster_relaxes_placement(self):
        small = recommend_config(dgx2_cluster(1), int(100e9), hidden_dim=8192)
        big = recommend_config(dgx2_cluster(16), int(100e9), hidden_dim=8192)
        order = [OffloadDevice.NONE, OffloadDevice.CPU, OffloadDevice.NVME]
        assert order.index(big.param_device) <= order.index(small.param_device)


class TestTilingAndBatch:
    def test_tiling_engages_for_huge_hidden(self, one_node):
        plan = recommend_config(one_node, int(1e12), hidden_dim=88 * 1024)
        assert plan.tile_factor > 1
        assert any("tiling" in n for n in plan.notes)

    def test_no_tiling_for_modest_hidden(self, one_node):
        plan = recommend_config(one_node, int(10e9), hidden_dim=4096)
        assert plan.tile_factor == 1

    def test_min_batch_grows_with_slower_tier(self, one_node):
        gpu_plan = recommend_config(one_node, int(10e9), hidden_dim=4096)
        nvme_plan = recommend_config(one_node, int(1e12), hidden_dim=25600)
        assert nvme_plan.min_batch_per_gpu >= gpu_plan.min_batch_per_gpu

    def test_expected_tflops_positive_and_bounded(self, one_node):
        plan = recommend_config(one_node, int(100e9), hidden_dim=8192)
        assert 5.0 < plan.expected_tflops_per_gpu < 70.0


class TestPlanMaterialisation:
    def test_to_zero_config_roundtrip(self, one_node):
        plan = recommend_config(one_node, int(1e12), hidden_dim=25600)
        cfg = plan.to_zero_config(world_size=4)
        assert cfg.offload.param_device is plan.param_device
        assert cfg.offload.optimizer_device is plan.optimizer_device
        assert cfg.tile_factor == plan.tile_factor

    def test_recommended_config_actually_trains(self, one_node):
        """End-to-end: plan -> engine -> step (scaled-down model)."""
        plan = recommend_config(one_node, int(1e12), hidden_dim=25600)
        cfg = plan.to_zero_config(world_size=2)
        # the placement transfers; the model is shrunk for test speed
        model_cfg = TransformerConfig(
            num_layers=2, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8,
            activation_checkpointing=True,
        )
        import dataclasses

        cfg = dataclasses.replace(cfg, loss_scale=1.0, tile_factor=1)
        with ZeroInfinityEngine(
            cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0)), lr=1e-3
        ) as eng:
            rngs = spawn_rngs(1, 2)
            b = [
                (r.integers(0, 32, (1, 8)), r.integers(0, 32, (1, 8)))
                for r in rngs
            ]
            result = eng.train_step(b)
            assert result.mean_loss > 0

    def test_invalid_params_raise(self, one_node):
        with pytest.raises(ValueError):
            recommend_config(one_node, 0)
