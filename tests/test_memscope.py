"""Memory observability: scope invariants, engine attribution, drift report.

Four layers of guarantees:

* **Scope unit invariants** — category and owner breakdowns sum exactly
  to the tier totals, frees clamp instead of corrupting, watermarks and
  Chrome counter tracks record what the run did.
* **Engine attribution matrix** — across ZeRO stages 2/3, world sizes
  1/2/4 and CPU/NVMe placement, the live breakdown stays exactly
  consistent and model states measure exactly Eq. 2's 20 bytes per
  (padded) parameter.
* **Unwind honesty** — overflow-skipped steps and exception-aborted
  steps leave no phantom bytes behind (the regression this PR's
  ``coordinator.on_abort`` routing exists to prevent).
* **Zero-interference** — a run with memscope enabled is bit-identical
  to a run without it.
"""

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
)
from repro.core.config import ZeroStage
from repro.hardware.memory import MemoryLedger
from repro.nn import GPTModel, TransformerConfig
from repro.obs.export import chrome_trace_events, telemetry_summary
from repro.obs.memreport import build_memreport
from repro.obs.memscope import (
    MemScope,
    attributed_empty,
    attributed_zeros,
    attribution_for_key,
    get_memscope,
    mem_alloc,
    render_memory_gantt,
    use_memscope,
)
from repro.obs.tracer import Tracer, use_tracer
from repro.utils.rng import seeded_rng


def tiny_model_cfg(**kw) -> TransformerConfig:
    base = dict(
        num_layers=2,
        hidden_dim=16,
        num_heads=2,
        vocab_size=32,
        max_seq=8,
        activation_checkpointing=True,
    )
    base.update(kw)
    return TransformerConfig(**base)


def tiny_batches(world: int, *, seed: int = 2):
    rng = seeded_rng(seed)
    return [
        (rng.integers(0, 32, (1, 8)), rng.integers(0, 32, (1, 8)))
        for _ in range(world)
    ]


def assert_consistent(scope: MemScope) -> None:
    """The sums-equal-totals invariant, for every tier the run touched."""
    for tier in scope.tiers():
        total = scope.tier_bytes(tier)
        assert sum(scope.breakdown(tier).values()) == total, tier
        assert sum(v for _, _, v in scope.owners(tier)) == total, tier
        peak = scope.peak_bytes(tier)
        assert sum(scope.peak_breakdown(tier).values()) == peak, tier
        assert peak >= total
    assert scope.underflows == 0


# --- scope unit invariants ---------------------------------------------------
class TestMemScopeUnit:
    def test_alloc_free_and_breakdown_sums(self):
        s = MemScope(enabled=True)
        s.alloc("gpu", 100, category="bucket", owner="b0")
        s.alloc("gpu", 50, category="grad", owner="p1")
        s.alloc("cpu", 30, category="optimizer_state", owner="p1")
        assert s.tier_bytes("gpu") == 150
        assert s.breakdown("gpu") == {"bucket": 100, "grad": 50}
        assert s.category_bytes("optimizer_state") == 30
        s.free("gpu", 50, category="grad", owner="p1")
        assert s.breakdown("gpu") == {"bucket": 100}
        assert s.peak_bytes("gpu") == 150
        assert sum(s.peak_breakdown("gpu").values()) == 150
        assert_consistent(s)

    def test_free_clamps_at_owner_and_counts_underflow(self):
        s = MemScope(enabled=True)
        s.alloc("gpu", 100, category="bucket", owner="b0")
        # wrong owner: nothing held there, so nothing is removed
        s.free("gpu", 100, category="bucket", owner="b1")
        assert s.tier_bytes("gpu") == 100
        assert s.underflows == 1
        # over-free on the right owner clamps to what it holds
        s.free("gpu", 150, category="bucket", owner="b0")
        assert s.tier_bytes("gpu") == 0
        assert s.underflows == 2
        assert s.breakdown("gpu") == {}
        assert sum(v for _, _, v in s.owners("gpu")) == 0

    def test_disabled_scope_records_nothing(self):
        s = MemScope(enabled=False)
        s.alloc("gpu", 100)
        s.free("gpu", 100)
        s.sample("x")
        assert s.op_count == 0
        assert s.tiers() == []
        assert s.timeline() == []

    def test_watermark_timeline_and_peak_label(self):
        s = MemScope(enabled=True)
        s.sample("start")
        s.alloc("gpu", 10)
        s.sample("after_small")
        s.alloc("gpu", 90)
        s.sample("after_big")
        tl = s.timeline()
        assert [w.label for w in tl] == ["start", "after_small", "after_big"]
        assert tl[0].tiers.get("gpu", 0) == 0
        assert tl[2].tiers["gpu"] == 100
        assert tl[0].ts_us <= tl[1].ts_us <= tl[2].ts_us
        # the peak bump happened after the "after_small" watermark
        assert s.peak_label("gpu") == "after_small"

    def test_sample_cap_drops_not_grows(self):
        s = MemScope(enabled=True, max_samples=3)
        for i in range(5):
            s.sample(f"s{i}")
        assert len(s.timeline()) == 3
        assert s.dropped_samples == 2

    def test_owner_alias_and_high_water(self):
        s = MemScope(enabled=True)
        s.alloc("gpu", 64, category="gather_buffer", owner="p3")
        s.free("gpu", 64, category="gather_buffer", owner="p3")
        s.alias("p3", "block0.attn.qkv.weight")
        assert s.owners("gpu") == []
        assert s.owner_high_water("gpu") == [
            ("block0.attn.qkv.weight", "gather_buffer", 64)
        ]

    def test_attribution_for_key(self):
        assert attribution_for_key("p3.r1.master") == ("optimizer_state", "p3")
        assert attribution_for_key("p3.r0.exp_avg") == ("optimizer_state", "p3")
        assert attribution_for_key("p12.r2.param16") == ("param_fp16", "p12")
        assert attribution_for_key("p0.r0.grad16") == ("grad", "p0")
        assert attribution_for_key("act.7.0") == ("activation_ckpt", "act.7")
        assert attribution_for_key("scratch") == ("workspace", "scratch")

    def test_attributed_alloc_helpers(self):
        with use_memscope() as s:
            a = attributed_empty(
                16, np.float32, tier="gpu", category="bucket", owner="b"
            )
            z = attributed_zeros(
                (2, 8), np.float32, tier="gpu", category="bucket", owner="b"
            )
        assert a.shape == (16,) and z.shape == (2, 8)
        assert not z.any()
        assert s.tier_bytes("gpu") == a.nbytes + z.nbytes
        assert s.breakdown("gpu") == {"bucket": a.nbytes + z.nbytes}

    def test_use_memscope_restores_previous(self):
        before = get_memscope()
        with use_memscope() as s:
            assert get_memscope() is s
            mem_alloc("gpu", 10)
        assert get_memscope() is before
        assert s.tier_bytes("gpu") == 10

    def test_gantt_renders_all_tiers(self):
        s = MemScope(enabled=True)
        s.alloc("gpu", 1 << 20)
        s.sample("a")
        s.alloc("cpu", 1 << 10)
        s.sample("b")
        art = render_memory_gantt(s)
        assert "gpu" in art and "cpu" in art
        assert "1.0 MiB" in art


# --- counter tracks ----------------------------------------------------------
class TestCounterTracks:
    def test_sample_emits_chrome_counter_track(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer), use_memscope() as s:
            s.alloc("gpu", 123, category="bucket", owner="b")
            s.sample("phase")
        counters = [
            e for e in chrome_trace_events(tracer) if e.get("ph") == "C"
        ]
        assert counters, "sample() should emit a counter event"
        ev = counters[-1]
        assert ev["name"] == "mem.tiers"
        assert ev["args"]["gpu"] == 123
        assert "tid" not in ev  # counter tracks are process-scoped
        # the summary table is about spans; counters stay out of it
        assert "mem.tiers" not in telemetry_summary(tracer)

    def test_engine_run_emits_pool_and_bucket_tracks(self, tmp_path):
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
                nvme_dir=str(tmp_path),
            ),
            loss_scale=1.0,
        )
        tracer = Tracer(enabled=True)
        with use_tracer(tracer), ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(2))
        names = {
            e["name"] for e in chrome_trace_events(tracer) if e.get("ph") == "C"
        }
        assert "nvme.pinned_pool_bytes" in names
        assert "bucket.fill_numel" in names


# --- engine attribution matrix -----------------------------------------------
def run_engine(
    *,
    stage: ZeroStage,
    world: int,
    device: OffloadDevice,
    nvme_dir=None,
    ledger=None,
    steps: int = 2,
) -> tuple[MemScope, ZeroInfinityEngine]:
    offload = OffloadConfig(
        # parameter offload is a stage-3 capability
        param_device=device if stage >= ZeroStage.PARAMETERS else OffloadDevice.NONE,
        grad_device=device,
        optimizer_device=device,
        nvme_dir=str(nvme_dir) if nvme_dir is not None else None,
    )
    cfg = ZeroConfig(
        world_size=world, stage=stage, offload=offload, loss_scale=1.0
    )
    with use_memscope() as scope, ZeroInfinityEngine(
        cfg,
        model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ledger=ledger,
    ) as eng:
        for _ in range(steps):
            eng.train_step(tiny_batches(world))
        report = eng.report()
    scope_copy = scope
    return scope_copy, report


class TestEngineAttribution:
    @pytest.mark.parametrize("stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS])
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_attribution_sums_exactly(self, stage, world):
        scope, report = run_engine(
            stage=stage, world=world, device=OffloadDevice.NONE
        )
        assert_consistent(scope)
        assert scope.tier_bytes("gpu") > 0
        # EngineReport mirrors the scope's peaks while it is live
        assert report.tier_peak_bytes["gpu"] == scope.peak_bytes("gpu")

    @pytest.mark.parametrize("stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS])
    def test_attribution_sums_with_nvme(self, stage, tmp_path):
        scope, report = run_engine(
            stage=stage,
            world=2,
            device=OffloadDevice.NVME,
            nvme_dir=tmp_path,
        )
        assert_consistent(scope)
        # engine close drains the store, so current nvme is 0 — the peak
        # proves the offloaded states were accounted while resident
        assert scope.peak_bytes("nvme") > 0
        assert scope.tier_bytes("nvme") == 0
        assert report.tier_peak_bytes["nvme"] == scope.peak_bytes("nvme")

    def test_model_states_measure_20_bytes_per_param(self):
        """Eq. 2 holds exactly: 4 (fp16 p) + 4 (fp16 g) + 12 (fp32 Adam)."""
        scope, _ = run_engine(
            stage=ZeroStage.PARAMETERS, world=2, device=OffloadDevice.NONE
        )
        param16 = scope.category_bytes("param_fp16")
        grad = scope.category_bytes("grad")
        opt = scope.category_bytes("optimizer_state")
        assert grad == param16
        assert opt == 3 * param16
        # everything lives on gpu in a no-offload run
        bd = scope.breakdown("gpu")
        assert bd["param_fp16"] == param16
        assert bd["optimizer_state"] == opt

    def test_memscope_agrees_with_memory_ledger(self):
        """Where both are configured they see the same offloaded bytes."""
        ledger = MemoryLedger(capacities={"cpu": 1 << 30, "gpu": 1 << 30})
        scope, _ = run_engine(
            stage=ZeroStage.PARAMETERS,
            world=2,
            device=OffloadDevice.CPU,
            ledger=ledger,
        )
        assert_consistent(scope)
        # the ledger only sees the offload stash; the scope additionally
        # sees categories fed elsewhere — compare the shared categories
        for (kind, cat), nbytes in ledger.attribution.items():
            assert scope.breakdown(kind).get(cat, 0) == nbytes, (kind, cat)
        assert ledger.underflows == 0


# --- unwind honesty ----------------------------------------------------------
class TestUnwind:
    def test_overflow_skip_leaves_no_phantom_bytes(self):
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(),
            loss_scale=1024.0,
        )
        with use_memscope() as scope, ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(2))
            baseline = {t: scope.tier_bytes(t) for t in scope.tiers()}
            forced = eng.optimizer.grads_overflowed
            eng.optimizer.grads_overflowed = lambda: True
            try:
                res = eng.train_step(tiny_batches(2))
            finally:
                eng.optimizer.grads_overflowed = forced
            assert res.skipped
            after = {t: scope.tier_bytes(t) for t in scope.tiers()}
        assert after == baseline
        assert "overflow_skip" in [w.label for w in scope.timeline()]
        assert_consistent(scope)

    def test_exception_unwind_discards_activation_checkpoints(self):
        cfg = ZeroConfig(
            world_size=1,
            offload=OffloadConfig(activation_device=OffloadDevice.CPU),
            loss_scale=1.0,
        )
        with use_memscope() as scope, ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(1))
            baseline = {t: scope.tier_bytes(t) for t in scope.tiers()}
            assert scope.breakdown("cpu").get("activation_ckpt", 0) == 0

            # raise *after* block0's checkpoint was saved to cpu: without
            # the abort-time discard those bytes would stay resident and
            # inflate every later watermark
            block1 = dict(eng.model.named_modules())["block1"]
            inner_fwd = block1.inner.forward

            def boom(x):
                raise RuntimeError("mid-forward fault")

            block1.inner.forward = boom
            with pytest.raises(RuntimeError, match="mid-forward fault"):
                eng.train_step(tiny_batches(1))
            block1.inner.forward = inner_fwd

            after = {t: scope.tier_bytes(t) for t in scope.tiers()}
            assert scope.breakdown("cpu").get("activation_ckpt", 0) == 0
            assert after == baseline
            labels = [w.label for w in scope.timeline()]
            assert "abort_step" in labels

            # and the engine still trains after the unwind
            res = eng.train_step(tiny_batches(1))
            assert not res.skipped
        assert_consistent(scope)


# --- zero interference -------------------------------------------------------
class TestBitIdentical:
    def test_enabled_scope_does_not_perturb_training(self):
        def final_state(with_scope: bool):
            cfg = ZeroConfig(
                world_size=2, offload=OffloadConfig(), loss_scale=1.0
            )
            import contextlib

            ctx = use_memscope() if with_scope else contextlib.nullcontext()
            with ctx, ZeroInfinityEngine(
                cfg,
                model_factory=lambda: GPTModel(
                    tiny_model_cfg(), rng=seeded_rng(0)
                ),
            ) as eng:
                losses = []
                for _ in range(3):
                    losses.append(eng.train_step(tiny_batches(2)).mean_loss)
                return losses, eng.gather_state()

        losses_off, state_off = final_state(False)
        losses_on, state_on = final_state(True)
        assert losses_off == losses_on
        assert state_off.keys() == state_on.keys()
        for name in state_off:
            np.testing.assert_array_equal(state_off[name], state_on[name])


# --- drift report ------------------------------------------------------------
class TestMemReport:
    def test_model_states_within_5pct_of_eq2(self):
        """Acceptance: measured model states match Eq. 2 within 5%."""
        cfg = ZeroConfig(world_size=2, offload=OffloadConfig(), loss_scale=1.0)
        with use_memscope() as scope, ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(2))
            report = build_memreport(eng, scope, bsz=2, seq=8, ci=1)
        row = report.drift_row("model_states (Eq. 2)")
        assert row is not None
        assert 0.95 <= row.ratio <= 1.05, row
        assert not row.flagged(report.tolerance)

    def test_render_shows_peaks_attribution_and_gantt(self, tmp_path):
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
                nvme_dir=str(tmp_path),
            ),
            loss_scale=1.0,
        )
        with use_memscope() as scope, ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(2))
            report = build_memreport(eng, scope, bsz=2, seq=8, ci=1)
        text = report.render()
        assert "Per-tier memory watermarks" in text
        assert "= total" in text
        assert "model_states (Eq. 2)" in text
        assert "memory gantt" in text
        # owner aliases resolved to parameter names
        assert any(
            "weight" in owner
            for rows in report.top_owners.values()
            for owner, _, _ in rows
        )

    def test_capacity_pressure_produces_recommendation(self):
        ledger = MemoryLedger(capacities={"gpu": 9 << 20})
        cfg = ZeroConfig(world_size=2, offload=OffloadConfig(), loss_scale=1.0)
        with use_memscope() as scope, ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
            ledger=ledger,
        ) as eng:
            eng.train_step(tiny_batches(2))
            # force pressure regardless of how small the model is
            scope.alloc("gpu", 8 << 20, category="optimizer_state", owner="p0")
            report = build_memreport(eng, scope, bsz=2, seq=8, ci=1)
            scope.free("gpu", 8 << 20, category="optimizer_state", owner="p0")
        joined = "\n".join(report.recommendations)
        assert "capacity" in joined
        assert "optimizer" in joined


# --- memory-ledger watermark/attribution API ---------------------------------
class TestMemoryLedgerAttribution:
    def test_ledger_attribution_and_watermarks(self):
        from repro.tensor.device import CPU, gpu

        ledger = MemoryLedger(capacities={"gpu": 1000, "cpu": 1000})
        ledger.allocate(gpu(0), 100, category="bucket", owner="b0")
        ledger.allocate(CPU, 40, category="optimizer_state", owner="p0")
        assert ledger.attribution_by_kind("gpu") == {"bucket": 100}
        wm = ledger.watermark("mid")
        assert wm["gpu"] == 100 and wm["cpu"] == 40
        ledger.free(gpu(0), 60, category="bucket", owner="b0")
        assert ledger.attribution_by_kind("gpu") == {"bucket": 40}
        # freeing under a different tag than the alloc clamps the
        # attribution decrement and counts the mismatch
        ledger.free(gpu(0), 40, category="workspace", owner="b0")
        assert ledger.attribution_by_kind("gpu") == {"bucket": 40}
        assert ledger.underflows == 1
        assert ledger.used(gpu(0)) == 0
        assert [label for label, _ in ledger.watermarks] == ["mid"]


# --- CLI ---------------------------------------------------------------------
class TestCli:
    def test_memreport_command_prints_report(self, capsys):
        from repro.cli import main

        rc = main(
            ["memreport", "--world", "1", "--steps", "1", "--hidden", "32"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Per-tier memory watermarks" in out
        assert "= total" in out
        assert "model_states (Eq. 2)" in out

    def test_train_demo_memreport_flag(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "train-demo",
                "--world",
                "1",
                "--steps",
                "1",
                "--hidden",
                "32",
                "--offload",
                "cpu",
                "--memreport",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Per-tier memory watermarks" in out
