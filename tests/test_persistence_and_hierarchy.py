"""Parameter persistence threshold and hierarchical collective costs."""

import numpy as np
import pytest

from repro.comm.cost import HierarchicalCostModel, ring_allgather_time
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.hardware.devices import INFINIBAND_800G, NVLINK_V100
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng, spawn_rngs
from repro.utils.units import GB

WORLD = 2
VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (1, 8)), r.integers(0, VOCAB, (1, 8))) for r in rngs
    ]


def engine_with_threshold(threshold, **off):
    cfg = ZeroConfig(
        world_size=WORLD,
        stage=ZeroStage.PARAMETERS,
        offload=OffloadConfig(**off),
        loss_scale=1.0,
        param_persistence_threshold_numel=threshold,
    )
    return ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-2)


class TestPersistenceThreshold:
    def test_small_params_stay_resident(self):
        with engine_with_threshold(64) as eng:
            for name, p in eng.model.named_parameters():
                if p.full_numel <= 64:
                    assert p.state is PartitionState.AVAILABLE, name
                    assert p.zero_meta is None
                else:
                    assert p.state is PartitionState.PARTITIONED, name

    def test_zero_threshold_partitions_everything(self):
        with engine_with_threshold(0) as eng:
            assert all(
                p.state is PartitionState.PARTITIONED
                for p in eng.model.parameters()
            )

    def test_training_equivalent_to_unthresholded(self):
        bs = [batches(s) for s in range(3)]
        losses = {}
        for threshold in (0, 64):
            with engine_with_threshold(threshold) as eng:
                losses[threshold] = [eng.train_step(b).mean_loss for b in bs]
        np.testing.assert_allclose(losses[0], losses[64], rtol=1e-5)

    def test_fewer_gathers_with_persistence(self):
        counts = {}
        for threshold in (0, 64):
            with engine_with_threshold(threshold) as eng:
                eng.train_step(batches())
                counts[threshold] = eng.report().gathers
        assert counts[64] < counts[0]

    def test_persistent_params_updated_by_optimizer(self):
        with engine_with_threshold(1 << 30) as eng:  # everything persistent
            assert all(p.zero_meta is None for p in eng.model.parameters())
            before = {n: p.data.copy() for n, p in eng.model.named_parameters()}
            eng.train_step(batches())
            changed = [
                n
                for n, p in eng.model.named_parameters()
                if not np.array_equal(before[n], p.data)
            ]
            assert changed  # updates landed despite no partitioning

    def test_works_with_nvme_offload(self):
        with engine_with_threshold(
            64,
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ) as eng:
            r = eng.train_step(batches())
            assert np.isfinite(r.mean_loss)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ZeroConfig(world_size=2, param_persistence_threshold_numel=-1)

    def test_persistence_composes_with_accumulation(self):
        """Persistent params + gradient accumulation: two rounds of bsz 1
        equal one round of bsz 2 even with mixed partitioning."""
        rounds = [batches(s) for s in (0, 1)]
        merged = [
            (
                np.concatenate([rounds[0][r][0], rounds[1][r][0]]),
                np.concatenate([rounds[0][r][1], rounds[1][r][1]]),
            )
            for r in range(WORLD)
        ]
        with engine_with_threshold(64) as a:
            a.train_step_accumulated(rounds)
            sa = a.gather_state()
        with engine_with_threshold(64) as b:
            b.train_step(merged)
            sb = b.gather_state()
        for name in sa:
            np.testing.assert_allclose(
                sa[name], sb[name], rtol=1e-3, atol=5e-5, err_msg=name
            )


class TestHierarchicalCollectives:
    def _model(self, nodes):
        return HierarchicalCostModel(
            intra=NVLINK_V100,
            inter=INFINIBAND_800G,
            gpus_per_node=16,
            nodes=nodes,
        )

    def test_single_node_matches_intra_ring(self):
        m = self._model(1)
        assert m.allgather(1 * GB) == ring_allgather_time(1 * GB, 16, NVLINK_V100)

    def test_hierarchical_beats_flat_on_small_messages(self):
        """The hierarchy's win is latency: O(n + g) vs O(n*g) alpha terms.

        ZeRO-3 issues an allgather per layer, often a few MB — exactly the
        regime where a 512-member flat ring is latency-bound.
        """
        m = self._model(32)  # 512 GPUs
        small = 4 * 1024 * 1024
        assert m.allgather(small) < m.flat_allgather(small)

    def test_flat_ring_competitive_on_huge_messages(self):
        """For bandwidth-bound payloads the flat ring is near-optimal; the
        hierarchy pays its second phase and should not win by much."""
        m = self._model(8)
        big = 8 * GB
        assert m.flat_allgather(big) < 2.0 * m.allgather(big)

    def test_allreduce_twice_allgather(self):
        m = self._model(4)
        assert m.allreduce(1 * GB) == pytest.approx(2 * m.allgather(1 * GB))

    def test_cost_grows_with_nodes_sublinearly(self):
        """Inter-node ring term saturates at payload/inter_bw."""
        t4 = self._model(4).allgather(1 * GB)
        t64 = self._model(64).allgather(1 * GB)
        assert t64 > t4
        assert t64 < 4 * t4  # far from linear in node count

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            HierarchicalCostModel(
                intra=NVLINK_V100, inter=INFINIBAND_800G, gpus_per_node=0, nodes=2
            )
