"""The static SPMD schedule verifier: IR, model checking, extraction.

Four layers of coverage:

* IR and builder invariants (kind validation, per-rank append rules);
* the model-checking passes over hand-built schedules — one test per
  verdict shape (clean, divergence-at-index, length mismatch, mixed
  rendezvous, chunk seq skew, REPLAY/TERMINAL abort edges, lock spans);
* symbolic extraction of the real engine — mp schedules verify clean,
  loop↔mp collective accounting agrees, nvme runs record chunk + lock
  events;
* cross-validation against the runtime failure protocol: the same
  mutation that makes ``tests/test_backend_equivalence.py``'s divergent
  worker raise ``CommDivergence`` at runtime must be flagged by the
  static verifier, and the clean matrix must be silent.
"""

import subprocess
import sys
import threading

import pytest

from repro.check.static import (
    STATIC_FINDING_KINDS,
    ScheduleBuilder,
    ScheduleEvent,
    ScheduleSpec,
    StaticFinding,
    extract_schedule,
    verify_schedule,
)
from repro.check.static.driver import run_static_check
from repro.check.static.extract import extract_pair
from repro.check.static.record import (
    ScheduleRecorder,
    get_static_recorder,
    install_static_recorder,
    use_static_recorder,
)
from repro.check.static.verify import (
    check_collective_matching,
    check_deadlock_freedom,
    check_lock_discipline,
)


def kinds_of(findings):
    return {f.kind for f in findings}


# --- IR and builder ----------------------------------------------------------
class TestIR:
    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule event kind"):
            ScheduleEvent("teleport")

    def test_unknown_finding_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown static finding kind"):
            StaticFinding("static-nonsense", "msg")

    def test_builder_none_rank_broadcasts(self):
        ir = ScheduleBuilder(3).collective(None, "allgather").build()
        assert ir.world == 3
        assert all(len(r.events) == 1 for r in ir.ranks)

    def test_builder_single_rank_targets_one_stream(self):
        ir = ScheduleBuilder(2).barrier(rank=1).build()
        assert [len(r.events) for r in ir.ranks] == [0, 1]

    def test_op_counts_exclude_transport_ops(self):
        b = ScheduleBuilder(1)
        b.collective(None, "allgather")
        b.collective(None, "exchange")
        b.collective(None, "step_sync")
        assert b.build().op_counts() == {"allgather": 1}

    def test_world_rank_count_must_agree(self):
        from repro.check.static.ir import ScheduleIR

        with pytest.raises(ValueError, match="rank schedules supplied"):
            ScheduleIR(world=2, ranks=())


# --- model checking ----------------------------------------------------------
class TestCollectiveMatching:
    def test_symmetric_schedule_is_clean(self):
        b = ScheduleBuilder(4)
        b.collective(None, "allgather", "float32", 64)
        b.collective(None, "reduce_scatter", "float32", 8)
        b.barrier()
        assert verify_schedule(b.build()) == []

    def test_divergence_reports_rank_and_index(self):
        b = ScheduleBuilder(2)
        b.collective(None, "allgather", "float32", 64)
        b.collective(0, "allgather", "float32", 64)
        b.collective(1, "broadcast", "float32", 64)
        (f,) = check_collective_matching(b.build())
        assert f.kind == "static-collective-divergence"
        assert (f.rank, f.index) == (1, 1)
        assert "rank 1 diverges from rank 0 at collective #1" in f.message

    def test_length_mismatch_names_the_waiting_rank(self):
        b = ScheduleBuilder(2)
        b.collective(None, "allgather", "float32", 4)
        b.collective(0, "allgather", "float32", 4)
        (f,) = check_collective_matching(b.build())
        assert f.kind == "static-collective-divergence"
        assert "waits forever" in f.message

    def test_ragged_payload_is_shape_mismatch(self):
        b = ScheduleBuilder(2)
        b.call("allgather", [("float32", 8), ("float32", 12)])
        (f,) = check_collective_matching(b.build())
        assert f.kind == "static-collective-shape-mismatch"
        assert f.index == 0


class TestDeadlockFreedom:
    def test_matched_rendezvous_are_clean(self):
        b = ScheduleBuilder(2)
        b.chunk(None, seq=0, nbytes=64)
        b.barrier()
        b.chunk(None, seq=1, nbytes=0)
        assert check_deadlock_freedom(b.build()) == []

    def test_conditional_barrier_deadlocks(self):
        b = ScheduleBuilder(2)
        b.barrier()
        b.barrier(rank=0)
        (f,) = check_deadlock_freedom(b.build())
        assert f.kind == "static-deadlock"
        assert "no matching rendezvous" in f.message

    def test_mixed_rendezvous_kinds_deadlock(self):
        b = ScheduleBuilder(2)
        b.barrier(rank=0)
        b.chunk(1, seq=0)
        (f,) = check_deadlock_freedom(b.build())
        assert f.kind == "static-deadlock"
        assert "incompatible rendezvous" in f.message

    def test_chunk_seq_skew_deadlocks(self):
        b = ScheduleBuilder(2)
        b.chunk(0, seq=0)
        b.chunk(1, seq=5)
        (f,) = check_deadlock_freedom(b.build())
        assert f.kind == "static-deadlock"
        assert "sequence numbers" in f.message

    def test_replay_abort_with_full_recovery_is_clean(self):
        b = ScheduleBuilder(2)
        b.chunk(None, seq=0)
        b.abort(0)  # REPLAY: rank 0 trips a recoverable fault
        b.chunk(1, seq=1)  # rank 1's in-flight wait is broken by the abort
        b.recover()  # ...and both ranks meet at the epoch bump
        assert check_deadlock_freedom(b.build()) == []

    def test_replay_abort_without_peer_recovery_deadlocks(self):
        b = ScheduleBuilder(2)
        b.abort(0)
        b.recover(0)  # rank 1 never acknowledges the recovery epoch
        (f,) = check_deadlock_freedom(b.build())
        assert f.kind == "static-deadlock"
        assert "never call" in f.message and "recover_after_abort" in f.message

    def test_terminal_abort_fails_fast_without_deadlock(self):
        b = ScheduleBuilder(2)
        b.chunk(None, seq=0)
        b.abort(0, terminal=True)
        b.chunk(1, seq=1)  # rank 1 would wait here, but the run tears down
        assert check_deadlock_freedom(b.build()) == []


class TestLockDiscipline:
    def test_release_before_rendezvous_is_clean(self):
        b = ScheduleBuilder(2)
        b.lock_acquire(None, "pinned-pool")
        b.collective(None, "allgather", "float32", 4)  # local: not blocking
        b.lock_release(None, "pinned-pool")
        b.barrier()
        assert check_lock_discipline(b.build()) == []

    def test_rendezvous_under_lock_is_flagged(self):
        b = ScheduleBuilder(2)
        b.lock_acquire(0, "bucket")
        b.chunk(None, seq=0)
        b.lock_release(0, "bucket")
        (f,) = check_lock_discipline(b.build())
        assert f.kind == "static-lock-rendezvous"
        assert f.rank == 0 and "bucket" in f.message


# --- the recorder seam -------------------------------------------------------
class TestRecorder:
    def test_install_and_context_manager_restore(self):
        assert get_static_recorder() is None
        rec = ScheduleRecorder(1)
        with use_static_recorder(rec):
            assert get_static_recorder() is rec
            inner = ScheduleRecorder(1)
            prev = install_static_recorder(inner)
            assert prev is rec
            install_static_recorder(prev)
        assert get_static_recorder() is None

    def test_rank_none_broadcasts_to_all_streams(self):
        rec = ScheduleRecorder(3, rank=None)
        rec.on_collective("allgather", ["float32"], [4])
        ir = rec.build_ir(mode="loop")
        assert all(len(r.events) == 1 for r in ir.ranks)

    def test_single_rank_recorder_owns_one_stream(self):
        rec = ScheduleRecorder(2, rank=1)
        rec.on_barrier()
        assert len(rec.rank_schedule(1).events) == 1
        assert len(rec.rank_schedule(0).events) == 0

    def test_events_from_worker_threads_are_dropped(self):
        # the aio engine's worker threads touch the pool; their lock spans
        # are a documented incompleteness, not part of the rank schedule
        rec = ScheduleRecorder(1)
        t = threading.Thread(target=rec.on_barrier)
        t.start()
        t.join()
        assert len(rec.rank_schedule(0).events) == 0
        rec.on_barrier()
        assert len(rec.rank_schedule(0).events) == 1


# --- symbolic extraction of the real engine ----------------------------------
class TestExtraction:
    def test_mp_schedule_verifies_clean(self):
        ir = extract_schedule(ScheduleSpec(world=2, stage=3))
        assert ir.mode == "mp" and ir.world == 2
        assert verify_schedule(ir) == []
        assert ir.ranks[0].collectives(), "extraction produced no collectives"

    def test_mp_schedule_records_chunk_and_lock_events(self):
        ir = extract_schedule(ScheduleSpec(world=2, stage=3, offload="nvme"))
        kinds = {e.kind for e in ir.ranks[0].events}
        assert "chunk" in kinds, "exchange chunk rendezvous not modeled"
        assert "lock_acquire" in kinds, "pinned-pool span not recorded"

    def test_loop_and_mp_collective_accounting_agree(self):
        loop_ir, mp_ir = extract_pair(ScheduleSpec(world=2, stage=3))
        assert loop_ir.op_counts() == mp_ir.op_counts()

    @pytest.mark.parametrize("stage", [2, 3])
    def test_single_rank_world_verifies_clean(self, stage):
        ir = extract_schedule(ScheduleSpec(world=1, stage=stage))
        assert verify_schedule(ir) == []

    def test_extraction_leaves_no_recorder_installed(self):
        extract_schedule(ScheduleSpec(world=1, stage=3))
        assert get_static_recorder() is None


# --- cross-validation with the runtime failure protocol ----------------------
class TestCrossValidation:
    def test_divergent_worker_mutation_is_flagged_statically(self):
        # the exact mutation tests/test_backend_equivalence.py injects to
        # make the runtime transport raise CommDivergence: rank 1 folds an
        # extra allgather fingerprint before the step
        def mutate(backend, rank):
            if rank == 1:
                backend.note_fingerprint("allgather", ["float32"], [16])

        ir = extract_schedule(ScheduleSpec(world=2, stage=3), mutate=mutate)
        findings = verify_schedule(ir)
        assert "static-collective-divergence" in kinds_of(findings)
        diverge = next(
            f for f in findings if f.kind == "static-collective-divergence"
        )
        assert diverge.rank == 1 and diverge.index == 0

    def test_world4_divergent_rank_is_attributed(self):
        def mutate(backend, rank):
            if rank == 3:
                backend.note_fingerprint("broadcast", ["float32"], [8])

        ir = extract_schedule(ScheduleSpec(world=4, stage=2), mutate=mutate)
        findings = verify_schedule(ir)
        assert any(
            f.kind == "static-collective-divergence" and f.rank == 3
            for f in findings
        )

    @pytest.mark.parametrize("stage", [2, 3])
    @pytest.mark.parametrize("world", [2, 4])
    def test_clean_matrix_is_silent(self, stage, world):
        ir = extract_schedule(ScheduleSpec(world=world, stage=stage))
        assert verify_schedule(ir) == []


# --- the driver --------------------------------------------------------------
class TestDriver:
    def test_small_matrix_report_proves_and_renders(self):
        matrix = [
            ScheduleSpec(world=2, stage=3, backend="loop"),
            ScheduleSpec(world=2, stage=3, backend="mp"),
        ]
        report = run_static_check(matrix, lint=False)
        assert report.ok
        assert len(report.verdicts) == 2
        rendered = report.render()
        assert "Static SPMD schedule verification" in rendered
        assert "proved" in rendered
        assert report.wall_s > 0

    def test_finding_kinds_stay_in_the_static_namespace(self):
        b = ScheduleBuilder(2)
        b.collective(0, "allgather", "float32", 4)
        b.collective(1, "broadcast", "float32", 4)
        b.barrier(rank=0)
        for f in verify_schedule(b.build()):
            assert f.kind in STATIC_FINDING_KINDS


# --- import hygiene ----------------------------------------------------------
@pytest.mark.parametrize(
    "order",
    ["import repro.check; import repro.comm", "import repro.comm; import repro.check"],
    ids=["check-first", "comm-first"],
)
def test_import_order_has_no_cycle(order):
    proc = subprocess.run(
        [sys.executable, "-c", order],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
