"""DDP oracle invariants, Megatron tensor slicing, pipeline, 3D parallelism."""

import numpy as np
import pytest

from repro.baselines import (
    ColumnParallelLinear,
    DDPTrainer,
    PipelineSchedule,
    RowParallelLinear,
    TensorParallelMLP,
    ThreeDConfig,
    ThreeDModel,
    best_threed_config,
    megatron_comm_bytes_per_block,
    pipeline_bubble_fraction,
)
from repro.baselines.pipeline import balanced_stage_split
from repro.hardware import dgx2_cluster
from repro.nn import GPTModel, Linear, MLP, TransformerConfig
from repro.utils.rng import seeded_rng


def tiny_factory():
    cfg = TransformerConfig(
        num_layers=1, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(5))


class TestDDP:
    def test_replicas_stay_in_sync(self, rng):
        ddp = DDPTrainer(tiny_factory, world_size=3, lr=1e-2)
        for _ in range(3):
            batches = [
                (rng.integers(0, 32, (2, 4)), rng.integers(0, 32, (2, 4)))
                for _ in range(3)
            ]
            ddp.train_step(batches)
        assert ddp.replicas_in_sync()

    def test_identical_batches_identical_losses(self, rng):
        ddp = DDPTrainer(tiny_factory, world_size=2, lr=1e-2)
        b = (rng.integers(0, 32, (2, 4)), rng.integers(0, 32, (2, 4)))
        losses = ddp.train_step([b, b])
        assert losses[0] == pytest.approx(losses[1])

    def test_wrong_batch_count_raises(self, rng):
        ddp = DDPTrainer(tiny_factory, world_size=2)
        with pytest.raises(ValueError):
            ddp.train_step([(np.zeros((1, 2), dtype=int),) * 2])

    def test_memory_redundancy(self):
        """DDP's defining property: full replication (what ZeRO removes)."""
        ddp = DDPTrainer(tiny_factory, world_size=4)
        sizes = [
            sum(p.nbytes for p in m.parameters()) for m in ddp.replicas
        ]
        assert len(set(sizes)) == 1 and sizes[0] > 0  # 4 full copies


class TestMegatronLinears:
    def test_column_parallel_matches_dense(self, rng):
        dense = Linear(8, 12, rng=seeded_rng(0))
        col = ColumnParallelLinear.from_linear(dense, mp=4, gather_output=True)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        np.testing.assert_allclose(col(x), dense(x), rtol=1e-5)

    def test_row_parallel_matches_dense(self, rng):
        dense = Linear(12, 8, rng=seeded_rng(1))
        row = RowParallelLinear.from_linear(dense, mp=3)
        x = rng.standard_normal((3, 12)).astype(np.float32)
        np.testing.assert_allclose(row(x), dense(x), rtol=1e-5)

    def test_column_backward_matches_dense(self, rng):
        dense = Linear(8, 12, rng=seeded_rng(2))
        col = ColumnParallelLinear.from_linear(dense, mp=2, gather_output=True)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        g = rng.standard_normal((3, 12)).astype(np.float32)
        dense(x)
        gx_dense = dense.backward(g.copy())
        col(x)
        gx_col = col.backward(g.copy())
        np.testing.assert_allclose(gx_col, gx_dense, rtol=1e-5, atol=1e-6)

    def test_mlp_matches_serial(self, rng):
        hd = 8
        serial = MLP(hd, rng=seeded_rng(3))
        tp = TensorParallelMLP(hd, mp=4, rng=seeded_rng(99))
        # copy serial weights into the parallel shards
        tp.fc_in = ColumnParallelLinear.from_linear(serial.fc_in, mp=4)
        tp.fc_out = RowParallelLinear.from_linear(serial.fc_out, mp=4)
        x = rng.standard_normal((2, 3, hd)).astype(np.float32)
        np.testing.assert_allclose(tp(x), serial(x), rtol=1e-4, atol=1e-5)

    def test_mlp_backward_matches_serial(self, rng):
        hd = 8
        serial = MLP(hd, rng=seeded_rng(3))
        tp = TensorParallelMLP(hd, mp=2, rng=seeded_rng(99))
        tp.fc_in = ColumnParallelLinear.from_linear(serial.fc_in, mp=2)
        tp.fc_out = RowParallelLinear.from_linear(serial.fc_out, mp=2)
        x = rng.standard_normal((2, hd)).astype(np.float32)
        g = rng.standard_normal((2, hd)).astype(np.float32)
        serial(x)
        gx_s = serial.backward(g.copy())
        tp(x)
        gx_p = tp.backward(g.copy())
        np.testing.assert_allclose(gx_p, gx_s, rtol=1e-4, atol=1e-5)

    def test_indivisible_mp_raises(self):
        with pytest.raises(ValueError):
            ColumnParallelLinear(8, 10, mp=3)
        with pytest.raises(ValueError):
            RowParallelLinear(10, 8, mp=3)

    def test_comm_volume_formula(self):
        assert megatron_comm_bytes_per_block(bsz=4, seq=128, hidden_dim=256) == (
            2 * 4 * 128 * 256 * 2
        )


class TestPipeline:
    def test_bubble_formula(self):
        assert pipeline_bubble_fraction(4, 12) == pytest.approx(3 / 15)
        assert pipeline_bubble_fraction(1, 8) == 0.0

    def test_bubble_shrinks_with_microbatches(self):
        fracs = [pipeline_bubble_fraction(8, m) for m in (8, 16, 64, 256)]
        assert fracs == sorted(fracs, reverse=True)

    def test_schedule_times(self):
        s = PipelineSchedule(pp=4, microbatches=8, stage_time=1.0)
        assert s.total_time == 11.0
        assert s.ideal_time == 8.0
        assert s.efficiency == pytest.approx(8 / 11)

    def test_stage_grid_structure(self):
        s = PipelineSchedule(pp=3, microbatches=4, stage_time=1.0)
        grid = s.stage_grid()
        assert grid[0] == [0, -1, -1]  # only stage 0 busy at slot 0
        assert grid[2] == [2, 1, 0]
        # every microbatch visits every stage exactly once
        for stage in range(3):
            visits = [row[stage] for row in grid if row[stage] >= 0]
            assert visits == [0, 1, 2, 3]

    def test_balanced_split_even_costs(self):
        stages = balanced_stage_split([1.0] * 8, 4)
        assert [len(s) for s in stages] == [2, 2, 2, 2]

    def test_balanced_split_skewed_costs(self):
        """One heavy layer should sit alone in its stage."""
        stages = balanced_stage_split([1, 1, 1, 10, 1, 1], 3)
        heavy_stage = [s for s in stages if 3 in s]
        assert heavy_stage == [[3]]

    def test_fewer_layers_than_stages_raises(self):
        """The refactoring constraint of 3D parallelism (Sec. 2)."""
        with pytest.raises(ValueError):
            balanced_stage_split([1.0, 1.0], 3)

    def test_invalid_schedule_raises(self):
        with pytest.raises(ValueError):
            PipelineSchedule(pp=0, microbatches=4, stage_time=1.0)


class TestThreeD:
    def test_memory_per_param(self):
        cluster = dgx2_cluster(2)
        model = ThreeDModel(cluster, ThreeDConfig(mp=4, pp=2, dp=4))
        assert model.gpu_bytes_per_param() == pytest.approx(20 / 32)

    def test_config_must_cover_cluster(self):
        with pytest.raises(ValueError):
            ThreeDModel(dgx2_cluster(1), ThreeDConfig(mp=4, pp=2, dp=4))

    def test_mp_within_node(self):
        with pytest.raises(ValueError):
            ThreeDModel(dgx2_cluster(2), ThreeDConfig(mp=32, pp=1, dp=1))

    def test_scale_ceiling_fig1(self):
        """Fig. 1: 3D parallelism tops out near 650B on 512 GPUs."""
        from repro.core.config import Strategy
        from repro.core.scale import max_model_size

        r = max_model_size(
            Strategy.THREED, dgx2_cluster(32), mp_degree=4, bsz_per_gpu=1
        )
        assert 4e11 < r.max_params < 9e11

    def test_pipeline_needs_enough_layers(self):
        cluster = dgx2_cluster(32)
        model = ThreeDModel(cluster, ThreeDConfig(mp=4, pp=64, dp=2))
        ok, why = model.fits(
            int(1e12),
            hidden_dim=25600,
            num_layers=32,  # fewer than 64 stages
            attn_heads=256,
            bsz_per_gpu=1,
        )
        assert not ok and "stage" in why

    def test_step_time_oom_reported(self):
        cluster = dgx2_cluster(1)
        model = ThreeDModel(cluster, ThreeDConfig(mp=4, pp=1, dp=4))
        t = model.step_time(
            int(1e12), hidden_dim=25600, num_layers=128, attn_heads=256,
            bsz_per_gpu=1,
        )
        assert not t.fits
        assert t.tflops_per_gpu == 0.0

    def test_efficient_when_it_fits(self):
        """Fig. 5a: at 0.5T on 512 GPUs, 3D parallelism is competitive."""
        cluster = dgx2_cluster(32)
        cfg, t = best_threed_config(
            cluster,
            int(0.5e12),
            hidden_dim=18432,
            num_layers=124,
            attn_heads=64,
            bsz_per_gpu=7,
        )
        assert cfg is not None
        assert t.tflops_per_gpu > 35.0  # on par with ZeRO-Infinity's ~49

    def test_best_config_none_when_too_big(self):
        cfg, t = best_threed_config(
            dgx2_cluster(1),
            int(5e12),
            hidden_dim=48 * 1024,
            num_layers=174,
            attn_heads=256,
            bsz_per_gpu=1,
        )
        assert cfg is None and t is None

    def test_bubble_hurts_small_microbatch_counts(self):
        cluster = dgx2_cluster(32)
        model = ThreeDModel(cluster, ThreeDConfig(mp=4, pp=8, dp=16))
        kw = dict(
            hidden_dim=18432, num_layers=124, attn_heads=64, bsz_per_gpu=2
        )
        fast = model.step_time(int(0.5e12), microbatches=64, **kw)
        slow = model.step_time(int(0.5e12), microbatches=8, **kw)
        assert slow.total > fast.total
