"""Configuration validation: every bad config fails at construction."""

import pytest

from repro.core.config import (
    OffloadConfig,
    OffloadDevice,
    Strategy,
    ZeroConfig,
    ZeroStage,
    config_for_strategy,
    STRATEGY_PRESETS,
)


class TestZeroConfigValidation:
    def test_param_offload_requires_stage3(self):
        """Parameters can only be offloaded once they are partitioned."""
        with pytest.raises(ValueError, match="stage 3"):
            ZeroConfig(
                world_size=2,
                stage=ZeroStage.GRADIENTS,
                offload=OffloadConfig(param_device=OffloadDevice.CPU),
            )

    def test_grad_and_optimizer_offload_fine_below_stage3(self):
        ZeroConfig(
            world_size=2,
            stage=ZeroStage.GRADIENTS,
            offload=OffloadConfig(
                grad_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.NVME,
            ),
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"world_size": 0},
            {"world_size": 2, "prefetch_depth": -1},
            {"world_size": 2, "reduce_op": "median"},
            {"world_size": 2, "tile_factor": 0},
            {"world_size": 2, "param_persistence_threshold_numel": -5},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            ZeroConfig(**kwargs)

    def test_defaults_are_stage3_bandwidth_centric(self):
        cfg = ZeroConfig(world_size=4)
        assert cfg.stage is ZeroStage.PARAMETERS
        assert cfg.bandwidth_centric
        assert cfg.overlap_comm


class TestOffloadConfigValidation:
    def test_any_nvme_detection(self):
        assert OffloadConfig(optimizer_device=OffloadDevice.NVME).any_nvme
        assert OffloadConfig(
            activation_device=OffloadDevice.NVME
        ).any_nvme
        assert not OffloadConfig(param_device=OffloadDevice.CPU).any_nvme


class TestStrategyPresets:
    def test_every_engine_strategy_has_a_preset(self):
        for s in Strategy:
            if s is Strategy.THREED:
                continue
            assert s in STRATEGY_PRESETS

    def test_presets_match_table2_placements(self):
        """The Table 2 semantics, literally."""
        dp = STRATEGY_PRESETS[Strategy.DATA_PARALLEL]
        assert dp.stage is ZeroStage.NONE

        z2 = STRATEGY_PRESETS[Strategy.ZERO_2]
        assert z2.stage is ZeroStage.GRADIENTS
        assert z2.offload.optimizer_device is OffloadDevice.NONE

        zoff = STRATEGY_PRESETS[Strategy.ZERO_OFFLOAD]
        assert zoff.stage is ZeroStage.GRADIENTS
        assert zoff.offload.optimizer_device is OffloadDevice.CPU
        assert not zoff.bandwidth_centric  # broadcast-based (Sec. 6.1)

        inf_cpu = STRATEGY_PRESETS[Strategy.ZERO_INF_CPU]
        assert inf_cpu.stage is ZeroStage.PARAMETERS
        assert inf_cpu.offload.param_device is OffloadDevice.CPU

        inf_nvme = STRATEGY_PRESETS[Strategy.ZERO_INF_NVME]
        assert inf_nvme.offload.param_device is OffloadDevice.NVME
        assert inf_nvme.bandwidth_centric

    def test_config_for_strategy_sets_world(self):
        cfg = config_for_strategy(Strategy.ZERO_3, world_size=8)
        assert cfg.world_size == 8
        assert cfg.stage is ZeroStage.PARAMETERS

    def test_config_for_threed_rejected(self):
        with pytest.raises(ValueError, match="baselines"):
            config_for_strategy(Strategy.THREED, world_size=8)

    def test_overrides_apply(self):
        cfg = config_for_strategy(
            Strategy.ZERO_3, world_size=4, prefetch_depth=7
        )
        assert cfg.prefetch_depth == 7
