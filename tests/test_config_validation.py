"""Configuration validation: every bad config fails at construction."""

import pytest

from repro.core.config import (
    OffloadConfig,
    OffloadDevice,
    Strategy,
    ZeroConfig,
    ZeroStage,
    config_for_strategy,
    STRATEGY_PRESETS,
)


class TestZeroConfigValidation:
    def test_param_offload_requires_stage3(self):
        """Parameters can only be offloaded once they are partitioned."""
        with pytest.raises(ValueError, match="stage 3"):
            ZeroConfig(
                world_size=2,
                stage=ZeroStage.GRADIENTS,
                offload=OffloadConfig(param_device=OffloadDevice.CPU),
            )

    def test_grad_and_optimizer_offload_fine_below_stage3(self):
        ZeroConfig(
            world_size=2,
            stage=ZeroStage.GRADIENTS,
            offload=OffloadConfig(
                grad_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.NVME,
            ),
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"world_size": 0},
            {"world_size": 2, "prefetch_depth": -1},
            {"world_size": 2, "reduce_op": "median"},
            {"world_size": 2, "tile_factor": 0},
            {"world_size": 2, "param_persistence_threshold_numel": -5},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            ZeroConfig(**kwargs)

    def test_defaults_are_stage3_bandwidth_centric(self):
        cfg = ZeroConfig(world_size=4)
        assert cfg.stage is ZeroStage.PARAMETERS
        assert cfg.bandwidth_centric
        assert cfg.overlap_comm


class TestOffloadConfigValidation:
    def test_any_nvme_detection(self):
        assert OffloadConfig(optimizer_device=OffloadDevice.NVME).any_nvme
        assert OffloadConfig(
            activation_device=OffloadDevice.NVME
        ).any_nvme
        assert not OffloadConfig(param_device=OffloadDevice.CPU).any_nvme


class TestStrategyPresets:
    def test_every_engine_strategy_has_a_preset(self):
        for s in Strategy:
            if s is Strategy.THREED:
                continue
            assert s in STRATEGY_PRESETS

    def test_presets_match_table2_placements(self):
        """The Table 2 semantics, literally."""
        dp = STRATEGY_PRESETS[Strategy.DATA_PARALLEL]
        assert dp.stage is ZeroStage.NONE

        z2 = STRATEGY_PRESETS[Strategy.ZERO_2]
        assert z2.stage is ZeroStage.GRADIENTS
        assert z2.offload.optimizer_device is OffloadDevice.NONE

        zoff = STRATEGY_PRESETS[Strategy.ZERO_OFFLOAD]
        assert zoff.stage is ZeroStage.GRADIENTS
        assert zoff.offload.optimizer_device is OffloadDevice.CPU
        assert not zoff.bandwidth_centric  # broadcast-based (Sec. 6.1)

        inf_cpu = STRATEGY_PRESETS[Strategy.ZERO_INF_CPU]
        assert inf_cpu.stage is ZeroStage.PARAMETERS
        assert inf_cpu.offload.param_device is OffloadDevice.CPU

        inf_nvme = STRATEGY_PRESETS[Strategy.ZERO_INF_NVME]
        assert inf_nvme.offload.param_device is OffloadDevice.NVME
        assert inf_nvme.bandwidth_centric

    def test_config_for_strategy_sets_world(self):
        cfg = config_for_strategy(Strategy.ZERO_3, world_size=8)
        assert cfg.world_size == 8
        assert cfg.stage is ZeroStage.PARAMETERS

    def test_config_for_threed_rejected(self):
        with pytest.raises(ValueError, match="baselines"):
            config_for_strategy(Strategy.THREED, world_size=8)

    def test_overrides_apply(self):
        cfg = config_for_strategy(
            Strategy.ZERO_3, world_size=4, prefetch_depth=7
        )
        assert cfg.prefetch_depth == 7


class TestCrossFieldValidate:
    """``ZeroConfig.validate()``: contradictory combinations are rejected
    with messages that name both the problem and the fix."""

    def test_valid_default_returns_self(self):
        cfg = ZeroConfig()
        assert cfg.validate() is cfg

    def test_every_strategy_preset_validates(self):
        for strategy, preset in STRATEGY_PRESETS.items():
            preset.validate()

    @pytest.mark.parametrize("scale", [0.0, -4.0])
    def test_nonpositive_loss_scale(self, scale):
        with pytest.raises(ValueError, match="loss_scale.*dynamic"):
            ZeroConfig(loss_scale=scale).validate()

    def test_tile_factor_without_threshold(self):
        with pytest.raises(ValueError, match="tile_linear_threshold_numel"):
            ZeroConfig(tile_factor=4).validate()

    def test_tile_factor_with_threshold_ok(self):
        ZeroConfig(tile_factor=4, tile_linear_threshold_numel=1024).validate()

    def test_prefetch_without_overlap(self):
        with pytest.raises(ValueError, match="overlap_comm"):
            ZeroConfig(prefetch_depth=2, overlap_comm=False).validate()

    def test_no_prefetch_without_overlap_ok(self):
        ZeroConfig(prefetch_depth=0, overlap_comm=False).validate()

    @pytest.mark.parametrize(
        "field", ["grad_accum_dtype", "master_dtype"]
    )
    def test_unsupported_precision_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            ZeroConfig(**{field: "bf16", "loss_scale": 1.0}).validate()

    def test_fp16_master_needs_static_scale(self):
        with pytest.raises(ValueError, match="static loss_scale"):
            ZeroConfig(master_dtype="fp16", loss_scale=None).validate()

    def test_fp16_master_with_static_scale_ok(self):
        ZeroConfig(master_dtype="fp16", loss_scale=128.0).validate()

    def test_nonpositive_pinned_budget(self):
        with pytest.raises(ValueError, match="pinned_budget_bytes"):
            ZeroConfig(
                offload=OffloadConfig(pinned_budget_bytes=0)
            ).validate()

    def test_nonpositive_optimizer_chunk(self):
        with pytest.raises(ValueError, match="optimizer_chunk_numel"):
            ZeroConfig(
                offload=OffloadConfig(optimizer_chunk_numel=0)
            ).validate()

    def test_engine_validates_at_construction(self):
        """The engine refuses a contradictory config before building."""
        from repro.core import ZeroInfinityEngine
        from repro.nn import Linear
        from repro.utils.rng import seeded_rng

        bad = ZeroConfig(world_size=2, tile_factor=8)
        with pytest.raises(ValueError, match="tile_linear_threshold_numel"):
            ZeroInfinityEngine(
                bad, model_factory=lambda: Linear(4, 4, rng=seeded_rng(0))
            )
