"""Device specs, topologies (Fig. 2b), ledger, and the first-fit allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    AllocationError,
    CLUSTER_PRESETS,
    FirstFitAllocator,
    MemoryLedger,
    PCIE_GEN3_X16,
    V100_32GB,
    dgx2_cluster,
    dgx2_node,
)
from repro.tensor.device import CPU, gpu
from repro.utils.units import GB, GIB, TB


class TestDeviceSpecs:
    def test_v100_capacity(self):
        assert V100_32GB.memory.capacity_bytes == 32 * GB

    def test_v100_achievable_peak(self):
        # Sec. 4.2: empirically ~70 TFlops achievable
        assert V100_32GB.peak_flops == 70e12

    def test_pcie_single_link(self):
        # Sec. 5.2.1: "a meager 12 GB/s PCIe bandwidth"
        assert PCIE_GEN3_X16.bandwidth == 12 * GB

    def test_link_transfer_time(self):
        t = PCIE_GEN3_X16.transfer_time(12 * GB)
        assert t == pytest.approx(1.0, rel=1e-3)

    def test_link_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            PCIE_GEN3_X16.transfer_time(-1)


class TestDGX2Topology:
    """The Fig. 2b table rows."""

    def test_node_shape(self):
        node = dgx2_node()
        assert node.gpus_per_node == 16
        assert node.gpu_memory_bytes == 512 * GB  # 0.5 TB
        assert node.cpu_memory_bytes == 1.5 * TB
        assert node.nvme_bytes == 28 * TB

    @pytest.mark.parametrize(
        "nodes,gpu_tb,cpu_tb,nvme_tb",
        [
            (1, 0.5, 1.5, 28.0),
            (4, 2.0, 6.0, 112.0),
            (16, 8.0, 24.0, 448.0),
            (64, 32.0, 96.0, 1792.0),
            (96, 48.0, 144.0, 2688.0),
        ],
    )
    def test_fig2b_aggregate_memory(self, nodes, gpu_tb, cpu_tb, nvme_tb):
        c = dgx2_cluster(nodes)
        # the paper's table rounds 512 GB/node to "0.5 TB"
        assert c.gpu_memory_bytes == pytest.approx(gpu_tb * TB, rel=0.03)
        assert c.cpu_memory_bytes == pytest.approx(cpu_tb * TB, rel=0.01)
        assert c.nvme_bytes == pytest.approx(nvme_tb * TB, rel=0.01)

    def test_fig2b_parallel_bandwidths(self):
        node = dgx2_node()
        # 3.0 GB/s per GPU to CPU, 1.6 GB/s per GPU to NVMe
        assert node.cpu_bw_per_gpu_parallel == 3.0 * GB
        assert node.nvme_bw_per_gpu_parallel == 1.6 * GB
        # aggregates: 48 GB/s and 25.6 GB/s (capped by the 25 GB/s drives)
        assert node.aggregate_cpu_bw == pytest.approx(48 * GB)
        assert node.aggregate_nvme_bw == pytest.approx(25 * GB)

    def test_broadcast_vs_allgather_bandwidth(self):
        """Sec. 6.1: owner/broadcast uses one link; allgather uses all."""
        node = dgx2_node()
        single = node.gpu_to_slow_memory_bw(nvme=False, parallel=False)
        parallel_total = (
            node.gpu_to_slow_memory_bw(nvme=False, parallel=True)
            * node.gpus_per_node
        )
        assert single == 12 * GB
        assert parallel_total == 48 * GB  # 4x the single link

    def test_presets_cover_fig2b(self):
        assert set(CLUSTER_PRESETS) == {1, 4, 16, 32, 64, 96}

    def test_memory_bytes_lookup(self):
        c = dgx2_cluster(2)
        assert c.memory_bytes("gpu") == c.gpu_memory_bytes
        with pytest.raises(ValueError):
            c.memory_bytes("tape")

    def test_gpu_to_gpu_bandwidth(self):
        assert dgx2_cluster(1).gpu_to_gpu_bw() == 150 * GB  # NVLink
        assert dgx2_cluster(4).gpu_to_gpu_bw() == 100 * GB  # fabric bound

    def test_invalid_nodes_raises(self):
        with pytest.raises(ValueError):
            dgx2_cluster(0)


class TestMemoryLedger:
    def test_allocate_free_cycle(self):
        led = MemoryLedger()
        led.allocate(gpu(0), 100)
        led.allocate(gpu(0), 50)
        led.free(gpu(0), 100)
        assert led.used(gpu(0)) == 50
        assert led.peak[gpu(0)] == 150

    def test_capacity_enforced(self):
        led = MemoryLedger(capacities={"gpu": 100})
        led.allocate(gpu(0), 80)
        with pytest.raises(AllocationError):
            led.allocate(gpu(0), 30)

    def test_per_device_isolation(self):
        led = MemoryLedger(capacities={"gpu": 100})
        led.allocate(gpu(0), 80)
        led.allocate(gpu(1), 80)  # different device: its own budget

    def test_overfree_raises(self):
        led = MemoryLedger()
        led.allocate(CPU, 10)
        with pytest.raises(ValueError):
            led.free(CPU, 20)

    def test_used_by_kind_sums_devices(self):
        led = MemoryLedger()
        led.allocate(gpu(0), 10)
        led.allocate(gpu(1), 20)
        assert led.used_by_kind("gpu") == 30

    def test_reset_peak(self):
        led = MemoryLedger()
        led.allocate(CPU, 100)
        led.free(CPU, 100)
        led.reset_peak()
        assert led.peak_by_kind("cpu") == 0


class TestFirstFitAllocator:
    def test_simple_alloc_free(self):
        al = FirstFitAllocator(1024, alignment=16)
        off = al.malloc(100)
        assert off == 0
        assert al.used_bytes == 112  # rounded to 16
        al.free(off)
        assert al.used_bytes == 0
        assert al.largest_free_block == 1024

    def test_first_fit_order(self):
        al = FirstFitAllocator(1024, alignment=16)
        a = al.malloc(256)
        b = al.malloc(256)
        al.free(a)
        c = al.malloc(128)
        assert c == a  # reuses the first hole

    def test_coalescing(self):
        al = FirstFitAllocator(1024, alignment=16)
        blocks = [al.malloc(128) for _ in range(8)]
        for b in blocks:
            al.free(b)
        assert al.largest_free_block == 1024
        assert al.fragmentation == 0.0

    def test_fragmentation_oom(self):
        """Total free is enough but no contiguous block is (Sec. 3 MSWM)."""
        al = FirstFitAllocator(1024, alignment=16)
        keep = []
        for i in range(8):
            keep.append(al.malloc(64))
            al.malloc(64)
        for b in keep:
            al.free(b)
        assert al.free_bytes >= 512
        with pytest.raises(AllocationError) as ei:
            al.malloc(512)
        assert ei.value.free >= 512
        assert ei.value.largest_contiguous < 512

    def test_pre_fragment_caps_contiguity(self):
        """The Fig. 6b setup: 2 GB chunks -> >2 GB allocations fail."""
        al = FirstFitAllocator(16 * GIB, alignment=256)
        al.pre_fragment(2 * GIB)
        assert al.largest_free_block <= 2 * GIB
        al.malloc(2 * GIB - 256)  # fits in one chunk
        with pytest.raises(AllocationError):
            al.malloc(2 * GIB + 256)

    def test_pre_fragment_requires_pristine(self):
        al = FirstFitAllocator(1024, alignment=16)
        al.malloc(16)
        with pytest.raises(RuntimeError):
            al.pre_fragment(256)

    def test_double_free_raises(self):
        al = FirstFitAllocator(1024)
        off = al.malloc(100)
        al.free(off)
        with pytest.raises(ValueError):
            al.free(off)

    def test_zero_alloc_raises(self):
        with pytest.raises(ValueError):
            FirstFitAllocator(1024).malloc(0)

    def test_bad_alignment_raises(self):
        with pytest.raises(ValueError):
            FirstFitAllocator(1024, alignment=3)

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 2000)), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants(self, ops):
        """used + free == capacity at all times; blocks never overlap."""
        al = FirstFitAllocator(64 * 1024, alignment=64)
        live: list[int] = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                try:
                    live.append(al.malloc(size))
                except AllocationError:
                    pass
            else:
                al.free(live.pop(len(live) % len(live) - 1 if len(live) > 1 else 0))
            assert al.used_bytes + al.free_bytes == al.capacity
            blocks = sorted(
                al._allocated.values(), key=lambda b: b.offset
            )
            for x, y in zip(blocks, blocks[1:]):
                assert x.end <= y.offset  # no overlap
