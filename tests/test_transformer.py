"""Attention, transformer blocks, the GPT model, and activation checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    CheckpointedBlock,
    GPTModel,
    MultiHeadAttention,
    TransformerBlock,
    TransformerConfig,
)
from repro.nn.checkpoint import ActivationOffloader
from repro.utils.rng import seeded_rng


def f64(model):
    for _, p in model.named_parameters():
        p.data = p.data.astype(np.float64)
    return model


def full_gradcheck(model, args, param_names, eps=1e-6, rtol=2e-4, atol=1e-9):
    """Spot-check analytic grads at random entries of selected params."""
    rng = seeded_rng(99)
    loss = model(*args)
    model.backward(1.0)
    params = dict(model.named_parameters())
    for name in param_names:
        p = params[name]
        idx = tuple(rng.integers(0, s) for s in p.data.shape)
        analytic = p.grad[idx]
        orig = p.data[idx]
        p.data[idx] = orig + eps
        lp = float(model(*args))
        p.data[idx] = orig - eps
        lm = float(model(*args))
        p.data[idx] = orig
        numeric = (lp - lm) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=rtol, abs=1e-7), name


class TestMultiHeadAttention:
    def test_shapes(self, rng):
        mha = MultiHeadAttention(16, 4, rng=rng)
        y = mha(rng.standard_normal((2, 5, 16)))
        assert y.shape == (2, 5, 16)

    def test_param_inventory_matches_paper(self, rng):
        """Sec. 3: attention contributes (hd,3hd) and (hd,hd) linears."""
        hd = 16
        mha = MultiHeadAttention(hd, 4, rng=rng)
        weights = sorted(p.data.shape for _, p in mha.named_parameters() if p.data.ndim == 2)
        assert weights == [(hd, hd), (3 * hd, hd)]

    def test_causality_end_to_end(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        x = rng.standard_normal((1, 6, 8))
        y1 = mha(x)
        x2 = x.copy()
        x2[:, -1] += 10.0  # change only the last position
        y2 = mha(x2)
        np.testing.assert_allclose(y1[:, :-1], y2[:, :-1], rtol=1e-6)

    def test_gradcheck(self, rng):
        mha = MultiHeadAttention(8, 2, rng=seeded_rng(0))
        for p in mha.parameters():
            p.data = p.data.astype(np.float64)
        x = rng.standard_normal((1, 4, 8))
        w = rng.standard_normal((1, 4, 8))

        def loss():
            return float((mha(x) * w).sum())

        base = mha(x)
        gx = mha.backward(w.copy())
        eps = 1e-6
        idx = (0, 2, 3)
        orig = x[idx]
        x[idx] = orig + eps
        lp = loss()
        x[idx] = orig - eps
        lm = loss()
        x[idx] = orig
        assert gx[idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-5)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)


class TestTransformerBlock:
    def test_residual_structure(self, rng):
        """With zeroed sublayer outputs the block must be the identity."""
        block = TransformerBlock(8, 2, rng=rng)
        block.attn.proj.weight.data[:] = 0
        block.attn.proj.bias.data[:] = 0
        block.mlp.fc_out.weight.data[:] = 0
        block.mlp.fc_out.bias.data[:] = 0
        x = rng.standard_normal((2, 3, 8))
        np.testing.assert_allclose(block(x), x, rtol=1e-6)

    def test_four_linears_per_block(self, rng):
        """Sec. 3: (hd,3hd), (hd,hd), (hd,4hd), (4hd,hd)."""
        hd = 8
        block = TransformerBlock(hd, 2, rng=rng)
        shapes = sorted(
            p.data.shape for _, p in block.named_parameters() if p.data.ndim == 2
        )
        assert shapes == [(hd, hd), (hd, 4 * hd), (3 * hd, hd), (4 * hd, hd)]

    def test_backward_shape(self, rng):
        block = TransformerBlock(8, 2, rng=rng)
        x = rng.standard_normal((2, 4, 8))
        y = block(x)
        g = block.backward(np.ones_like(y))
        assert g.shape == x.shape


class TestGPTModel:
    def test_param_count_near_eq1(self):
        """Eq. (1): 12 * nl * hd^2 approximates the block parameters."""
        cfg = TransformerConfig(
            num_layers=4, hidden_dim=64, num_heads=4, vocab_size=100, max_seq=32,
            tie_embeddings=True,
        )
        model = GPTModel(cfg, rng=seeded_rng(0))
        block_params = sum(
            p.full_numel
            for n, p in model.named_parameters()
            if n.startswith("block")
        )
        assert block_params == pytest.approx(cfg.approx_params, rel=0.05)

    def test_loss_near_log_vocab_at_init(self, tiny_model, batch):
        loss = tiny_model(*batch)
        assert loss == pytest.approx(np.log(64), rel=0.1)

    def test_tied_embeddings_share_object(self, tiny_model):
        assert tiny_model.head.weight is tiny_model.tok_emb._parameters["weight"]

    def test_untied_variant(self):
        cfg = TransformerConfig(
            num_layers=1, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8,
            tie_embeddings=False,
        )
        m = GPTModel(cfg, rng=seeded_rng(0))
        assert m.head.weight is not m.tok_emb._parameters["weight"]

    def test_all_params_receive_grads(self, tiny_model, batch):
        tiny_model(*batch)
        tiny_model.backward(1.0)
        missing = [n for n, p in tiny_model.named_parameters() if p.grad is None]
        assert missing == []

    def test_gradcheck_spot(self, batch):
        cfg = TransformerConfig(
            num_layers=2, hidden_dim=16, num_heads=2, vocab_size=64, max_seq=16
        )
        model = f64(GPTModel(cfg, rng=seeded_rng(5)))
        full_gradcheck(
            model,
            batch,
            [
                "tok_emb.weight",
                "pos_emb.weight",
                "block0.attn.qkv.weight",
                "block1.mlp.fc_in.weight",
                "block0.ln2.gain",
                "ln_f.bias",
            ],
        )

    def test_sequence_too_long_raises(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 999))
        with pytest.raises(ValueError):
            tiny_model(ids, ids)

    def test_wrong_rank_input_raises(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model(np.zeros(5, dtype=int), np.zeros(5, dtype=int))

    def test_training_reduces_loss(self, tiny_model, rng):
        from repro.optim import Adam

        opt = Adam(tiny_model.parameters(), lr=1e-2)
        ids = rng.integers(0, 64, size=(4, 8))
        tgt = rng.integers(0, 64, size=(4, 8))
        first = tiny_model(ids, tgt)
        for _ in range(20):
            loss = tiny_model(ids, tgt)
            tiny_model.backward(1.0)
            opt.step()
            opt.zero_grad()
        assert loss < first * 0.7  # memorises a fixed batch


class TestActivationCheckpointing:
    def _models(self, ckpt):
        cfg = TransformerConfig(
            num_layers=3,
            hidden_dim=16,
            num_heads=2,
            vocab_size=32,
            max_seq=8,
            activation_checkpointing=ckpt,
        )
        return GPTModel(cfg, rng=seeded_rng(11))

    def test_forward_equivalence(self, rng):
        plain, ckpt = self._models(False), self._models(True)
        ids = rng.integers(0, 32, size=(2, 6))
        tgt = rng.integers(0, 32, size=(2, 6))
        assert plain(ids, tgt) == pytest.approx(ckpt(ids, tgt), rel=1e-6)

    def test_gradient_equivalence(self, rng):
        """Recompute-based backward must produce identical gradients."""
        plain, ckpt = self._models(False), self._models(True)
        ids = rng.integers(0, 32, size=(2, 6))
        tgt = rng.integers(0, 32, size=(2, 6))
        plain(ids, tgt)
        plain.backward(1.0)
        ckpt(ids, tgt)
        ckpt.backward(1.0)
        # checkpoint wrappers nest the block under ".inner"
        g1 = {n: p.grad for n, p in plain.named_parameters()}
        g2 = {
            n.replace(".inner.", "."): p.grad
            for n, p in ckpt.named_parameters()
        }
        assert g1.keys() == g2.keys()
        for n in g1:
            np.testing.assert_allclose(g1[n], g2[n], rtol=1e-5, atol=1e-7, err_msg=n)

    def test_caches_dropped_after_forward(self, rng):
        model = self._models(True)
        ids = rng.integers(0, 32, size=(1, 4))
        model(ids, ids)
        for name in model._block_names:
            wrapper = model._modules[name]
            inner_caches = [
                m._cache for m in wrapper.inner.modules() if m._cache is not None
            ]
            assert inner_caches == []

    def test_offloader_accounting(self, rng):
        block = TransformerBlock(8, 2, rng=seeded_rng(0))
        off = ActivationOffloader()
        wrapped = CheckpointedBlock(block, offloader=off)
        x = rng.standard_normal((2, 4, 8)).astype(np.float32)
        y = wrapped(x)
        assert off.bytes_offloaded == x.nbytes
        wrapped.backward(np.ones_like(y))
        assert off.bytes_restored == x.nbytes

    def test_backward_before_forward_raises(self, rng):
        wrapped = CheckpointedBlock(TransformerBlock(8, 2, rng=rng))
        with pytest.raises(RuntimeError):
            wrapped.backward(np.ones((1, 2, 8)))
