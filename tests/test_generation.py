"""Autoregressive generation, including under partitioned (ZeRO-3) weights.

Inference through the partitioned model is where the Sec. 7.1.1 access
interception earns its keep: ``head.project`` touches the tied weight
outside any hook-covered forward, and the intercepting parameter dict
gathers it on touch.
"""

import numpy as np
import pytest

from repro.core import OffloadConfig, OffloadDevice, ZeroConfig, ZeroInfinityEngine
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng, spawn_rngs

VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3))


class TestGenerate:
    def test_greedy_is_deterministic(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (2, 3))
        a = model.generate(prompt, 5)
        b = model.generate(prompt, 5)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2, 8)

    def test_prompt_preserved(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 4))
        out = model.generate(prompt, 3)
        np.testing.assert_array_equal(out[:, :4], prompt)

    def test_window_slides_past_max_seq(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 6))
        out = model.generate(prompt, 10)  # total 16 > max_seq 8
        assert out.shape == (1, 16)
        assert np.all((out >= 0) & (out < VOCAB))

    def test_sampling_needs_rng(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 2))
        with pytest.raises(ValueError):
            model.generate(prompt, 1, temperature=0.5)

    def test_sampling_varies_with_seed(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 2))
        outs = {
            tuple(
                model.generate(
                    prompt, 6, temperature=2.0, rng=seeded_rng(s)
                )[0]
            )
            for s in range(6)
        }
        assert len(outs) > 1  # high temperature: not all identical

    def test_logits_shape_and_no_cache_leak(self, rng):
        model = factory()
        ids = rng.integers(0, VOCAB, (2, 5))
        logits = model.logits(ids)
        assert logits.shape == (2, 5, VOCAB)
        assert all(m._cache is None for m in model.modules())

    def test_zero_new_tokens(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 3))
        np.testing.assert_array_equal(model.generate(prompt, 0), prompt)

    def test_invalid_args(self, rng):
        model = factory()
        prompt = rng.integers(0, VOCAB, (1, 3))
        with pytest.raises(ValueError):
            model.generate(prompt, -1)
        with pytest.raises(ValueError):
            model.generate(prompt, 1, temperature=-1.0)


class TestGenerateUnderZero:
    def test_partitioned_model_generates_identically(self, rng):
        """Generation through the ZeRO engine (NVMe-resident weights)
        matches the plain model bit for bit — interception gathers the
        tied head weight on touch."""
        prompt = rng.integers(0, VOCAB, (2, 3))
        plain = factory().generate(prompt, 5)
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory) as eng:
            assert all(
                p.state is PartitionState.PARTITIONED
                for p in eng.model.parameters()
            )
            out = eng.model.generate(prompt, 5)
        np.testing.assert_array_equal(out, plain)

    def test_finetune_then_generate(self, rng):
        """The end-user loop: train under ZeRO, then sample from it."""
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(param_device=OffloadDevice.NVME),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=factory, lr=1e-2) as eng:
            rngs = spawn_rngs(4, 2)
            for _ in range(3):
                batches = [
                    (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8)))
                    for r in rngs
                ]
                eng.train_step(batches)
            prompt = rng.integers(0, VOCAB, (1, 3))
            out = eng.model.generate(prompt, 4)
            assert out.shape == (1, 7)
            assert np.all((out >= 0) & (out < VOCAB))
