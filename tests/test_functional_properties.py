"""Property-based tests of the numeric kernels' mathematical structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F

floats = st.floats(-3, 3, allow_nan=False, width=32)


def arr(shape_strategy):
    return hnp.arrays(np.float32, shape_strategy, elements=floats)


small2d = st.tuples(st.integers(1, 6), st.integers(1, 6))


class TestLinearProperties:
    @given(
        x=arr(st.just((3, 4))),
        w=arr(st.just((5, 4))),
        a=st.floats(-2, 2, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_forward_linear_in_input(self, x, w, a):
        """linear(a*x) == a*linear(x) (no bias)."""
        y1, _ = F.linear_fwd(np.float32(a) * x, w, None)
        y2, _ = F.linear_fwd(x, w, None)
        np.testing.assert_allclose(y1, np.float32(a) * y2, rtol=1e-4, atol=1e-4)

    @given(x=arr(st.just((3, 4))), w=arr(st.just((5, 4))), g=arr(st.just((3, 5))))
    @settings(max_examples=50, deadline=None)
    def test_backward_is_adjoint(self, x, w, g):
        """<g, fwd(x)> == <bwd(g), x> — the defining adjoint identity."""
        y, cache = F.linear_fwd(x, w, None)
        gx, _, _ = F.linear_bwd(g, cache)
        lhs = float((g * y).sum())
        rhs = float((gx * x).sum())
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)


class TestSoftmaxProperties:
    @given(x=arr(small2d))
    @settings(max_examples=80, deadline=None)
    def test_simplex_output(self, x):
        p, _ = F.softmax_fwd(x)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(-1), 1.0, rtol=1e-3)

    @given(x=arr(small2d), g=st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_gradient_orthogonal_to_ones(self, x, g):
        """d(softmax)/dx maps constants to zero: rows of the Jacobian sum
        to 0, so backward of a constant grad is ~0."""
        p, cache = F.softmax_fwd(x)
        gx = F.softmax_bwd(np.full_like(p, np.float32(g)), cache)
        np.testing.assert_allclose(gx, 0.0, atol=1e-3)


class TestLayerNormProperties:
    @given(x=arr(st.tuples(st.integers(1, 5), st.just(8))))
    @settings(max_examples=50, deadline=None)
    def test_shift_scale_invariance(self, x):
        """LN(a*x + b) == LN(x) for scalar a>0, b (with unit affine).

        Exact only in the var >> eps regime — LN's epsilon deliberately
        breaks scale invariance for near-constant rows — so assume away
        low-variance inputs.
        """
        from hypothesis import assume

        assume(float(x.var(axis=-1).min()) > 0.5)
        gain, bias = np.ones(8, np.float32), np.zeros(8, np.float32)
        y1, _ = F.layernorm_fwd(x, gain, bias)
        y2, _ = F.layernorm_fwd(np.float32(3.0) * x + np.float32(7.0), gain, bias)
        np.testing.assert_allclose(y1, y2, rtol=1e-3, atol=1e-3)


class TestGeluProperties:
    @given(x=arr(st.just((16,))))
    @settings(max_examples=50, deadline=None)
    def test_bounded_below_and_asymptotic(self, x):
        y, _ = F.gelu_fwd(x)
        assert np.all(y >= -0.18)  # gelu's global minimum is ~-0.17
        big = np.float32(20.0) * np.ones(4, np.float32)
        yb, _ = F.gelu_fwd(big)
        np.testing.assert_allclose(yb, big, rtol=1e-5)


class TestCrossEntropyProperties:
    @given(
        logits=arr(st.tuples(st.integers(1, 5), st.just(7))),
        shift=st.floats(-10, 10, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, logits, shift):
        targets = np.arange(logits.shape[0]) % 7
        l1, _ = F.cross_entropy_fwd(logits, targets)
        l2, _ = F.cross_entropy_fwd(logits + np.float32(shift), targets)
        assert l1 == pytest.approx(l2, rel=1e-3, abs=1e-4)

    @given(logits=arr(st.tuples(st.integers(1, 5), st.just(7))))
    @settings(max_examples=50, deadline=None)
    def test_loss_nonnegative(self, logits):
        targets = np.zeros(logits.shape[0], dtype=np.int64)
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss >= 0.0


class TestAttentionProperties:
    @given(
        q=arr(st.just((1, 1, 4, 4))),
        k=arr(st.just((1, 1, 4, 4))),
        v=arr(st.just((1, 1, 4, 4))),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_in_value_convex_hull(self, q, k, v):
        """Attention output is a convex combination of value rows, so each
        output coordinate lies within that coordinate's value range."""
        ctx, _ = F.attention_scores_fwd(q, k, v, causal=False)
        vmin = v.min(axis=2, keepdims=True)
        vmax = v.max(axis=2, keepdims=True)
        assert np.all(ctx >= vmin - 1e-3)
        assert np.all(ctx <= vmax + 1e-3)

    @given(v=arr(st.just((1, 1, 4, 4))))
    @settings(max_examples=30, deadline=None)
    def test_first_position_is_first_value_when_causal(self, v):
        """Causal position 0 can only attend to itself."""
        q = np.ones((1, 1, 4, 4), np.float32)
        k = np.ones((1, 1, 4, 4), np.float32)
        ctx, _ = F.attention_scores_fwd(q, k, v, causal=True)
        np.testing.assert_allclose(ctx[0, 0, 0], v[0, 0, 0], rtol=1e-4, atol=1e-5)
