"""Task-graph engine and the training-step simulator."""

import numpy as np
import pytest

from repro.analytics.model_zoo import TABLE1_CONFIGS
from repro.core.config import OffloadDevice, Strategy
from repro.hardware import dgx2_cluster
from repro.sim import (
    SimPolicy,
    SimWorkload,
    StepSimulator,
    TaskGraph,
    policy_for_strategy,
)
from repro.sim.step_model import policy_from_config


class TestTaskGraph:
    def test_single_task(self):
        g = TaskGraph()
        g.add("a", "s", 2.0)
        r = g.run()
        assert r.makespan == 2.0

    def test_stream_serializes(self):
        g = TaskGraph()
        g.add("a", "s", 1.0)
        g.add("b", "s", 1.0)
        assert g.run().makespan == 2.0

    def test_independent_streams_overlap(self):
        g = TaskGraph()
        g.add("a", "s1", 3.0)
        g.add("b", "s2", 2.0)
        assert g.run().makespan == 3.0

    def test_dependency_chains(self):
        g = TaskGraph()
        a = g.add("a", "s1", 1.0)
        b = g.add("b", "s2", 1.0, [a])
        c = g.add("c", "s1", 1.0, [b])
        r = g.run()
        assert r.makespan == 3.0
        assert r.tasks[c.index].start == 2.0

    def test_diamond_dependency(self):
        g = TaskGraph()
        a = g.add("a", "x", 1.0)
        b = g.add("b", "y", 2.0, [a])
        c = g.add("c", "z", 3.0, [a])
        g.add("d", "x", 1.0, [b, c])
        assert g.run().makespan == 5.0  # 1 + max(2,3) + 1

    def test_fifo_blocks_later_ready_tasks(self):
        """CUDA-stream semantics: a blocked head blocks the whole stream."""
        g = TaskGraph()
        slow = g.add("slow", "other", 10.0)
        g.add("head", "s", 1.0, [slow])  # waits for slow
        g.add("tail", "s", 1.0)  # ready immediately but behind head
        r = g.run()
        tail = next(t for t in r.tasks if t.name == "tail")
        assert tail.start == 11.0

    def test_empty_graph(self):
        assert TaskGraph().run().makespan == 0.0

    def test_forward_dependency_only(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("a", "s", 1.0, [5])

    def test_negative_duration_raises(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("a", "s", -1.0)

    def test_busy_accounting(self):
        g = TaskGraph()
        g.add("a", "s", 1.0)
        g.add("b", "s", 2.0)
        g.add("c", "t", 1.5)
        r = g.run()
        assert r.stream_busy == {"s": 3.0, "t": 1.5}
        assert r.busy_fraction("s") == 1.0
        assert r.total_duration("a") == 1.0


def wl(params=8e9, nl=10, hd=8192, heads=16, bsz=2, mp=1, accum=1):
    return SimWorkload(
        params=int(params),
        num_layers=nl,
        hidden_dim=hd,
        attn_heads=heads,
        batch_per_gpu=bsz,
        mp_degree=mp,
        grad_accumulation_steps=accum,
    )


class TestStepSimulator:
    def test_compute_bound_gpu_only(self):
        """ZeRO-3 on GPUs with overlap should approach 6/8 of peak (the
        recompute tax) at large batch."""
        sim = StepSimulator(
            dgx2_cluster(4), wl(bsz=16), policy_for_strategy(Strategy.ZERO_3)
        )
        b = sim.simulate()
        assert 40.0 < b.tflops_per_gpu < 6 / 8 * 70 + 1

    def test_overlap_beats_no_overlap(self):
        """Fig. 6d: prefetch/overlap matters."""
        cluster = dgx2_cluster(4)
        on = StepSimulator(
            cluster, wl(bsz=2), policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        off_policy = SimPolicy(
            name="no-overlap",
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            overlap=False,
        )
        off = StepSimulator(cluster, wl(bsz=2), off_policy).simulate()
        assert on.total_time < off.total_time
        assert on.tflops_per_gpu > off.tflops_per_gpu

    def test_overlap_gain_shrinks_with_batch(self):
        """Fig. 6d: the gain diminishes at large batch sizes."""
        cluster = dgx2_cluster(4)

        def speedup(bsz):
            on = StepSimulator(
                cluster, wl(bsz=bsz), policy_for_strategy(Strategy.ZERO_3)
            ).simulate()
            off_p = SimPolicy(name="off", overlap=False)
            off = StepSimulator(cluster, wl(bsz=bsz), off_p).simulate()
            return off.total_time / on.total_time

        assert speedup(2) > speedup(16) >= 1.0

    def test_bandwidth_centric_beats_owner_layout(self):
        """Fig. 6c: aggregate PCIe beats the single-link broadcast path."""
        cluster = dgx2_cluster(4)
        shared = dict(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        )
        fast = StepSimulator(
            cluster, wl(), SimPolicy(name="bc", bandwidth_centric=True, **shared)
        ).simulate()
        slow = StepSimulator(
            cluster,
            wl(),
            SimPolicy(
                name="owner",
                bandwidth_centric=False,
                partition_params=False,
                overlap=False,
                **shared,
            ),
        ).simulate()
        assert fast.total_time < slow.total_time

    def test_superlinear_weak_scaling(self):
        """Fig. 5b: per-GPU throughput rises with node count under NVMe."""
        tf = []
        for nodes in (4, 8, 16, 32):
            cfg = TABLE1_CONFIGS["1T-32node"]
            w = SimWorkload(
                params=cfg.params,
                num_layers=cfg.num_layers,
                hidden_dim=cfg.hidden_dim,
                attn_heads=cfg.attn_heads,
                batch_per_gpu=cfg.batch_per_gpu,
                mp_degree=4,
                grad_accumulation_steps=4,
            )
            b = StepSimulator(
                dgx2_cluster(nodes), w, policy_for_strategy(Strategy.ZERO_INF_NVME)
            ).simulate()
            tf.append(b.tflops_per_gpu)
        assert tf == sorted(tf)
        assert tf[-1] > 1.3 * tf[0]

    def test_throughput_declines_toward_extreme_scale(self):
        """Fig. 5a: 10T/20T lose throughput to tiny batch + NVMe traffic."""
        cluster = dgx2_cluster(32)
        results = {}
        for name in ("1T-32node", "10T-32node", "20T-32node"):
            cfg = TABLE1_CONFIGS[name]
            accum = max(1, round(4096 / cfg.total_batch))
            w = SimWorkload.from_config(cfg, grad_accumulation_steps=accum)
            pol = policy_from_config(cfg)
            results[name] = StepSimulator(cluster, w, pol).simulate().tflops_per_gpu
        assert results["1T-32node"] > results["10T-32node"] > results["20T-32node"]
        assert results["20T-32node"] > 15.0  # still doing useful work

    def test_act_offload_overhead_shrinks_with_hidden(self):
        """Fig. 6e: checkpoint offload costs ~1.2x at 2K, ~1x at 32K+."""
        cluster = dgx2_cluster(2)

        def overhead(hd):
            base_wl = wl(params=12 * 5 * hd * hd, nl=5, hd=hd, bsz=4)
            on = StepSimulator(
                cluster,
                base_wl,
                SimPolicy(
                    name="on",
                    optimizer_device=OffloadDevice.CPU,
                    act_offload=True,
                    overlap=False,
                ),
            ).simulate()
            off = StepSimulator(
                cluster,
                base_wl,
                SimPolicy(
                    name="off", optimizer_device=OffloadDevice.CPU, overlap=False
                ),
            ).simulate()
            return on.total_time / off.total_time

        small, large = overhead(2048), overhead(32768)
        assert small > large
        assert small > 1.05
        assert large < 1.1

    def test_chunked_nvme_optimizer_overlap(self):
        """Sec. 5.2.2: streaming the optimizer step overlaps I/O and CPU."""
        cluster = dgx2_cluster(1)
        w = wl(params=50e9, nl=62, hd=8192, bsz=8)
        on = StepSimulator(
            cluster, w, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        off_p = SimPolicy(
            name="serial-opt",
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            overlap=False,
        )
        off = StepSimulator(cluster, w, off_p).simulate()
        assert on.optimizer_time <= off.optimizer_time * 1.01

    def test_mp_must_divide_gpus(self):
        with pytest.raises(ValueError):
            StepSimulator(
                dgx2_cluster(1), wl(mp=3), policy_for_strategy(Strategy.ZERO_3)
            )

    def test_invalid_workload_raises(self):
        with pytest.raises(ValueError):
            wl(params=0)
        with pytest.raises(ValueError):
            wl(accum=0)

    def test_peak_param_memory_model(self):
        """Partitioned layouts hold a layer-sized working set; replicated
        layouts hold the whole model (the Fig. 6a mechanism, dynamically)."""
        cluster = dgx2_cluster(4)
        w = wl(params=64e9, nl=64)
        dp_policy = policy_for_strategy(Strategy.DATA_PARALLEL)
        z3 = policy_for_strategy(Strategy.ZERO_3)
        nvme = policy_for_strategy(Strategy.ZERO_INF_NVME)
        full = StepSimulator(cluster, w, dp_policy).peak_param_bytes_per_gpu()
        sharded = StepSimulator(cluster, w, z3).peak_param_bytes_per_gpu()
        offloaded = StepSimulator(cluster, w, nvme).peak_param_bytes_per_gpu()
        assert full == pytest.approx(2 * 64e9)
        assert sharded < full
        assert offloaded < sharded  # no resident shards at all
        # deeper prefetch raises the working set
        deeper = StepSimulator(cluster, w, nvme).peak_param_bytes_per_gpu(
            prefetch_depth=8
        )
        assert deeper > offloaded
        # NVMe working set stays within a single GPU's memory for a model
        # that could never fit replicated (the headline of the paper)
        assert offloaded < cluster.node.gpu.memory.capacity_bytes < full

    def test_accumulation_amortizes_optimizer(self):
        cluster = dgx2_cluster(1)
        pol = policy_for_strategy(Strategy.ZERO_INF_NVME)
        one = StepSimulator(cluster, wl(accum=1), pol).simulate()
        eight = StepSimulator(cluster, wl(accum=8), pol).simulate()
        assert eight.tflops_per_gpu > one.tflops_per_gpu
