"""CLI subcommands produce the expected tables and exit codes."""

import pytest

from repro.cli import build_parser, main


class TestScale:
    def test_default_table(self, capsys):
        assert main(["scale", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "zero-inf-nvme" in out
        assert "1.40T" in out

    def test_single_strategy(self, capsys):
        assert main(["scale", "--nodes", "1", "--strategy", "zero-3"]) == 0
        out = capsys.readouterr().out
        assert "zero-3" in out
        assert "data-parallel" not in out


class TestThroughput:
    def test_known_config(self, capsys):
        assert main(["throughput", "--config", "10B-1node"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPs/GPU" in out

    def test_unknown_config_exit_code(self, capsys):
        assert main(["throughput", "--config", "nope"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_node_override(self, capsys):
        assert main(
            ["throughput", "--config", "1T-32node", "--nodes", "8", "--accum", "2"]
        ) == 0
        assert "8 node(s)" in capsys.readouterr().out


class TestMemory:
    def test_gpt3_profile(self, capsys):
        assert main(
            ["memory", "--layers", "96", "--hidden", "12288", "--heads", "96"]
        ) == 0
        out = capsys.readouterr().out
        assert "173.95B" in out  # ~175B params via Eq. (1)
        assert "model states" in out
        assert "3.48 TB" in out  # 20 bytes x 174B params


class TestEfficiency:
    def test_headline_numbers(self, capsys):
        assert main(["efficiency", "--target", "0.9", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimizer" in out
        assert "TB/s" in out  # the ~1.23 TB/s optimizer row


class TestPlan:
    def test_1t_single_node_plan(self, capsys):
        assert main(["plan", "--params", "1T", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "nvme" in out
        assert "Placement plan" in out

    def test_10b_stays_on_gpu(self, capsys):
        assert main(["plan", "--params", "10B", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "fp16 params+grads" in out and "gpu" in out

    def test_unfittable_returns_error(self, capsys):
        assert main(["plan", "--params", "100T", "--nodes", "1"]) == 1
        assert "does not fit" in capsys.readouterr().err


class TestTrainDemo:
    @pytest.mark.parametrize("offload", ["gpu", "nvme"])
    def test_demo_runs_and_learns(self, capsys, offload):
        assert main(
            [
                "train-demo",
                "--world",
                "2",
                "--steps",
                "4",
                "--hidden",
                "32",
                "--offload",
                offload,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "done: loss" in out


class TestDoctor:
    def test_all_checks_pass(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "all systems nominal" in out
        assert out.count("[ok  ]") == 4
        assert "[FAIL]" not in out


class TestCheckStatic:
    def test_one_cell_proves(self, capsys):
        assert main(
            ["check-static", "--stage", "3", "--world", "2", "--no-lint"]
        ) == 0
        out = capsys.readouterr().out
        assert "Static SPMD schedule verification" in out
        assert "proved" in out
        assert "stage3-w2-mp" in out

    def test_empty_filter_is_usage_error(self, capsys):
        assert main(["check-static", "--world", "9", "--no-lint"]) == 2
        assert "no matrix cell" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])
