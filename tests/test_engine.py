"""ZeroInfinityEngine end-to-end: numerical equivalence with DDP across
every stage and placement, loss scaling, reporting, and lifecycle.

These are the headline correctness tests of the reproduction: training with
ZeRO-3 + NVMe offload must produce the same losses and weights as classic
data parallelism, step for step.
"""

import numpy as np
import pytest

from repro.baselines.ddp import DDPTrainer
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.nn.parameter import PartitionState
from repro.utils.rng import seeded_rng


WORLD = 4
VOCAB = 64


def model_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(7))


def make_batches(steps, seed=3, bsz=2, seq=8):
    rng = seeded_rng(seed)
    out = []
    for _ in range(steps):
        out.append(
            [
                (
                    rng.integers(0, VOCAB, size=(bsz, seq)),
                    rng.integers(0, VOCAB, size=(bsz, seq)),
                )
                for _ in range(WORLD)
            ]
        )
    return out


def ddp_reference(all_batches, lr=1e-2):
    ddp = DDPTrainer(model_factory, WORLD, lr=lr)
    losses = [np.mean(ddp.train_step(b)) for b in all_batches]
    return losses, ddp.state_dict()


def zero_config(stage, param_dev, grad_dev, opt_dev, **kw):
    return ZeroConfig(
        world_size=WORLD,
        stage=stage,
        offload=OffloadConfig(
            param_device=param_dev,
            grad_device=grad_dev,
            optimizer_device=opt_dev,
            optimizer_chunk_numel=97,  # prime: exercises chunk remainders
        ),
        loss_scale=1.0,
        **kw,
    )


G, C, N = OffloadDevice.NONE, OffloadDevice.CPU, OffloadDevice.NVME

PLACEMENTS = [
    pytest.param(ZeroStage.NONE, G, G, G, id="dp-baseline"),
    pytest.param(ZeroStage.OPTIMIZER, G, G, G, id="zero1"),
    pytest.param(ZeroStage.GRADIENTS, G, G, G, id="zero2"),
    pytest.param(ZeroStage.GRADIENTS, G, C, C, id="zero-offload"),
    pytest.param(ZeroStage.PARAMETERS, G, G, G, id="zero3"),
    pytest.param(ZeroStage.PARAMETERS, C, C, C, id="inf-cpu"),
    pytest.param(ZeroStage.PARAMETERS, N, N, N, id="inf-nvme"),
    pytest.param(ZeroStage.PARAMETERS, N, C, N, id="inf-mixed"),
]


class TestEquivalenceWithDDP:
    """Every strategy trains identically to the DDP oracle (Sec. 2: ZeRO
    'retain[s] ... computational granularity and communication efficiency'
    of data parallelism — and its numerics)."""

    @pytest.fixture(scope="class")
    def reference(self):
        batches = make_batches(3)
        losses, state = ddp_reference(batches)
        return batches, losses, state

    @pytest.mark.parametrize("stage,pdev,gdev,odev", PLACEMENTS)
    def test_losses_and_weights_match(self, reference, stage, pdev, gdev, odev):
        batches, ref_losses, ref_state = reference
        cfg = zero_config(stage, pdev, gdev, odev)
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            for step, b in enumerate(batches):
                result = eng.train_step(b)
                assert result.mean_loss == pytest.approx(
                    ref_losses[step], rel=1e-5
                ), f"step {step}"
            state = eng.gather_state()
        for name, ref in ref_state.items():
            np.testing.assert_allclose(
                state[name], ref, rtol=1e-4, atol=1e-6, err_msg=name
            )

    def test_owner_layout_also_equivalent(self, reference):
        """bandwidth_centric=False changes data paths, not numerics."""
        batches, ref_losses, _ = reference
        cfg = zero_config(ZeroStage.PARAMETERS, C, C, C, bandwidth_centric=False)
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            for step, b in enumerate(batches):
                assert eng.train_step(b).mean_loss == pytest.approx(
                    ref_losses[step], rel=1e-5
                )

    def test_prefetch_off_equivalent(self, reference):
        batches, ref_losses, _ = reference
        cfg = zero_config(ZeroStage.PARAMETERS, N, N, N)
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=cfg.offload,
            loss_scale=1.0,
            prefetch_depth=0,
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            for step, b in enumerate(batches):
                assert eng.train_step(b).mean_loss == pytest.approx(
                    ref_losses[step], rel=1e-5
                )

    def test_activation_checkpointing_equivalent(self, reference):
        batches, ref_losses, _ = reference

        def ckpt_factory():
            cfg = TransformerConfig(
                num_layers=2,
                hidden_dim=32,
                num_heads=4,
                vocab_size=VOCAB,
                max_seq=16,
                activation_checkpointing=True,
            )
            return GPTModel(cfg, rng=seeded_rng(7))

        cfg = zero_config(ZeroStage.PARAMETERS, N, N, N)
        with ZeroInfinityEngine(cfg, model_factory=ckpt_factory, lr=1e-2) as eng:
            for step, b in enumerate(batches):
                assert eng.train_step(b).mean_loss == pytest.approx(
                    ref_losses[step], rel=1e-5
                )


class TestPartitionedInit:
    def test_model_never_fully_materialized(self):
        cfg = zero_config(ZeroStage.PARAMETERS, N, N, N)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            ctx = eng.init_context
            assert ctx is not None
            total = sum(p.full_numel for p in eng.model.parameters()) * 4
            # peak transient = the single largest parameter, far below total
            assert ctx.peak_unpartitioned_bytes < total / 2
            assert ctx.partitioned_parameters == len(
                list(eng.model.named_parameters())
            )

    def test_all_params_partitioned_after_init(self):
        cfg = zero_config(ZeroStage.PARAMETERS, C, C, C)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            states = {p.state for p in eng.model.parameters()}
            assert states == {PartitionState.PARTITIONED}

    def test_prebuilt_model_partitioned_post_hoc(self):
        model = model_factory()
        cfg = zero_config(ZeroStage.PARAMETERS, G, G, G)
        with ZeroInfinityEngine(cfg, model=model) as eng:
            assert all(
                p.state is PartitionState.PARTITIONED for p in model.parameters()
            )

    def test_both_model_args_raise(self):
        cfg = zero_config(ZeroStage.PARAMETERS, G, G, G)
        with pytest.raises(ValueError):
            ZeroInfinityEngine(cfg, model=model_factory(), model_factory=model_factory)
        with pytest.raises(ValueError):
            ZeroInfinityEngine(cfg)


class TestLossScaling:
    def test_dynamic_scaler_skips_overflow_steps(self):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(),
            loss_scale=None,  # dynamic
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            init_scale = eng.scaler.loss_scale
            assert init_scale == 2.0**16
            batches = make_batches(2)
            r1 = eng.train_step(batches[0])
            # fp32 model with scale 65536 should not overflow
            assert not r1.skipped

    def test_static_scale_equivalence(self):
        """Training with static scale k == training with scale 1."""
        batches = make_batches(3, seed=9)
        losses = {}
        for scale in (1.0, 256.0):
            cfg = ZeroConfig(
                world_size=WORLD,
                stage=ZeroStage.PARAMETERS,
                offload=OffloadConfig(),
                loss_scale=scale,
            )
            with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
                losses[scale] = [eng.train_step(b).mean_loss for b in batches]
        np.testing.assert_allclose(losses[1.0], losses[256.0], rtol=1e-4)


class TestEngineBehaviour:
    def test_wrong_batch_count_raises(self):
        cfg = zero_config(ZeroStage.PARAMETERS, G, G, G)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            with pytest.raises(ValueError):
                eng.train_step(make_batches(1)[0][:2])

    def test_evaluate_does_not_update(self):
        cfg = zero_config(ZeroStage.PARAMETERS, C, C, C)
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            b = make_batches(1)[0]
            before = eng.gather_state()
            eng.evaluate(*b[0])
            after = eng.gather_state()
            for name in before:
                np.testing.assert_array_equal(before[name], after[name])

    def test_report_counts_movement(self):
        cfg = zero_config(ZeroStage.PARAMETERS, N, N, N)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            eng.train_step(make_batches(1)[0])
            eng.train_step(make_batches(1, seed=5)[0])
            rep = eng.report()
            assert rep.nvme_read_bytes > 0
            assert rep.nvme_write_bytes > 0
            assert rep.gathers > 0 and rep.releases > 0
            assert rep.prefetch_hits > 0  # second step prefetches
            assert rep.comm_bytes_by_op.get("allgather", 0) > 0
            assert rep.comm_bytes_by_op.get("reduce_scatter", 0) > 0

    def test_bandwidth_centric_spreads_link_traffic(self):
        cfg = zero_config(ZeroStage.PARAMETERS, C, C, C)
        with ZeroInfinityEngine(cfg, model_factory=model_factory) as eng:
            eng.train_step(make_batches(1)[0])
            rep = eng.report()
            assert len(rep.host_link_bytes) == WORLD
            loads = list(rep.host_link_bytes.values())
            assert max(loads) < 2 * min(loads)  # roughly even

    def test_training_reduces_loss_over_steps(self):
        cfg = zero_config(ZeroStage.PARAMETERS, N, N, N)
        rng = seeded_rng(0)
        fixed = [
            (rng.integers(0, VOCAB, (2, 8)), rng.integers(0, VOCAB, (2, 8)))
            for _ in range(WORLD)
        ]
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=5e-3) as eng:
            first = eng.train_step(fixed).mean_loss
            for _ in range(15):
                last = eng.train_step(fixed).mean_loss
            assert last < first * 0.8

    def test_world_size_one(self):
        cfg = ZeroConfig(
            world_size=1,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(param_device=N, optimizer_device=N),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            b = make_batches(1)[0][:1]
            r = eng.train_step(b)
            assert np.isfinite(r.mean_loss)


class TestTilingIntegration:
    def test_engine_tiles_oversized_linears(self):
        cfg = ZeroConfig(
            world_size=2,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(),
            loss_scale=1.0,
            tile_linear_threshold_numel=32 * 32 * 2,  # tile the (hd,4hd) MLPs
            tile_factor=4,
        )
        with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as eng:
            from repro.core.tiling import TiledLinear

            tiled = [m for m in eng.model.modules() if isinstance(m, TiledLinear)]
            assert tiled  # the 32->128 and 128->32 MLP linears qualify
            rng = seeded_rng(4)
            b = [
                (rng.integers(0, VOCAB, (2, 8)), rng.integers(0, VOCAB, (2, 8)))
                for _ in range(2)
            ]
            r = eng.train_step(b)
            assert np.isfinite(r.mean_loss)

    def test_tiled_engine_matches_untiled(self):
        batches = make_batches(2, seed=21)

        def run(tile_factor):
            cfg = ZeroConfig(
                world_size=WORLD,
                stage=ZeroStage.PARAMETERS,
                offload=OffloadConfig(),
                loss_scale=1.0,
                tile_linear_threshold_numel=32 * 32 * 2 if tile_factor > 1 else None,
                tile_factor=tile_factor,
            )
            with ZeroInfinityEngine(cfg, model_factory=model_factory, lr=1e-2) as e:
                return [e.train_step(b).mean_loss for b in batches]

        np.testing.assert_allclose(run(1), run(4), rtol=1e-5)
