"""Fused flat-buffer ZeRO-1/2: equivalence and the collective-count win."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ddp import DDPTrainer
from repro.core.fused import FusedLayout, FusedZeroTrainer
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 3
VOCAB = 32


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3))


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8))) for r in rngs
    ]


class TestFusedLayout:
    def test_offsets_contiguous(self):
        layout = FusedLayout.build(list(factory().named_parameters()), WORLD)
        off = 0
        for _, shape, sl in layout.slices():
            assert sl.start == off
            off = sl.stop
        assert off == layout.total_numel
        assert layout.padded_numel % WORLD == 0

    @given(world=st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_padding_divisible_property(self, world):
        layout = FusedLayout.build(list(factory().named_parameters()), world)
        assert layout.padded_numel % world == 0
        assert layout.padded_numel >= layout.total_numel


class TestFusedEquivalence:
    def test_matches_ddp_over_steps(self):
        all_batches = [batches(s) for s in range(3)]
        ddp = DDPTrainer(factory, WORLD, lr=1e-2)
        fused = FusedZeroTrainer(factory, WORLD, lr=1e-2)
        for b in all_batches:
            ref = ddp.train_step(b)
            got = fused.train_step(b)
            np.testing.assert_allclose(got, ref, rtol=1e-6)
        ref_state = ddp.state_dict()
        for name, value in fused.state_dict().items():
            np.testing.assert_allclose(
                value, ref_state[name], rtol=1e-4, atol=1e-6, err_msg=name
            )

    @pytest.mark.parametrize("bucket", [64, 999, 1 << 20])
    def test_bucket_size_does_not_change_numerics(self, bucket):
        b = batches(seed=7)
        ref = FusedZeroTrainer(factory, WORLD, lr=1e-2, bucket_numel=1 << 20)
        ref.train_step(b)
        other = FusedZeroTrainer(factory, WORLD, lr=1e-2, bucket_numel=bucket)
        other.train_step(b)
        for name, v in ref.state_dict().items():
            np.testing.assert_allclose(
                other.state_dict()[name], v, rtol=1e-5, atol=1e-7, err_msg=name
            )

    def test_replicas_stay_synchronized(self):
        fused = FusedZeroTrainer(factory, WORLD, lr=1e-2)
        for s in range(2):
            fused.train_step(batches(s))
        states = [fused.state_dict(r) for r in range(WORLD)]
        for name in states[0]:
            for other in states[1:]:
                np.testing.assert_array_equal(states[0][name], other[name])


class TestCollectiveCounts:
    def test_two_collectives_per_step_unbucketed(self):
        """The fusion headline: 2 collectives/step vs DDP's one-per-param."""
        fused = FusedZeroTrainer(factory, WORLD, lr=1e-2, bucket_numel=1 << 30)
        fused.train_step(batches())
        assert fused.collective_calls_per_step == 2  # 1 RS + 1 AG

    def test_bucketing_adds_reduce_calls_only(self):
        layout_numel = FusedLayout.build(
            list(factory().named_parameters()), WORLD
        ).padded_numel
        bucket = 1000
        fused = FusedZeroTrainer(factory, WORLD, lr=1e-2, bucket_numel=bucket)
        fused.train_step(batches())
        from repro.tensor.flat import pad_to_multiple

        eff_bucket = pad_to_multiple(bucket, WORLD)
        expected_rs = -(-layout_numel // eff_bucket)  # ceil
        assert fused.comm.stats.calls_by_op["reduce_scatter"] == expected_rs
        assert fused.comm.stats.calls_by_op["allgather"] == 1

    def test_ddp_issues_one_collective_per_param(self):
        ddp = DDPTrainer(factory, WORLD, lr=1e-2)
        ddp.train_step(batches())
        n_params = len(list(ddp.replicas[0].named_parameters()))
        assert ddp.comm.stats.calls_by_op["allreduce"] == n_params
        fused = FusedZeroTrainer(factory, WORLD, lr=1e-2, bucket_numel=1 << 30)
        fused.train_step(batches())
        assert fused.comm.stats.total_calls < ddp.comm.stats.total_calls

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FusedZeroTrainer(factory, 0)
        with pytest.raises(ValueError):
            FusedZeroTrainer(factory, 2, bucket_numel=0)
        fused = FusedZeroTrainer(factory, WORLD)
        with pytest.raises(ValueError):
            fused.train_step(batches()[:1])
