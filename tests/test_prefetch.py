"""Dynamic prefetcher: trace recording, lookahead, invalidation/recovery."""

import numpy as np
import pytest

from repro.core.config import OffloadConfig, OffloadDevice
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.core.prefetch import DynamicPrefetcher, OperatorTrace
from repro.nn.layers import Linear
from repro.utils.rng import seeded_rng


@pytest.fixture
def setup():
    cfg = OffloadConfig(param_device=OffloadDevice.NVME)
    offload = InfinityOffloadEngine(cfg)
    part = ParameterPartitioner(2, offload=offload)
    mods = [Linear(4, 4, rng=seeded_rng(i)) for i in range(5)]
    for m in mods:
        for p in m.direct_parameters():
            part.partition(p)
    yield offload, part, mods
    offload.close()


class TestOperatorTrace:
    def test_record_and_replay(self, setup):
        _, _, mods = setup
        trace = OperatorTrace()
        trace.record(mods[0], "fwd")
        trace.record(mods[1], "fwd")
        trace.finish()
        assert len(trace) == 2
        assert trace.module_at(1) is mods[1]

    def test_record_after_finish_raises(self, setup):
        _, _, mods = setup
        trace = OperatorTrace()
        trace.finish()
        with pytest.raises(RuntimeError):
            trace.record(mods[0], "fwd")


class TestDynamicPrefetcher:
    def run_iteration(self, pf, mods, phases=("fwd",)):
        pf.begin_iteration()
        for phase in phases:
            seq = mods if phase == "fwd" else reversed(mods)
            for m in seq:
                pf.on_execute(m, phase)
        pf.end_iteration()

    def test_first_iteration_records(self, setup):
        offload, part, mods = setup
        pf = DynamicPrefetcher(offload, part, depth=2)
        self.run_iteration(pf, mods, ("fwd", "bwd"))
        assert pf.trace is not None
        assert len(pf.trace) == 10
        assert pf.issued == 0  # recording iteration issues nothing

    def test_second_iteration_prefetches(self, setup):
        offload, part, mods = setup
        pf = DynamicPrefetcher(offload, part, depth=2)
        self.run_iteration(pf, mods)
        self.run_iteration(pf, mods)
        assert pf.issued > 0
        assert pf.invalidations == 0

    def test_prefetched_reads_are_consumed_by_gather(self, setup):
        offload, part, mods = setup
        pf = DynamicPrefetcher(offload, part, depth=3)
        self.run_iteration(pf, mods)
        pf.begin_iteration()
        pf.on_execute(mods[0], "fwd")  # prefetch for mods[1..3] issued
        part.gather(mods[1].weight)
        assert offload.counters.prefetch_hits > 0
        part.release(mods[1].weight)
        pf.end_iteration()

    def test_depth_zero_never_issues(self, setup):
        offload, part, mods = setup
        pf = DynamicPrefetcher(offload, part, depth=0)
        self.run_iteration(pf, mods)
        self.run_iteration(pf, mods)
        assert pf.issued == 0

    def test_dynamic_graph_invalidates_and_recovers(self, setup):
        """Sec. 6.2: the operator map updates on dynamic workflows."""
        offload, part, mods = setup
        pf = DynamicPrefetcher(offload, part, depth=2)
        self.run_iteration(pf, mods)  # records order 0..4
        # iteration with different order -> invalidate + re-record
        pf.begin_iteration()
        reordered = [mods[0], mods[2], mods[1], mods[3], mods[4]]
        for m in reordered:
            pf.on_execute(m, "fwd")
        pf.end_iteration()
        assert pf.invalidations == 1
        assert pf.trace is not None  # re-recorded
        # next iteration with the new order prefetches again
        issued_before = pf.issued
        pf.begin_iteration()
        for m in reordered:
            pf.on_execute(m, "fwd")
        pf.end_iteration()
        assert pf.invalidations == 1
        assert pf.issued > issued_before

    def test_available_params_not_prefetched(self, setup):
        offload, part, mods = setup
        for m in mods:
            part.gather(m.weight)
            part.gather(m.bias)
        pf = DynamicPrefetcher(offload, part, depth=2)
        self.run_iteration(pf, mods)
        self.run_iteration(pf, mods)
        assert pf.issued == 0  # nothing partitioned, nothing to fetch

    def test_negative_depth_raises(self, setup):
        offload, part, _ = setup
        with pytest.raises(ValueError):
            DynamicPrefetcher(offload, part, depth=-1)

    def test_shorter_iteration_then_longer(self, setup):
        """Trace shorter than execution also invalidates cleanly."""
        offload, part, mods = setup
        self_pf = DynamicPrefetcher(offload, part, depth=1)
        self.run_iteration(self_pf, mods[:2])
        self_pf.begin_iteration()
        for m in mods:  # longer than the trace
            self_pf.on_execute(m, "fwd")
        self_pf.end_iteration()
        assert self_pf.invalidations == 1
