"""Gantt rendering and phase summaries of simulated timelines."""

import pytest

from repro.core.config import Strategy
from repro.hardware import dgx2_cluster
from repro.sim import (
    SimWorkload,
    StepSimulator,
    TaskGraph,
    phase_summary,
    policy_for_strategy,
    render_gantt,
)


def small_graph():
    g = TaskGraph()
    a = g.add("compute-fwd:0", "compute", 2.0)
    b = g.add("nc-fetch:1", "nc", 1.0)
    g.add("compute-fwd:1", "compute", 2.0, [a, b])
    return g.run()


class TestRenderGantt:
    def test_contains_all_streams(self):
        out = render_gantt(small_graph())
        assert "compute" in out and "nc" in out

    def test_busy_fractions_shown(self):
        out = render_gantt(small_graph())
        assert "100%" in out  # compute is busy the whole makespan
        assert "25%" in out  # nc: 1s of 4s

    def test_width_respected(self):
        out = render_gantt(small_graph(), width=40)
        body = [l for l in out.splitlines() if "|" in l]
        for line in body:
            inner = line.split("|")[1]
            assert len(inner) == 40

    def test_legend_lists_prefixes(self):
        out = render_gantt(small_graph())
        assert "compute-fwd" in out and "nc-fetch" in out

    def test_legend_maps_markers_to_prefixes(self):
        out = render_gantt(small_graph())
        legend = next(l for l in out.splitlines() if "legend:" in l)
        # markers rotate through prefixes in sorted order
        assert "#=compute-fwd" in legend
        assert "==nc-fetch" in legend

    def test_makespan_footer(self):
        out = render_gantt(small_graph(), width=40)
        footer = next(l for l in out.splitlines() if "makespan" in l)
        assert "makespan 4s" in footer  # 2s fwd + 2s dependent fwd
        assert "40 cols" in footer
        assert "0.1s/col" in footer

    def test_footer_lines_follow_chart(self):
        lines = render_gantt(small_graph()).splitlines()
        assert "legend:" in lines[-2]
        assert "makespan" in lines[-1]

    def test_empty_graph(self):
        assert render_gantt(TaskGraph().run()) == "(empty timeline)"

    def test_real_step_renders(self):
        wl = SimWorkload(
            params=int(8e9),
            num_layers=4,
            hidden_dim=8192,
            attn_heads=16,
            batch_per_gpu=2,
        )
        b = StepSimulator(
            dgx2_cluster(1), wl, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        out = render_gantt(b.result)
        for stream in ("compute", "nc", "cg", "gg"):
            assert stream in out


class TestPhaseSummary:
    def test_sums_by_prefix(self):
        summary = phase_summary(small_graph())
        assert summary["compute-fwd"] == pytest.approx(4.0)
        assert summary["nc-fetch"] == pytest.approx(1.0)

    def test_full_step_phases_present(self):
        wl = SimWorkload(
            params=int(8e9),
            num_layers=4,
            hidden_dim=8192,
            attn_heads=16,
            batch_per_gpu=2,
        )
        b = StepSimulator(
            dgx2_cluster(1), wl, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        phases = phase_summary(b.result)
        for expected in (
            "compute-fwd",
            "compute-bwd",
            "nc-fetch",
            "cg-fetch",
            "gg-allgather",
            "rs-reduce_scatter",
            "opt-nc-stream",
        ):
            assert expected in phases, expected
        # backward compute is 3x forward (2x grad + 1x recompute)
        assert phases["compute-bwd"] == pytest.approx(
            3 * phases["compute-fwd"], rel=1e-6
        )
