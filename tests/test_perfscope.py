"""Time observability: exact step ledgers, critical path, drift report.

Four layers of guarantees, mirroring ``tests/test_memscope.py`` on the
time axis:

* **Accounting exactness** — for every traced step, ``compute + comm +
  nvme_io + stall + overlap`` equals the step wall-clock exactly, across
  ZeRO stages 2/3, world sizes 1/2/4 and CPU/NVMe placement.
* **Critical path** — on an analytically known :mod:`repro.sim` schedule
  the extracted gating chain is exactly the chain that set the makespan;
  on a real trace the path explains most of the step.
* **Zero-interference** — a traced run is bit-identical to an untraced
  one, and aborted steps force-close their dangling worker spans.
* **Drift report** — a bandwidth-starved NVMe run is flagged by
  Eq. (6) with a matching recommendation; a machine-rate ``peak_tp``
  clears the same run.
"""

import contextlib
import threading

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
)
from repro.core.config import ZeroStage
from repro.nn import GPTModel, TransformerConfig
from repro.obs.perfreport import build_perfreport
from repro.obs.perfscope import (
    PHASES,
    STALL_CAUSES,
    build_step_ledgers,
    classify_span,
    critical_path_from_sim,
    critical_path_from_trace,
    render_perf_breakdown,
    stall_span,
    summarize_ledgers,
)
from repro.obs.tracer import Tracer, use_tracer
from repro.sim.events import TaskGraph
from repro.utils.rng import seeded_rng


def tiny_model_cfg(**kw) -> TransformerConfig:
    base = dict(
        num_layers=2,
        hidden_dim=16,
        num_heads=2,
        vocab_size=32,
        max_seq=8,
        activation_checkpointing=True,
    )
    base.update(kw)
    return TransformerConfig(**base)


def tiny_batches(world: int, *, seed: int = 2):
    rng = seeded_rng(seed)
    return [
        (rng.integers(0, 32, (1, 8)), rng.integers(0, 32, (1, 8)))
        for _ in range(world)
    ]


def traced_run(
    *,
    stage: ZeroStage,
    world: int,
    device: OffloadDevice,
    nvme_dir=None,
    steps: int = 2,
):
    offload = OffloadConfig(
        param_device=(
            device if stage >= ZeroStage.PARAMETERS else OffloadDevice.NONE
        ),
        grad_device=device,
        optimizer_device=device,
        nvme_dir=str(nvme_dir) if nvme_dir is not None else None,
    )
    cfg = ZeroConfig(
        world_size=world, stage=stage, offload=offload, loss_scale=1.0
    )
    tracer = Tracer(enabled=True)
    with use_tracer(tracer), ZeroInfinityEngine(
        cfg,
        model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
    ) as eng:
        for _ in range(steps):
            eng.train_step(tiny_batches(world))
        report = eng.report()
    return tracer, report


def assert_exact(ledger) -> None:
    """The phases-sum-to-wall invariant, with non-negative buckets."""
    phases = ledger.phase_us()
    assert set(phases) == set(PHASES)
    for phase, us in phases.items():
        assert us >= 0.0, (phase, us)
    assert ledger.accounted_us() == pytest.approx(ledger.wall_us, abs=1e-6)
    assert ledger.residual_us < 1.0, ledger
    for s in ledger.stalls:
        assert s.cause in STALL_CAUSES
        assert s.total_us >= 0.0
    # segments tile the window without gaps on the stepping lane
    assert ledger.stall_us == pytest.approx(
        sum(s.total_us for s in ledger.stalls), abs=1e-6
    )


# --- accounting exactness ----------------------------------------------------
class TestAccountingExactness:
    @pytest.mark.parametrize(
        "stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS]
    )
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_exact_without_offload(self, stage, world):
        tracer, report = traced_run(
            stage=stage, world=world, device=OffloadDevice.NONE
        )
        ledgers = build_step_ledgers(tracer)
        assert len(ledgers) == 2
        for ledger in ledgers:
            assert_exact(ledger)
        assert report.perf_steps_traced == 2
        assert report.perf_phase_us["compute"] > 0

    @pytest.mark.parametrize(
        "stage", [ZeroStage.GRADIENTS, ZeroStage.PARAMETERS]
    )
    def test_exact_with_nvme(self, stage, tmp_path):
        tracer, report = traced_run(
            stage=stage,
            world=2,
            device=OffloadDevice.NVME,
            nvme_dir=tmp_path,
        )
        ledgers = build_step_ledgers(tracer)
        assert len(ledgers) == 2
        for ledger in ledgers:
            assert_exact(ledger)
        # an NVMe-offloaded step moves real bytes and waits on real I/O
        assert report.perf_phase_us["nvme_io"] + report.perf_phase_us[
            "stall"
        ] > 0
        causes = {
            s.cause for ledger in ledgers for s in ledger.stalls
        }
        assert causes & {"optimizer_io_tail", "pinned_wait", "prefetch_miss"}

    def test_exact_with_cpu_offload(self):
        tracer, _ = traced_run(
            stage=ZeroStage.PARAMETERS, world=2, device=OffloadDevice.CPU
        )
        for ledger in build_step_ledgers(tracer):
            assert_exact(ledger)

    def test_summary_and_render(self, tmp_path):
        tracer, _ = traced_run(
            stage=ZeroStage.PARAMETERS,
            world=2,
            device=OffloadDevice.NVME,
            nvme_dir=tmp_path,
        )
        ledgers = build_step_ledgers(tracer)
        summary = summarize_ledgers(ledgers)
        assert summary.steps == len(ledgers)
        fractions = summary.phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-9)
        text = render_perf_breakdown(
            ledgers, critical_path_from_trace(tracer, ledgers[-1])
        )
        assert "compute" in text and "stall" in text


# --- critical path on analytic schedules -------------------------------------
class TestCriticalPathSim:
    def test_serial_chain_is_the_path(self):
        g = TaskGraph()
        fwd = g.add("fwd", "compute", 10.0)
        bwd = g.add("bwd", "compute", 20.0, deps=[fwd])
        g.add("opt_write", "nvme", 30.0, deps=[bwd])
        res = g.run()
        assert res.makespan == pytest.approx(60.0)
        path = critical_path_from_sim(res)
        assert path.names() == ["fwd", "bwd", "opt_write"]
        assert path.coverage() == pytest.approx(1.0)
        assert path.slack_us == [pytest.approx(0.0)] * 2

    def test_io_gated_step_detours_through_nvme(self):
        # fwd (10) overlaps a 15-unit parameter read; bwd needs both, so
        # the read gates the step and fwd has slack — exactly Eq. (6)'s
        # bandwidth-bound regime.
        g = TaskGraph()
        fwd = g.add("fwd", "compute", 10.0)
        read = g.add("param_read", "nvme", 15.0)
        g.add("bwd", "compute", 20.0, deps=[fwd, read])
        res = g.run()
        assert res.makespan == pytest.approx(35.0)
        path = critical_path_from_sim(res)
        assert path.names() == ["param_read", "bwd"]
        assert path.coverage() == pytest.approx(1.0)
        # fully overlapped compute: the nvme stream is busy 15/35 of the
        # step but only the non-overlapped 5 units extend the makespan
        assert res.busy_fraction("nvme") == pytest.approx(15.0 / 35.0)

    def test_overlapped_io_stays_off_the_path(self):
        g = TaskGraph()
        fwd = g.add("fwd", "compute", 10.0)
        g.add("prefetch", "nvme", 4.0)
        g.add("bwd", "compute", 20.0, deps=[fwd])
        res = g.run()
        path = critical_path_from_sim(res)
        assert "prefetch" not in path.names()
        assert path.names() == ["fwd", "bwd"]

    def test_trace_path_explains_the_step(self, tmp_path):
        tracer, _ = traced_run(
            stage=ZeroStage.PARAMETERS,
            world=2,
            device=OffloadDevice.NVME,
            nvme_dir=tmp_path,
        )
        ledger = build_step_ledgers(tracer)[-1]
        path = critical_path_from_trace(tracer, ledger)
        assert path.makespan_us == pytest.approx(ledger.wall_us)
        assert path.coverage() > 0.9
        top = path.top_segments(3)
        assert len(top) == 3
        assert top[0].dur_us >= top[1].dur_us >= top[2].dur_us


# --- zero interference and abort honesty -------------------------------------
class TestZeroInterference:
    def test_tracing_is_bit_identical(self):
        def final_state(traced: bool):
            cfg = ZeroConfig(
                world_size=2, offload=OffloadConfig(), loss_scale=1.0
            )
            ctx = (
                use_tracer(Tracer(enabled=True))
                if traced
                else contextlib.nullcontext()
            )
            with ctx, ZeroInfinityEngine(
                cfg,
                model_factory=lambda: GPTModel(
                    tiny_model_cfg(), rng=seeded_rng(0)
                ),
            ) as eng:
                losses = []
                for _ in range(3):
                    losses.append(eng.train_step(tiny_batches(2)).mean_loss)
                return losses, eng.gather_state()

        losses_off, state_off = final_state(False)
        losses_on, state_on = final_state(True)
        assert losses_off == losses_on
        assert state_off.keys() == state_on.keys()
        for name in state_off:
            np.testing.assert_array_equal(state_off[name], state_on[name])

    def test_force_close_commits_dangling_worker_spans(self):
        tracer = Tracer(enabled=True)
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with tracer.span("nvme:pwrite", cat="nvme", req=7):
                entered.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=worker)
        with use_tracer(tracer):
            t.start()
            assert entered.wait(timeout=5.0)
            assert tracer.open_span_names() == ["nvme:pwrite"]
            closed = tracer.force_close_open(reason="abort_step")
            assert closed == 1
            assert tracer.force_closed == 1
            assert tracer.open_span_names() == []
            release.set()
            t.join(timeout=5.0)
        records = [r for r in tracer.records() if r.name == "nvme:pwrite"]
        # exactly one record: the forced close won the pop, the worker's
        # own __exit__ saw the span already committed and stayed silent
        assert len(records) == 1
        assert records[0].args["aborted"] is True
        assert records[0].args["reason"] == "abort_step"
        assert records[0].args["req"] == 7

    def test_aborted_step_force_closes_and_recovers(self):
        cfg = ZeroConfig(
            world_size=1,
            offload=OffloadConfig(activation_device=OffloadDevice.CPU),
            loss_scale=1.0,
            step_retries=0,
        )
        tracer = Tracer(enabled=True)
        with use_tracer(tracer), ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            eng.train_step(tiny_batches(1))
            block1 = dict(eng.model.named_modules())["block1"]
            inner_fwd = block1.inner.forward

            def boom(x):
                raise RuntimeError("mid-forward fault")

            block1.inner.forward = boom
            with pytest.raises(RuntimeError, match="mid-forward fault"):
                eng.train_step(tiny_batches(1))
            block1.inner.forward = inner_fwd

            # the unwind leaves no dangling spans behind on any lane
            assert tracer.open_span_names() == []
            eng.train_step(tiny_batches(1))
            report = eng.report()
        ledgers = build_step_ledgers(tracer)
        # the aborted step's span still commits on unwind, so all three
        # windows ledger — and every one of them stays exact
        assert len(ledgers) == 3
        for ledger in ledgers:
            assert_exact(ledger)
        assert report.perf_steps_traced == 3


# --- drift report ------------------------------------------------------------
class TestPerfReport:
    def run_nvme(self, tmp_path):
        cfg = ZeroConfig(
            world_size=2,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
                nvme_dir=str(tmp_path),
            ),
            loss_scale=1.0,
        )
        tracer = Tracer(enabled=True)
        with use_tracer(tracer), ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            for _ in range(2):
                eng.train_step(tiny_batches(2))
            return tracer, eng

    def test_starved_nvme_is_flagged_with_recommendation(self, tmp_path):
        tracer, eng = self.run_nvme(tmp_path)
        # at the paper's 70 TFLOPs peak, Eq. (6) requires NVMe bandwidth
        # no real disk (let alone this tmpfs shim) can deliver for a
        # tiny-AIT workload — the drift report must call that out
        report = build_perfreport(eng, tracer, bsz=2, seq=8, ci=1)
        row = report.drift_row("nvme bandwidth (Eq. 6)")
        assert row is not None
        assert row.measured > 0
        assert row.flagged(report.tolerance)
        assert row in report.flagged()
        assert any("nvme" in r.lower() for r in report.recommendations)
        text = report.render()
        assert "Eq. 6" in text and "drift" in text.lower()

    def test_modest_peak_clears_the_same_run(self, tmp_path):
        tracer, eng = self.run_nvme(tmp_path)
        # against a 1 MFLOPs "accelerator" the measured bandwidth is
        # ample: the bandwidth row must clear, whatever else drifts
        report = build_perfreport(eng, tracer, bsz=2, seq=8, ci=1, peak_tp=1e6)
        row = report.drift_row("nvme bandwidth (Eq. 6)")
        assert row is not None
        assert not row.flagged(report.tolerance)

    def test_measured_tiers_carry_bytes_and_bandwidth(self, tmp_path):
        tracer, eng = self.run_nvme(tmp_path)
        report = build_perfreport(eng, tracer, bsz=2, seq=8, ci=1)
        nvme = report.tier_bandwidth["nvme"]
        assert nvme["bytes"] > 0
        assert nvme["busy_us"] > 0
        assert nvme["bw"] == pytest.approx(
            nvme["bytes"] / (nvme["busy_us"] / 1e6)
        )
        assert report.ait["nvme"] > 0

    def test_empty_trace_raises(self):
        cfg = ZeroConfig(world_size=1, offload=OffloadConfig(), loss_scale=1.0)
        with ZeroInfinityEngine(
            cfg,
            model_factory=lambda: GPTModel(tiny_model_cfg(), rng=seeded_rng(0)),
        ) as eng:
            with pytest.raises(ValueError, match="engine:step"):
                build_perfreport(eng, [], bsz=1, seq=8)


# --- classification sanity ----------------------------------------------------
class TestClassify:
    @pytest.mark.parametrize(
        "name,cat,expect",
        [
            ("engine:forward", "engine", "compute"),
            ("engine:allgather:block0", "comm", "comm"),
            ("bucket:flush", "comm", "comm"),
            ("offload:swap_in", "offload", "nvme_io"),
            ("nvme:pwrite", "nvme", "nvme_io"),
            ("stall:pinned_wait", "stall", "stall"),
        ],
    )
    def test_vocabulary(self, name, cat, expect):
        assert classify_span(name, cat) == expect

    def test_stall_span_records_cause_and_owner(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with stall_span("bucket_flush_wait", owner="bucket0", numel=8):
                pass
        (rec,) = tracer.records()
        assert rec.name == "stall:bucket_flush_wait"
        assert rec.cat == "stall"
        assert rec.args["owner"] == "bucket0"
        assert rec.args["numel"] == 8


# --- stall attribution priority ----------------------------------------------
class TestStallAttributionPriority:
    """Overlapping stalls: ``pinned_wait`` names a resource shortage, so it
    must win the billing over latency-shaped causes wrapping it — the
    chunked optimizer read drain used to swallow nested pinned-pool
    acquires into ``optimizer_io_tail``."""

    @staticmethod
    def ledger(spans):
        from repro.obs.perfscope import _build_step_ledger
        from repro.obs.tracer import SpanRecord

        def rec(name, cat, ts, dur, **args):
            return SpanRecord(
                name=name, cat=cat, ts_us=ts, dur_us=dur, tid=0,
                thread="main", args=args,
            )

        step = rec("engine:step", "engine", 0.0, 100.0)
        records = [step] + [
            rec(f"stall:{cause}", "stall", ts, dur, owner=owner)
            for cause, ts, dur, owner in spans
        ]
        return _build_step_ledger(step, records)

    def test_pinned_wait_nested_inside_drain_wins(self):
        # the outer read-drain span covers [10, 60); a pinned acquire
        # inside it covers [20, 40) — the pool, not the disk, is what the
        # lane waits on there
        led = self.ledger(
            [
                ("optimizer_io_tail", 10.0, 50.0, "p1.r0.chunk0"),
                ("pinned_wait", 20.0, 20.0, "pool"),
            ]
        )
        by_cause = led.stall_us_by_cause()
        assert by_cause["pinned_wait"] == pytest.approx(20.0)
        assert by_cause["optimizer_io_tail"] == pytest.approx(30.0)

    def test_pinned_wait_wins_even_when_longer_lived(self):
        # regression guard for the min-duration tie-break: a pinned span
        # *longer* than the drain segment it overlaps still takes the
        # billing — priority, not span length, decides
        led = self.ledger(
            [
                ("pinned_wait", 10.0, 60.0, "pool"),
                ("optimizer_io_tail", 20.0, 20.0, "p1.r0.chunk1"),
            ]
        )
        by_cause = led.stall_us_by_cause()
        assert by_cause["pinned_wait"] == pytest.approx(60.0)
        assert "optimizer_io_tail" not in by_cause

    def test_non_pinned_overlap_keeps_innermost(self):
        # without a pinned_wait in play the innermost (shortest) stall
        # still names the segment
        led = self.ledger(
            [
                ("optimizer_io_tail", 10.0, 50.0, "p1.r0"),
                ("bucket_flush_wait", 20.0, 10.0, "bucket0"),
            ]
        )
        by_cause = led.stall_us_by_cause()
        assert by_cause["bucket_flush_wait"] == pytest.approx(10.0)
        assert by_cause["optimizer_io_tail"] == pytest.approx(40.0)

    def test_exact_tie_prefers_pinned_wait(self):
        led = self.ledger(
            [
                ("optimizer_io_tail", 10.0, 20.0, "p1.r0.chunk2"),
                ("pinned_wait", 10.0, 20.0, "pool"),
            ]
        )
        by_cause = led.stall_us_by_cause()
        assert by_cause["pinned_wait"] == pytest.approx(20.0)
        assert "optimizer_io_tail" not in by_cause
