"""End-to-end mixed-precision training: the recipe the paper assumes.

The model computes in fp16 with fp32 master weights in the partitioned
optimizer; dynamic loss scaling keeps small gradients above the fp16
underflow threshold.  These tests validate the whole recipe on the real
engine: stable training in fp16, scaler backoff on induced overflow, and
the observability breakdown of where the fp16/fp32 states live.
"""

import numpy as np
import pytest

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 2
VOCAB = 32


def fp16_factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=16, num_heads=2, vocab_size=VOCAB, max_seq=8
    )
    return GPTModel(cfg, rng=seeded_rng(3), dtype=np.float16)


def batches(seed=0):
    rngs = spawn_rngs(seed, WORLD)
    return [
        (r.integers(0, VOCAB, (2, 8)), r.integers(0, VOCAB, (2, 8))) for r in rngs
    ]


class TestFp16Training:
    def test_params_are_fp16_and_master_fp32(self):
        cfg = ZeroConfig(world_size=WORLD, stage=ZeroStage.PARAMETERS)
        with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=1e-3) as eng:
            eng.train_step(batches())
            state = eng.gather_state()
            assert all(v.dtype == np.float16 for v in state.values())
            # fp32 master state exists per (param, rank)
            ref = next(iter(eng.optimizer._refs.values()))
            master = eng.offload.fetch(ref.master, rank=0)
            assert master.dtype == np.float32

    def test_dynamic_scaling_trains_stably(self):
        cfg = ZeroConfig(
            world_size=WORLD, stage=ZeroStage.PARAMETERS, loss_scale=None
        )
        with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=5e-3) as eng:
            fixed = batches(seed=4)
            losses = [eng.train_step(fixed).mean_loss for _ in range(12)]
            effective = [l for i, l in enumerate(losses)]
            assert all(np.isfinite(l) for l in effective)
            assert losses[-1] < losses[0]

    def test_fp16_nvme_roundtrip_preserves_dtype(self):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                grad_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=None,
        )
        with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=1e-3) as eng:
            eng.train_step(batches())
            state = eng.gather_state()
            assert all(v.dtype == np.float16 for v in state.values())
            # param/grad spool entries are half precision on "disk"
            breakdown = eng.memory_breakdown()
            assert "nvme" in breakdown
            assert breakdown["nvme"]["param16"] == sum(
                v.size * 2 for v in state.values()
            )

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_scaler_backs_off_on_injected_overflow(self):
        cfg = ZeroConfig(
            world_size=WORLD, stage=ZeroStage.GRADIENTS, loss_scale=None
        )
        with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=1e-3) as eng:
            scale_before = eng.scaler.loss_scale
            b = batches()
            # poison one rank's inputs so the loss (and scaled grads) blow up
            # by corrupting a parameter to a huge value
            eng.model.ln_f.gain.data[:] = np.float16(60000)
            result = eng.train_step(b)
            assert result.skipped
            assert eng.scaler.loss_scale == scale_before / 2
            assert eng.steps_skipped == 1

    def test_scale_one_fp16_loses_small_gradients(self):
        """Why loss scaling exists: at scale 1, fp16 drops gradients that
        the scaled run preserves (counted as exact zeros in grad shards)."""
        def count_zero_grads(loss_scale):
            cfg = ZeroConfig(
                world_size=WORLD,
                stage=ZeroStage.GRADIENTS,
                loss_scale=loss_scale,
            )
            zeros = total = 0
            with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=0.0) as eng:
                b = batches(seed=8)
                # run fwd/bwd without optimizer interference (lr 0 anyway)
                eng.coordinator.begin_accumulation()
                for rank, batch in enumerate(b):
                    eng.coordinator.begin_rank(rank)
                    eng.model(*batch)
                    eng.model.backward(loss_scale)
                    eng.coordinator.end_rank_backward()
                eng.coordinator.end_accumulation()
                for p in eng.model.parameters():
                    for rank in range(WORLD):
                        g = eng.offload.fetch(
                            f"p{p.unique_id}.r{rank}.grad16", rank=rank
                        )
                        zeros += int((g == 0).sum())
                        total += g.size
            return zeros / total

        unscaled = count_zero_grads(1.0)
        scaled = count_zero_grads(1024.0)
        assert scaled < unscaled  # scaling rescues underflowed gradients

    def test_memory_breakdown_kinds(self):
        cfg = ZeroConfig(
            world_size=WORLD,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=OffloadDevice.CPU,
                optimizer_device=OffloadDevice.CPU,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=fp16_factory, lr=1e-3) as eng:
            eng.train_step(batches())
            cpu = eng.memory_breakdown()["cpu"]
            for kind in ("param16", "master", "exp_avg", "exp_avg_sq"):
                assert cpu.get(kind, 0) > 0, kind
            # optimizer state is fp32: 2x the fp16 param bytes per buffer
            assert cpu["master"] == 2 * cpu["param16"]
