"""Live telemetry plane under the process-parallel backend.

The mp half of ISSUE 9's observability contract: per-rank JSONL shards
merge onto one timeline, the parent-side watchdog flags an injected
straggler from polled ring samples, the flight-recorder bundle is
byte-identical between the loop oracle and real rank processes for a
fixed fault seed, and the stage-3 x world-4 chaos cell leaves a complete
postmortem bundle behind when every rank dies unrecoverably.
"""

import json
import os

import pytest

from repro.comm import MpWorkerFailed, run_multiproc
from repro.faults import use_faults
from repro.obs.flightrec import FlightRecorder, canonical_json, use_flightrec
from repro.obs.live import LiveConfig, LivePlane, merge_telemetry_shards, use_live
from repro.workloads.calibrate import CalibSpec, run_mp_training, run_training

SPEC = CalibSpec(world=2, steps=3)
STRAGGLER = "straggler@rank.begin:rank=1,times=3,delay_us=5000"


@pytest.mark.mp
def test_mp_telemetry_jsonl_shards_merge(tmp_path):
    path = str(tmp_path / "tel.jsonl")
    run_mp_training(SPEC, live=LiveConfig(jsonl_path=path))
    shards = [f"{path}.rank{r}" for r in range(SPEC.world)]
    assert all(os.path.exists(p) for p in shards)
    merged = merge_telemetry_shards(shards)
    assert {r["rank"] for r in merged} == {0, 1}
    stamps = [r["mono_us"] for r in merged]
    # CLOCK_MONOTONIC is system-wide across forks, so shards interleave
    # onto one strictly ordered timeline
    assert stamps == sorted(stamps)
    assert any(r["phase"] == "step_end" for r in merged)


@pytest.mark.mp
def test_watchdog_flags_injected_straggler(tmp_path):
    spec = CalibSpec(world=2, steps=6)
    views = []
    run_mp_training(
        spec,
        live=LiveConfig(straggler_delay_us=1000),
        faults=STRAGGLER,
        faults_seed=3,
        on_view=views.append,
        view_interval=0.02,
    )
    assert views, "parent monitor loop produced no views"
    flagged = [v for v in views if v.states.get(1) == "straggler"]
    assert flagged, f"straggler never flagged in {len(views)} views"
    view = flagged[0]
    # flagged off the rank's own published sample, within its first
    # heartbeats (delay detection needs no skew accumulation)
    assert view.samples[1] is not None
    assert view.samples[1].delay_us > 0
    assert view.samples[1].hb <= spec.steps
    assert view.states[0] == "ok"


@pytest.mark.mp
def test_flight_bundle_bytes_match_loop_oracle():
    spec = SPEC
    faults, seed = STRAGGLER, 3

    def worker(backend):
        from repro.obs.flightrec import get_flightrec

        with use_faults(faults, seed=seed):
            run_training(spec, comm_backend=backend)
        rec = get_flightrec()
        assert rec is not None  # installed by the launcher's live plane
        return canonical_json(rec.rank_bundle_doc(backend.rank))

    out = run_multiproc(spec.world, worker, timeout=60.0, live=LiveConfig())
    mp_bytes = out.results

    rec = FlightRecorder()
    plane = LivePlane(world=spec.world, config=LiveConfig(), recorder=rec)
    with use_flightrec(rec), use_live(plane):
        with use_faults(faults, seed=seed):
            run_training(spec)
    loop_bytes = [
        canonical_json(rec.rank_bundle_doc(r)) for r in range(spec.world)
    ]

    assert mp_bytes == loop_bytes  # byte-identical across backends
    assert b'"kind":"fault"' in loop_bytes[1]


@pytest.mark.mp
def test_chaos_cell_leaves_complete_postmortem_bundle(tmp_path):
    # stage-3 x world-4 x mp with an unrecoverable checksum storm: every
    # rank dies, every rank's shard lands, the parent writes the manifest
    spec = CalibSpec(world=4, steps=2, stage=3, offload="nvme")
    bundle_dir = tmp_path / "postmortem"
    with pytest.raises(MpWorkerFailed):
        run_mp_training(
            spec,
            trace=True,
            live=LiveConfig(postmortem_dir=str(bundle_dir)),
            faults="bit_flip@aio.read:times=1000",
            faults_seed=0,
        )
    manifest = json.loads((bundle_dir / "manifest.json").read_text())
    assert manifest["world"] == 4
    assert manifest["ranks"] == [0, 1, 2, 3]
    for rank in range(4):
        shard = json.loads(
            (bundle_dir / f"events.rank{rank}.json").read_bytes()
        )
        assert shard["rank"] == rank
        # the killing fault reached the shared run ring of every shard
        assert "fault" in [e["kind"] for e in shard["run"]]
        state = json.loads(
            (bundle_dir / f"state.rank{rank}.json").read_text()
        )
        assert "FaultUnrecoverable" in state["reason"]
        # per-rank runtime trace tail rode along (trace=True run)
        tail = json.loads(
            (bundle_dir / f"trace_tail.rank{rank}.json").read_text()
        )
        assert tail and any(ev.get("ph") == "X" for ev in tail)
