"""Parameter partitioning and the infinity offload engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.group import ProcessGroup
from repro.core.config import OffloadConfig, OffloadDevice
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.hardware.memory import MemoryLedger
from repro.nn.parameter import Parameter, PartitionState
from repro.utils.rng import seeded_rng


def make_partitioner(world=4, device=OffloadDevice.NONE, **kw):
    cfg = OffloadConfig(
        param_device=device,
        pinned_budget_bytes=1 << 20,
    )
    offload = InfinityOffloadEngine(cfg)
    return ParameterPartitioner(world, offload=offload, **kw), offload


class TestPartitionGatherRoundtrip:
    @pytest.mark.parametrize("device", list(OffloadDevice))
    @pytest.mark.parametrize("world", [1, 2, 3, 7])
    def test_roundtrip_identity(self, device, world, rng):
        part, offload = make_partitioner(world, device)
        try:
            original = rng.standard_normal((5, 7)).astype(np.float32)
            p = Parameter(original.copy(), name="w")
            part.partition(p)
            assert p.state is PartitionState.PARTITIONED
            assert p.data.size == 0
            part.gather(p)
            assert p.state is PartitionState.AVAILABLE
            np.testing.assert_array_equal(p.data, original)
        finally:
            offload.close()

    def test_gather_idempotent(self, rng):
        part, offload = make_partitioner(2)
        p = Parameter(rng.standard_normal(6).astype(np.float32))
        part.partition(p)
        part.gather(p)
        data = p.data
        part.gather(p)  # second gather is a no-op
        assert p.data is data
        offload.close()

    def test_release_drops_full_tensor(self, rng):
        part, offload = make_partitioner(2)
        p = Parameter(rng.standard_normal(6).astype(np.float32))
        part.partition(p)
        part.gather(p)
        part.release(p)
        assert p.state is PartitionState.PARTITIONED
        assert p.data.size == 0
        part.gather(p)  # can be gathered again from shards
        assert p.data.size == 6
        offload.close()

    def test_double_partition_raises(self, rng):
        part, offload = make_partitioner(2)
        p = Parameter(rng.standard_normal(4).astype(np.float32))
        part.partition(p)
        with pytest.raises(RuntimeError):
            part.partition(p)
        offload.close()

    def test_gather_unpartitioned_with_no_meta_raises(self):
        part, offload = make_partitioner(2)
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.state = PartitionState.PARTITIONED  # corrupt state
        with pytest.raises(RuntimeError):
            part.gather(p)
        offload.close()

    @given(
        numel=st.integers(1, 200),
        world=st.integers(1, 9),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, numel, world):
        part, offload = make_partitioner(world)
        original = np.arange(numel, dtype=np.float32)
        p = Parameter(original.copy())
        part.partition(p)
        part.gather(p)
        np.testing.assert_array_equal(p.data, original)
        offload.close()


class TestShardUpdate:
    def test_update_then_gather_sees_new_values(self, rng):
        world = 4
        part, offload = make_partitioner(world)
        p = Parameter(np.zeros(8, dtype=np.float32))
        part.partition(p)
        for r in range(world):
            part.update_shard(p, r, np.full(2, float(r), dtype=np.float32))
        part.gather(p)
        np.testing.assert_array_equal(
            p.data, [0, 0, 1, 1, 2, 2, 3, 3]
        )
        offload.close()

    def test_wrong_shard_size_raises(self):
        part, offload = make_partitioner(2)
        p = Parameter(np.zeros(8, dtype=np.float32))
        part.partition(p)
        with pytest.raises(ValueError):
            part.update_shard(p, 0, np.zeros(3, dtype=np.float32))
        offload.close()

    def test_get_shard_matches_slice(self, rng):
        world = 3
        part, offload = make_partitioner(world)
        data = rng.standard_normal(10).astype(np.float32)
        p = Parameter(data.copy())
        part.partition(p)
        padded = np.zeros(12, dtype=np.float32)
        padded[:10] = data
        for r in range(world):
            np.testing.assert_array_equal(
                part.get_shard(p, r), padded[r * 4 : (r + 1) * 4]
            )
        offload.close()


class TestOwnerLayout:
    """bandwidth_centric=False: single-owner, broadcast-based (ZeRO-Offload)."""

    def test_roundtrip(self, rng):
        part, offload = make_partitioner(4, bandwidth_centric=False)
        original = rng.standard_normal(10).astype(np.float32)
        p = Parameter(original.copy())
        part.partition(p)
        assert p.zero_meta.owner_rank is not None
        part.gather(p)
        np.testing.assert_array_equal(p.data, original)
        offload.close()

    def test_owner_round_robin(self, rng):
        part, offload = make_partitioner(4, bandwidth_centric=False)
        owners = []
        for _ in range(8):
            p = Parameter(rng.standard_normal(4).astype(np.float32))
            part.partition(p)
            owners.append(p.zero_meta.owner_rank)
        assert owners == [0, 1, 2, 3, 0, 1, 2, 3]
        offload.close()

    def test_update_shard_in_owner_layout(self):
        part, offload = make_partitioner(2, bandwidth_centric=False)
        p = Parameter(np.zeros(4, dtype=np.float32))
        part.partition(p)
        part.update_shard(p, 1, np.full(2, 9.0, dtype=np.float32))
        part.gather(p)
        np.testing.assert_array_equal(p.data, [0, 0, 9, 9])
        offload.close()


class TestBandwidthCentricClaim:
    """Sec. 6.1: sharded layout spreads host-link traffic across all ranks;
    owner layout concentrates each parameter's bytes on one link."""

    def _traffic(self, bandwidth_centric, world=4):
        cfg = OffloadConfig(param_device=OffloadDevice.CPU)
        offload = InfinityOffloadEngine(cfg)
        part = ParameterPartitioner(
            world, offload=offload, bandwidth_centric=bandwidth_centric
        )
        rng = seeded_rng(0)
        for _ in range(1):
            p = Parameter(rng.standard_normal(1024).astype(np.float32))
            part.partition(p)
            part.gather(p)
            part.release(p)
        counters = offload.counters
        offload.close()
        return counters

    def test_sharded_uses_all_links_equally(self):
        c = self._traffic(True)
        assert len(c.host_link_bytes) == 4
        values = list(c.host_link_bytes.values())
        assert max(values) == min(values)

    def test_owner_concentrates_on_one_link(self):
        c = self._traffic(False)
        assert len(c.host_link_bytes) == 1

    def test_total_volume_equal_but_max_link_lower(self):
        """Same bytes moved; per-link max is 1/dp with sharding."""
        sharded = self._traffic(True)
        owner = self._traffic(False)
        assert sharded.total_link_bytes == owner.total_link_bytes
        # the busiest link carries ~1/dp of the owner layout's load
        assert sharded.max_link_bytes == pytest.approx(
            owner.max_link_bytes / 4, rel=0.01
        )


class TestOffloadEngine:
    def test_stash_fetch_gpu_tier(self):
        eng = InfinityOffloadEngine(OffloadConfig())
        eng.stash("k", np.arange(4, dtype=np.float32), OffloadDevice.NONE, rank=0)
        np.testing.assert_array_equal(eng.fetch("k", rank=0), [0, 1, 2, 3])
        eng.close()

    def test_fetch_returns_copy(self):
        eng = InfinityOffloadEngine(OffloadConfig())
        eng.stash("k", np.zeros(4, dtype=np.float32), OffloadDevice.CPU, rank=0)
        a = eng.fetch("k", rank=0)
        a[:] = 9
        b = eng.fetch("k", rank=0)
        assert np.all(b == 0)
        eng.close()

    def test_missing_key_raises(self):
        eng = InfinityOffloadEngine(OffloadConfig())
        with pytest.raises(KeyError):
            eng.fetch("ghost", rank=0)
        eng.close()

    def test_nvme_roundtrip(self):
        cfg = OffloadConfig(param_device=OffloadDevice.NVME)
        eng = InfinityOffloadEngine(cfg)
        data = np.arange(100, dtype=np.float16)
        eng.stash("k", data, OffloadDevice.NVME, rank=2)
        out = eng.fetch("k", rank=2)
        assert out.dtype == np.float16
        np.testing.assert_array_equal(out, data)
        assert eng.counters.nvme_write_bytes == 200
        assert eng.counters.nvme_read_bytes == 200
        eng.close()

    def test_nvme_without_store_raises(self):
        eng = InfinityOffloadEngine(OffloadConfig())
        with pytest.raises(RuntimeError):
            eng.stash("k", np.zeros(1), OffloadDevice.NVME, rank=0)
        eng.close()

    def test_prefetch_hit_path(self):
        cfg = OffloadConfig(param_device=OffloadDevice.NVME)
        eng = InfinityOffloadEngine(cfg)
        data = np.arange(64, dtype=np.float32)
        eng.stash("k", data, OffloadDevice.NVME, rank=0)
        assert eng.prefetch("k", rank=0)
        out = eng.fetch("k", rank=0)
        np.testing.assert_array_equal(out, data)
        assert eng.counters.prefetch_hits == 1
        assert eng.counters.prefetch_misses == 0
        eng.close()

    def test_fetch_without_prefetch_counts_miss(self):
        cfg = OffloadConfig(param_device=OffloadDevice.NVME)
        eng = InfinityOffloadEngine(cfg)
        eng.stash("k", np.zeros(8, dtype=np.float32), OffloadDevice.NVME, rank=0)
        eng.fetch("k", rank=0)
        assert eng.counters.prefetch_misses == 1
        eng.close()

    def test_prefetch_resident_tier_noop(self):
        eng = InfinityOffloadEngine(OffloadConfig())
        eng.stash("k", np.zeros(4, dtype=np.float32), OffloadDevice.CPU, rank=0)
        assert not eng.prefetch("k", rank=0)
        eng.close()

    def test_discard_cancels_and_removes(self):
        cfg = OffloadConfig(param_device=OffloadDevice.NVME)
        eng = InfinityOffloadEngine(cfg)
        eng.stash("k", np.zeros(8, dtype=np.float32), OffloadDevice.NVME, rank=0)
        eng.prefetch("k", rank=0)
        eng.discard("k")
        assert not eng.contains("k")
        eng.close()

    def test_ledger_accounting_cpu(self):
        led = MemoryLedger()
        eng = InfinityOffloadEngine(OffloadConfig(), ledger=led)
        eng.stash("k", np.zeros(100, dtype=np.float32), OffloadDevice.CPU, rank=0)
        assert led.used_by_kind("cpu") == 400
        eng.discard("k")
        assert led.used_by_kind("cpu") == 0
        eng.close()

    def test_tier_migration_updates_accounting(self):
        led = MemoryLedger()
        eng = InfinityOffloadEngine(OffloadConfig(), ledger=led)
        eng.stash("k", np.zeros(10, dtype=np.float32), OffloadDevice.NONE, rank=1)
        assert led.used_by_kind("gpu") == 40
        eng.stash("k", np.zeros(10, dtype=np.float32), OffloadDevice.CPU, rank=1)
        assert led.used_by_kind("gpu") == 0
        assert led.used_by_kind("cpu") == 40
        eng.close()
