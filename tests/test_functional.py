"""Finite-difference gradient checks for every kernel in repro.nn.functional.

All checks run in float64 with central differences; tolerances are tight
because these kernels underpin the entire equivalence chain of the ZeRO
engine tests.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.utils.rng import seeded_rng


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x (elementwise)."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = fn()
        x[idx] = orig - eps
        fm = fn()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_op(fwd, bwd, inputs, n_grads, rtol=1e-5, atol=1e-8, seed=0):
    """Generic check: analytic grads of sum(out * R) vs finite differences."""
    rng = seeded_rng(seed)
    out, cache = fwd(*inputs)
    weights = rng.standard_normal(out.shape)

    grads = bwd(weights.copy(), cache)
    if not isinstance(grads, tuple):
        grads = (grads,)

    def loss():
        o, _ = fwd(*inputs)
        return float((o * weights).sum())

    for i in range(n_grads):
        if grads[i] is None:
            continue
        num = numeric_grad(loss, inputs[i])
        np.testing.assert_allclose(
            grads[i], num, rtol=rtol, atol=atol, err_msg=f"input {i}"
        )


class TestLinear:
    def test_forward_values(self, rng):
        x = rng.standard_normal((2, 3))
        w = rng.standard_normal((4, 3))
        b = rng.standard_normal(4)
        y, _ = F.linear_fwd(x, w, b)
        np.testing.assert_allclose(y, x @ w.T + b)

    def test_gradients(self, rng):
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((5, 4))
        b = rng.standard_normal(5)
        check_op(F.linear_fwd, F.linear_bwd, [x, w, b], 3)

    def test_no_bias(self, rng):
        x = rng.standard_normal((2, 4))
        w = rng.standard_normal((3, 4))
        y, cache = F.linear_fwd(x, w, None)
        _, _, gb = F.linear_bwd(np.ones_like(y), cache)
        assert gb is None

    def test_fp16_accumulates_fp32(self):
        """Tensor-core emulation: fp16 matmul must not lose the mantissa."""
        n = 4096
        x = np.full((1, n), 0.01, dtype=np.float16)
        w = np.full((1, n), 0.01, dtype=np.float16)
        y, _ = F.linear_fwd(x, w, None)
        # naive fp16 accumulation would saturate at ~0.25 relative error
        assert float(y[0, 0]) == pytest.approx(n * 1e-4, rel=0.02)


class TestGelu:
    def test_gradients(self, rng):
        x = rng.standard_normal((3, 5))
        check_op(F.gelu_fwd, lambda g, c: F.gelu_bwd(g, c), [x], 1)

    def test_known_values(self):
        y, _ = F.gelu_fwd(np.array([0.0]))
        assert y[0] == 0.0
        y, _ = F.gelu_fwd(np.array([100.0]))
        assert y[0] == pytest.approx(100.0)
        y, _ = F.gelu_fwd(np.array([-100.0]))
        assert y[0] == pytest.approx(0.0, abs=1e-6)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p, _ = F.softmax_fwd(rng.standard_normal((4, 7)))
        np.testing.assert_allclose(p.sum(-1), 1.0, rtol=1e-6)

    def test_gradients(self, rng):
        x = rng.standard_normal((2, 5))
        check_op(F.softmax_fwd, lambda g, c: F.softmax_bwd(g, c), [x], 1)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 4))
        p1, _ = F.softmax_fwd(x)
        p2, _ = F.softmax_fwd(x + 1000.0)
        np.testing.assert_allclose(p1, p2, rtol=1e-6)

    def test_overflow_stability(self):
        p, _ = F.softmax_fwd(np.array([[1e4, -1e4]]))
        assert np.all(np.isfinite(p))


class TestLayerNorm:
    def test_output_normalized(self, rng):
        x = rng.standard_normal((4, 8)) * 5 + 3
        y, _ = F.layernorm_fwd(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(y.std(-1), 1.0, rtol=1e-3)

    def test_gradients(self, rng):
        x = rng.standard_normal((2, 3, 6))
        g = rng.standard_normal(6)
        b = rng.standard_normal(6)
        check_op(
            lambda x, g, b: F.layernorm_fwd(x, g, b),
            F.layernorm_bwd,
            [x, g, b],
            3,
            rtol=1e-4,
            atol=1e-7,
        )


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.standard_normal((10, 4))
        ids = np.array([[1, 3], [0, 9]])
        y, _ = F.embedding_fwd(ids, table)
        np.testing.assert_array_equal(y[0, 1], table[3])

    def test_gradient_scatter_add(self, rng):
        table = rng.standard_normal((5, 3))
        ids = np.array([0, 0, 2])  # repeated id accumulates
        y, cache = F.embedding_fwd(ids, table)
        g = np.ones_like(y)
        gt = F.embedding_bwd(g, cache)
        np.testing.assert_allclose(gt[0], 2.0)
        np.testing.assert_allclose(gt[2], 1.0)
        np.testing.assert_allclose(gt[1], 0.0)

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            F.embedding_fwd(np.array([5]), np.zeros((5, 2)))
        with pytest.raises(IndexError):
            F.embedding_fwd(np.array([-1]), np.zeros((5, 2)))

    def test_float_ids_raise(self):
        with pytest.raises(TypeError):
            F.embedding_fwd(np.array([0.5]), np.zeros((5, 2)))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = rng.standard_normal((10, 10))
        y, _ = F.dropout_fwd(x, 0.5, rng, training=False)
        assert y is x

    def test_zero_p_identity(self, rng):
        x = rng.standard_normal((10,))
        y, _ = F.dropout_fwd(x, 0.0, rng, training=True)
        assert y is x

    def test_inverted_scaling_preserves_mean(self):
        rng = seeded_rng(0)
        x = np.ones((200, 200))
        y, _ = F.dropout_fwd(x, 0.3, rng, training=True)
        assert float(y.mean()) == pytest.approx(1.0, rel=0.02)

    def test_mask_reused_in_backward(self, rng):
        x = np.ones((50, 50))
        y, cache = F.dropout_fwd(x, 0.5, rng, training=True)
        g = F.dropout_bwd(np.ones_like(y), cache)
        np.testing.assert_array_equal((y == 0), (g == 0))

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout_fwd(np.ones(2), 1.0, rng, training=True)


class TestAttentionCore:
    def test_causal_masking(self, rng):
        """Position i must not attend to positions > i."""
        q = rng.standard_normal((1, 1, 4, 8))
        k = rng.standard_normal((1, 1, 4, 8))
        v = rng.standard_normal((1, 1, 4, 8))
        ctx1, _ = F.attention_scores_fwd(q, k, v, causal=True)
        v2 = v.copy()
        v2[:, :, 2:, :] = 999.0  # corrupt the future
        ctx2, _ = F.attention_scores_fwd(q, k, v2, causal=True)
        np.testing.assert_allclose(ctx1[:, :, :2], ctx2[:, :, :2], rtol=1e-6)

    def test_non_causal_attends_everywhere(self, rng):
        q = rng.standard_normal((1, 1, 3, 4))
        k = rng.standard_normal((1, 1, 3, 4))
        v = rng.standard_normal((1, 1, 3, 4))
        ctx, _ = F.attention_scores_fwd(q, k, v, causal=False)
        v2 = v.copy()
        v2[:, :, -1] += 1.0
        ctx2, _ = F.attention_scores_fwd(q, k, v2, causal=False)
        assert not np.allclose(ctx[:, :, 0], ctx2[:, :, 0])

    def test_gradients(self, rng):
        q = rng.standard_normal((1, 2, 3, 4))
        k = rng.standard_normal((1, 2, 3, 4))
        v = rng.standard_normal((1, 2, 3, 4))
        check_op(
            lambda q, k, v: F.attention_scores_fwd(q, k, v, causal=True),
            F.attention_scores_bwd,
            [q, k, v],
            3,
            rtol=1e-4,
            atol=1e-7,
        )


class TestCrossEntropy:
    def test_uniform_logits_log_vocab(self):
        logits = np.zeros((4, 10))
        targets = np.arange(4) % 10
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient(self, rng):
        logits = rng.standard_normal((2, 3, 7))
        targets = rng.integers(0, 7, size=(2, 3))
        loss, cache = F.cross_entropy_fwd(logits, targets)
        g = F.cross_entropy_bwd(1.0, cache)

        def loss_fn():
            l, _ = F.cross_entropy_fwd(logits, targets)
            return l

        num = numeric_grad(loss_fn, logits)
        np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-8)

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((4, 9))
        targets = rng.integers(0, 9, size=4)
        _, cache = F.cross_entropy_fwd(logits, targets)
        g = F.cross_entropy_bwd(1.0, cache)
        np.testing.assert_allclose(g.sum(-1), 0.0, atol=1e-9)

    def test_target_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy_fwd(np.zeros((4, 5)), np.zeros(3, dtype=int))

    def test_grad_scale_propagates(self, rng):
        logits = rng.standard_normal((2, 5))
        targets = rng.integers(0, 5, size=2)
        _, cache = F.cross_entropy_fwd(logits, targets)
        g1 = F.cross_entropy_bwd(1.0, cache)
        g2 = F.cross_entropy_bwd(1024.0, cache)
        np.testing.assert_allclose(g2, 1024.0 * g1, rtol=1e-9)


class TestHeadSplitMerge:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((2, 5, 12))
        y = F.merge_heads(F.split_heads(x, 4))
        np.testing.assert_array_equal(x, y)

    def test_split_shape(self, rng):
        h = F.split_heads(rng.standard_normal((2, 5, 12)), 3)
        assert h.shape == (2, 3, 5, 4)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.split_heads(rng.standard_normal((1, 2, 10)), 3)
