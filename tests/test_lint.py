"""The AST lint pass: rule units, baseline budgets, and the repo gate.

``test_repo_is_lint_clean`` is the tier-1 gate: every finding in ``src/``
must be absorbed by ``tools/lint_baseline.json``; new debt fails here with
the same report ``python tools/lint_repro.py`` prints.
"""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

from repro.check.lint import (
    LintFinding,
    apply_baseline,
    collect,
    default_baseline_path,
    default_src_root,
    lint_source,
    load_baseline,
    run_lint,
)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestRules:
    def test_raw_collectives_import(self):
        src = "from repro.comm.collectives import allgather\n"
        found = lint_source(src, "repro/core/somewhere.py")
        assert rules_of(found) == ["raw-collectives"]

    def test_raw_collectives_module_import(self):
        src = "import repro.comm.collectives as C\n"
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "raw-collectives"
        ]

    def test_backend_package_may_use_collectives(self):
        src = "from repro.comm.collectives import allgather\n"
        assert lint_source(src, "repro/comm/collectives.py") == []
        assert lint_source(src, "repro/comm/backend.py") == []

    def test_comm_package_outside_backend_flagged(self):
        src = "from repro.comm.collectives import allgather\n"
        assert rules_of(lint_source(src, "repro/comm/group.py")) == [
            "raw-collective-import"
        ]

    def test_comm_package_module_import_flagged(self):
        src = "import repro.comm.collectives as C\n"
        assert rules_of(lint_source(src, "repro/comm/mp_backend.py")) == [
            "raw-collective-import"
        ]

    def test_comm_package_from_package_import_flagged(self):
        src = "from repro.comm import collectives\n"
        assert rules_of(lint_source(src, "repro/comm/launcher.py")) == [
            "raw-collective-import"
        ]

    def test_raw_collective_import_suppression(self):
        src = (
            "from repro.comm.collectives import (  "
            "# lint: allow-raw-collective-import\n"
            "    allgather,\n"
            ")\n"
        )
        assert lint_source(src, "repro/comm/__init__.py") == []

    def test_package_level_comm_import_ok(self):
        src = "from repro.comm import readonly_slice\n"
        assert lint_source(src, "repro/core/bucket.py") == []

    def test_wallclock_in_numerics(self):
        src = "import time\nseed = time.time()\n"
        assert rules_of(lint_source(src, "repro/core/adamish.py")) == [
            "wallclock"
        ]

    def test_wallclock_fine_outside_numerics(self):
        src = "import time\nt0 = time.time()\n"
        assert lint_source(src, "repro/obs/tracer.py") == []
        assert lint_source(src, "repro/hardware/model.py") == []

    def test_unseeded_rng(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(lint_source(src, "repro/nn/layers.py")) == [
            "rng"
        ]

    def test_stdlib_random(self):
        src = "import random\nv = random.random()\n"
        assert rules_of(lint_source(src, "repro/core/prefetch.py")) == [
            "rng"
        ]

    def test_seeded_constructor_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_source(src, "repro/nn/layers.py") == []

    def test_float64_upcast_in_hot_path(self):
        src = "def f(x):\n    return x.astype(float)\n"
        assert rules_of(lint_source(src, "repro/core/bucket.py")) == [
            "float64-upcast"
        ]

    def test_float64_fine_off_hot_path(self):
        src = "def f(x):\n    return x.astype(float)\n"
        assert lint_source(src, "repro/analytics/model.py") == []

    def test_writeable_flip(self):
        src = "view.flags.writeable = True\n"
        assert rules_of(lint_source(src, "repro/core/partition.py")) == [
            "writeable-flip"
        ]

    def test_writeable_flip_allowed_in_comm(self):
        src = "view.flags.writeable = True\n"
        assert lint_source(src, "repro/comm/collectives.py") == []

    def test_suppression_comment(self):
        src = "import time\nt = time.time()  # lint: allow-wallclock\n"
        assert lint_source(src, "repro/core/adamish.py") == []

    def test_suppression_is_rule_specific(self):
        src = "import time\nt = time.time()  # lint: allow-rng\n"
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "wallclock"
        ]

    def test_swallowed_oserror_in_nvme(self):
        src = "try:\n    f()\nexcept OSError:\n    pass\n"
        assert rules_of(lint_source(src, "repro/nvme/aio.py")) == [
            "swallowed-oserror"
        ]

    def test_swallowed_oserror_tuple_and_alias(self):
        src = "try:\n    f()\nexcept (ValueError, IOError):\n    pass\n"
        assert rules_of(lint_source(src, "repro/core/offload.py")) == [
            "swallowed-oserror"
        ]

    def test_swallowed_oserror_bare_except(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert rules_of(lint_source(src, "repro/nvme/store.py")) == [
            "swallowed-oserror"
        ]

    def test_swallowed_oserror_handled_body_ok(self):
        src = (
            "try:\n    f()\nexcept OSError:\n    count += 1\n"
        )
        assert lint_source(src, "repro/nvme/aio.py") == []

    def test_swallowed_oserror_fine_off_io_modules(self):
        src = "try:\n    f()\nexcept OSError:\n    pass\n"
        assert lint_source(src, "repro/obs/tracer.py") == []

    def test_untraced_sleep_in_instrumented_module(self):
        src = "import time\ndef f():\n    time.sleep(0.01)\n"
        assert rules_of(lint_source(src, "repro/nvme/aio.py")) == [
            "untraced-wait"
        ]

    def test_untraced_spin_loop(self):
        src = "def f(flag):\n    while not flag():\n        pass\n"
        assert rules_of(lint_source(src, "repro/core/engine.py")) == [
            "untraced-wait"
        ]

    def test_sleep_inside_stall_span_ok(self):
        src = (
            "import time\n"
            "from repro.obs.perfscope import stall_span\n"
            "def f():\n"
            "    with stall_span('pinned_wait', owner='pool'):\n"
            "        time.sleep(0.01)\n"
        )
        assert lint_source(src, "repro/nvme/buffers.py") == []

    def test_sleep_inside_attribute_stall_span_ok(self):
        src = (
            "import time\n"
            "import repro.obs.perfscope as perfscope\n"
            "def f():\n"
            "    with perfscope.stall_span('prefetch_miss', owner='m'):\n"
            "        while not done():\n"
            "            time.sleep(0.001)\n"
        )
        assert lint_source(src, "repro/core/prefetch.py") == []

    def test_non_stall_with_does_not_shield(self):
        src = (
            "import time\n"
            "def f(lock):\n"
            "    with lock:\n"
            "        time.sleep(0.01)\n"
        )
        assert rules_of(lint_source(src, "repro/core/bucket.py")) == [
            "untraced-wait"
        ]

    def test_untraced_wait_suppression_comment(self):
        src = (
            "import time\n"
            "def f():\n"
            "    time.sleep(0.01)  # lint: allow-untraced-wait\n"
        )
        assert lint_source(src, "repro/nvme/store.py") == []

    def test_sleep_fine_off_instrumented_modules(self):
        src = "import time\ndef f():\n    time.sleep(0.01)\n"
        assert lint_source(src, "repro/obs/tracer.py") == []
        assert lint_source(src, "repro/sim/executor.py") == []

    # --- rank-divergent-collective ------------------------------------------
    def test_rank_divergent_collective_on_backend_rank(self):
        src = (
            "def f(comm, xs):\n"
            "    if comm.backend.rank == 0:\n"
            "        comm.allgather(xs)\n"
        )
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "rank-divergent-collective"
        ]

    def test_rank_divergent_collective_on_is_local(self):
        src = (
            "def f(comm, r, xs):\n"
            "    if comm.backend.is_local(r):\n"
            "        comm.broadcast(xs, root=0)\n"
        )
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "rank-divergent-collective"
        ]

    def test_rank_divergent_guard_pattern_conditions_the_rest(self):
        src = (
            "def f(comm, r, xs):\n"
            "    for turn in range(4):\n"
            "        if not comm.backend.is_local(turn):\n"
            "            continue\n"
            "        comm.allgather(xs)\n"
        )
        assert rules_of(lint_source(src, "repro/core/engine2.py")) == [
            "rank-divergent-collective"
        ]

    def test_turn_index_predicates_are_rank_uniform(self):
        # `rank` as a replicated turn index and `owner_rank` metadata are
        # identical on every process — not divergence
        src = (
            "def f(comm, meta, xs, world):\n"
            "    for rank in range(world):\n"
            "        if rank == 0:\n"
            "            comm.allgather(xs)\n"
            "    if meta.owner_rank is None:\n"
            "        comm.broadcast(xs, root=0)\n"
        )
        assert lint_source(src, "repro/core/partition2.py") == []

    def test_rank_divergent_scope_is_spmd_modules_only(self):
        src = (
            "def f(comm, xs):\n"
            "    if comm.backend.rank == 0:\n"
            "        comm.allgather(xs)\n"
        )
        assert lint_source(src, "repro/obs/reporter.py") == []

    def test_rank_divergent_suppression(self):
        src = (
            "def f(comm, xs):\n"
            "    if comm.backend.rank == 0:\n"
            "        comm.allgather(xs)  # lint: allow-rank-divergent-collective\n"
        )
        assert lint_source(src, "repro/core/x.py") == []

    # --- readonly-view-escape ------------------------------------------------
    def test_readonly_view_subscript_store(self):
        src = (
            "def f(buf, comm):\n"
            "    shard = readonly_slice(buf, 0, 8)\n"
            "    shard[:4] = 0\n"
        )
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "readonly-view-escape"
        ]

    def test_readonly_view_copy_then_write_ok(self):
        src = (
            "def f(buf):\n"
            "    shard = readonly_slice(buf, 0, 8)\n"
            "    shard = shard.copy()\n"
            "    shard[:4] = 0\n"
        )
        assert lint_source(src, "repro/core/x.py") == []

    def test_readonly_view_copyto_sink(self):
        src = (
            "import numpy as np\n"
            "def f(comm, shards):\n"
            "    out = comm.allgather(shards)\n"
            "    np.copyto(out, 0.0)\n"
        )
        assert rules_of(lint_source(src, "repro/core/x.py")) == [
            "readonly-view-escape"
        ]

    def test_readonly_view_rule_excludes_comm_package(self):
        # repro/comm/ constructs the views; it owns the writeable window
        src = (
            "def f(buf):\n"
            "    shard = readonly_slice(buf, 0, 8)\n"
            "    shard[:4] = 0\n"
        )
        assert lint_source(src, "repro/comm/collectives.py") == []

    # --- shm-use-after-unlink ------------------------------------------------
    def test_shm_use_after_unlink(self):
        src = (
            "def f(ring, data):\n"
            "    ring.unlink()\n"
            "    ring.publish(data)\n"
        )
        assert rules_of(lint_source(src, "repro/comm/x.py")) == [
            "shm-use-after-unlink"
        ]

    def test_shm_buf_access_after_close(self):
        src = (
            "def f(ring):\n"
            "    ring.close()\n"
            "    return ring.buf[0]\n"
        )
        assert rules_of(lint_source(src, "repro/comm/x.py")) == [
            "shm-use-after-unlink"
        ]

    def test_shm_rebind_revives_the_name(self):
        src = (
            "def f(ring, make, data):\n"
            "    ring.unlink()\n"
            "    ring = make()\n"
            "    ring.publish(data)\n"
        )
        assert lint_source(src, "repro/comm/x.py") == []

    def test_shm_one_branch_unlink_does_not_kill(self):
        # only the intersection of branch outcomes is dead afterwards
        src = (
            "def f(ring, cond, data):\n"
            "    if cond:\n"
            "        ring.unlink()\n"
            "    else:\n"
            "        pass\n"
            "    ring.publish(data)\n"
        )
        assert lint_source(src, "repro/comm/x.py") == []

    def test_shm_both_branches_unlink_kills(self):
        src = (
            "def f(ring, cond, data):\n"
            "    if cond:\n"
            "        ring.unlink()\n"
            "    else:\n"
            "        ring.destroy()\n"
            "    ring.publish(data)\n"
        )
        assert rules_of(lint_source(src, "repro/comm/x.py")) == [
            "shm-use-after-unlink"
        ]


class TestLintCorpus:
    """Static half of the deliberate-bug corpus (tests/check_corpus/lint/).

    Each snippet declares ``LINT_AS`` (the module path it pretends to live
    at) and ``EXPECT`` (the rule it must fire); its own source is linted.
    """

    CORPUS = pathlib.Path(__file__).parent / "check_corpus" / "lint"

    def snippets(self):
        return sorted(
            p for p in self.CORPUS.glob("*.py") if p.name != "__init__.py"
        )

    def test_corpus_is_nonempty(self):
        assert self.snippets()

    def test_snippets_fire_their_declared_rule(self):
        for path in self.snippets():
            spec = importlib.util.spec_from_file_location(
                f"lint_corpus_{path.stem}", path
            )
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            found = lint_source(path.read_text(), mod.LINT_AS)
            assert mod.EXPECT in {f.rule for f in found}, path.name


class TestBaseline:
    def f(self, path, line, rule):
        return LintFinding(path, line, rule, "msg")

    def test_budget_absorbs_earliest_lines_first(self):
        findings = [
            self.f("repro/a.py", 30, "rng"),
            self.f("repro/a.py", 10, "rng"),
        ]
        baseline = {"repro/a.py": {"rng": 1}}
        new = apply_baseline(findings, baseline)
        assert [n.line for n in new] == [30]

    def test_budget_is_per_path_and_rule(self):
        findings = [
            self.f("repro/a.py", 1, "rng"),
            self.f("repro/b.py", 1, "rng"),
            self.f("repro/a.py", 2, "wallclock"),
        ]
        baseline = {"repro/a.py": {"rng": 5}}
        new = apply_baseline(findings, baseline)
        assert {(n.path, n.rule) for n in new} == {
            ("repro/b.py", "rng"),
            ("repro/a.py", "wallclock"),
        }

    def test_shipped_baseline_loads(self):
        baseline = load_baseline(default_baseline_path())
        assert isinstance(baseline, dict)
        for rules in baseline.values():
            for count in rules.values():
                assert count > 0


class TestRepoGate:
    def test_repo_is_lint_clean(self):
        report = run_lint()
        assert report.clean, "new lint findings:\n" + "\n".join(
            f.format() for f in report.new_findings
        )

    def test_baseline_has_no_dead_budget(self):
        """Every baseline allowance must match a real finding (no rot)."""
        report = run_lint()
        baseline = load_baseline(default_baseline_path())
        have: dict[tuple[str, str], int] = {}
        for f in report.all_findings:
            have[(f.path, f.rule)] = have.get((f.path, f.rule), 0) + 1
        for path, rules in baseline.items():
            for rule, count in rules.items():
                assert have.get((path, rule), 0) >= count, (
                    f"baseline allows {count}x {rule} in {path} but the"
                    f" code no longer has it; shrink tools/lint_baseline.json"
                )

    def test_repo_tree_is_debt_free(self):
        # the baseline is empty: the shipped tree carries zero findings,
        # suppressed or otherwise beyond inline allows
        assert collect(default_src_root()) == []

    def test_collect_covers_the_tree(self, tmp_path):
        # the walk parses every repro module it finds and lints it
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nseed = time.time()\n")
        findings = collect(str(tmp_path))
        assert [(f.path, f.rule) for f in findings] == [
            ("repro/core/bad.py", "wallclock")
        ]

    def test_cli_launcher(self):
        out = subprocess.run(
            [sys.executable, "tools/lint_repro.py"],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "0 new finding(s)" in out.stdout

    def test_cli_update_baseline_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        out = subprocess.run(
            [
                sys.executable,
                "tools/lint_repro.py",
                "--update-baseline",
                "--baseline",
                str(target),
            ],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        written = json.loads(target.read_text())
        assert written["version"] == 1
        # regenerated baseline matches the shipped one
        shipped = json.loads(
            open(default_baseline_path(), encoding="utf-8").read()
        )
        assert written["allow"] == shipped["allow"]
