"""Tier-1 guard for the live telemetry overhead contract.

A lighter twin of ``benchmarks/bench_live_overhead.py``: the engine's
live-plane and flight-recorder hooks ship always-compiled (heartbeats,
phase emits, ring appends), so the no-op fast path — a ``get_live()`` /
``get_flightrec()`` global miss — must stay under 2% of a step and the
enabled plane under 10%.  Timing tests on shared CI boxes flake under
load, so a measurement over budget is retried up to twice — a real
regression fails all three attempts.
"""

from repro.obs.overhead import measure_live_overhead

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10
ATTEMPTS = 3


def test_live_overhead_within_budget():
    report = None
    for _ in range(ATTEMPTS):
        report = measure_live_overhead()
        if (
            report.disabled_overhead < DISABLED_BUDGET
            and report.enabled_overhead < ENABLED_BUDGET
        ):
            break
    assert report.ops_per_step > 5, report.render()
    assert report.samples_per_step > 0, report.render()
    assert report.disabled_overhead < DISABLED_BUDGET, report.render()
    assert report.enabled_overhead < ENABLED_BUDGET, report.render()
    # sanity on the model's ingredients
    assert 0 < report.noop_call_s < report.emit_call_s
    assert report.step_disabled_s > 0
