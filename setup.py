"""Legacy setup shim.

This environment has setuptools without the ``wheel`` package, so PEP 660
editable installs fail with "invalid command 'bdist_wheel'".  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
