"""Memory-centric tiling: train a layer too big for fragmented memory.

The Fig. 6b scenario as a runnable demo.  We pre-fragment a simulated GPU
memory into 2 GiB chunks, show that the dense (hd, 4hd) linear of a large
transformer cannot even be allocated, then train the *same operator* as a
TiledLinear — numerically identical, but each tile allocates and computes
independently, so it fits.  No model parallelism, no code refactoring: the
layer is swapped in place (Sec. 5.1.3).

Run:  python examples/tiled_giant_layer.py
"""

import numpy as np

from repro.core.tiling import TiledLinear, split_sizes
from repro.hardware.memory import AllocationError, FirstFitAllocator
from repro.nn.layers import Linear
from repro.optim import Adam
from repro.utils import format_bytes
from repro.utils.rng import seeded_rng
from repro.utils.units import GIB


def allocation_story(hd: int = 16384, tiles: int = 4) -> None:
    gpu = FirstFitAllocator(32 * GIB, alignment=256)
    gpu.pre_fragment(2 * GIB)
    print(
        f"GPU memory: {format_bytes(gpu.capacity, binary=True)},"
        f" pre-fragmented into 2 GiB chunks"
        f" (largest contiguous: {format_bytes(gpu.largest_free_block, binary=True)})"
    )

    dense_bytes = 2 * 2 * hd * 4 * hd  # fused fp16 param+grad of (hd, 4hd)
    print(f"\ndense (hd={hd}, 4hd) param+grad needs {format_bytes(dense_bytes)}:")
    try:
        gpu.malloc(dense_bytes)
        print("  allocated (unexpected!)")
    except AllocationError as e:
        print(
            f"  OOM despite {format_bytes(e.free)} free —"
            f" largest contiguous block is only"
            f" {format_bytes(e.largest_contiguous)}"
        )

    print(f"\nwith memory-centric tiling ({tiles}x{tiles} grid):")
    offsets = []
    for rows in split_sizes(4 * hd, tiles):
        for cols in split_sizes(hd, tiles):
            offsets.append(gpu.malloc(2 * 2 * rows * cols))
            gpu.free(offsets[-1])  # fetched-and-released, one at a time
    print(f"  all {tiles * tiles} tiles allocated sequentially — fits.")


def numerical_story() -> None:
    """Tiny dimensions, same code: tiled == dense through a training step."""
    rng = seeded_rng(0)
    hd = 32
    dense = Linear(hd, 4 * hd, rng=seeded_rng(1))
    tiled = TiledLinear.from_linear(dense, out_tiles=4, in_tiles=4)

    x = rng.standard_normal((8, hd)).astype(np.float32)
    target = rng.standard_normal((8, 4 * hd)).astype(np.float32)

    def mse_step(layer, opt):
        y = layer(x)
        grad = 2 * (y - target) / y.size
        layer.backward(grad.astype(np.float32))
        opt.step()
        opt.zero_grad()
        return float(((y - target) ** 2).mean())

    opt_d = Adam(dense.parameters(), lr=1e-2)
    opt_t = Adam(tiled.parameters(), lr=1e-2)
    print("\nstep | dense MSE | tiled MSE | max |w_dense - w_tiled|")
    for step in range(5):
        ld = mse_step(dense, opt_d)
        lt = mse_step(tiled, opt_t)
        w_tiled, _ = tiled.to_full_weight()
        drift = float(np.abs(w_tiled - dense.weight.data).max())
        print(f"{step:4d} | {ld:9.6f} | {lt:9.6f} | {drift:.2e}")
    assert abs(ld - lt) < 1e-6


if __name__ == "__main__":
    allocation_story()
    numerical_story()
