"""Masked-LM pretraining of a BERT-style encoder under ZeRO-Infinity.

The ease-of-use claim (Sec. 5.3) is that *any* architecture trains without
engine changes.  The other examples use the GPT decoder; this one builds a
bidirectional encoder with a masked-LM objective — different attention
pattern, different loss, three-tensor batches — and hands it to the same
engine with the same one-liner.

Run:  python examples/encoder_mlm.py
"""

import numpy as np

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
)
from repro.nn.encoder import BertStyleEncoder, EncoderConfig
from repro.utils.rng import seeded_rng, spawn_rngs
from repro.workloads import MarkovCorpus

WORLD = 4
VOCAB = 96
SEQ = 16


def main() -> None:
    enc_cfg = EncoderConfig(
        num_layers=2,
        hidden_dim=48,
        num_heads=4,
        vocab_size=VOCAB,
        max_seq=SEQ,
        mask_token=0,
    )
    zero_cfg = ZeroConfig(
        world_size=WORLD,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
        loss_scale=1.0,
    )
    corpus = MarkovCorpus(VOCAB, seed=11)
    rngs = spawn_rngs(5, WORLD)

    def mlm_batches():
        out = []
        for r in rngs:
            ids, _ = corpus.sample(r, bsz=4, seq=SEQ)
            ids = np.maximum(ids, 1)  # keep token 0 reserved for [MASK]
            out.append(
                BertStyleEncoder.apply_masking(ids, r, mask_token=0, mask_prob=0.2)
            )
        return out

    with ZeroInfinityEngine(
        zero_cfg,
        model_factory=lambda: BertStyleEncoder(enc_cfg, rng=seeded_rng(0)),
        lr=3e-3,
    ) as engine:
        print(
            f"encoder: {engine.model.num_parameters():,} params,"
            f" bidirectional attention, MLM loss, {WORLD} ranks, NVMe offload"
        )
        for step in range(10):
            result = engine.train_step(mlm_batches())
            print(f"step {step:2d}  masked-LM loss {result.mean_loss:.4f}")
        rep = engine.report()
        print(
            f"\nsame engine, different architecture — zero engine changes."
            f"\nNVMe traffic: {rep.nvme_read_bytes / 1e6:.1f} MB read,"
            f" {rep.nvme_write_bytes / 1e6:.1f} MB written;"
            f" {rep.gathers} gathers"
        )


if __name__ == "__main__":
    main()
