"""Democratizing large-model fine-tuning on one DGX-2 node (paper Sec. 8.4).

The paper's accessibility story: a single 16-GPU DGX-2 has enough *compute*
to fine-tune GPT-3-class models, but classic data parallelism caps out at
~1.4B parameters of *memory*.  This example:

1. solves, per Table 2 strategy, the largest model one node can hold — the
   Fig. 6a progression ending at 1T with NVMe offload;
2. checks specifically that a GPT-3-sized model (175B) fits under
   ZeRO-Infinity and nothing else on the list;
3. actually runs the fine-tuning loop — functionally, at reduced dimensions
   — with the exact configuration class a 1T run would use: ZeRO-3
   partitioning over 16 ranks, NVMe-resident parameters and optimizer
   state, CPU-offloaded activation checkpoints, tied embeddings, and no
   model parallelism or code refactoring.

Run:  python examples/finetune_single_node.py
"""

import numpy as np

from repro import (
    GPTModel,
    OffloadConfig,
    OffloadDevice,
    Strategy,
    TransformerConfig,
    ZeroConfig,
    ZeroInfinityEngine,
    dgx2_cluster,
    max_model_size,
)
from repro.core.scale import model_fits
from repro.utils import Table, format_count
from repro.utils.rng import seeded_rng, spawn_rngs


def capacity_survey() -> None:
    cluster = dgx2_cluster(1)
    table = Table(
        ["strategy", "max model on one DGX-2", "GPT-3 (175B) fits?"],
        title="What can a single 16-GPU node fine-tune?",
    )
    for strategy in Strategy:
        kw = {"mp_degree": 4} if strategy is Strategy.THREED else {}
        if strategy in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME):
            kw["tile_factor"] = 16
        r = max_model_size(strategy, cluster, bsz_per_gpu=1, **kw)
        fits_gpt3 = model_fits(
            strategy, cluster, int(175e9), bsz_per_gpu=1, **kw
        ).fits
        table.add_row(
            [str(strategy), format_count(r.max_params), "yes" if fits_gpt3 else "no"]
        )
    print(table.render())
    print()


def finetune() -> None:
    # The 1T configuration of Table 1 (1 node, NVMe/NVMe), scaled down in
    # hidden size and depth so the functional engine runs in seconds.  The
    # *code path* is identical at any scale — that is the ease-of-use claim.
    world = 16
    model_cfg = TransformerConfig(
        num_layers=2,
        hidden_dim=64,
        num_heads=4,
        vocab_size=256,
        max_seq=32,
        tie_embeddings=True,
        activation_checkpointing=True,
    )
    zero_cfg = ZeroConfig(
        world_size=world,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
            optimizer_chunk_numel=1024,
        ),
        loss_scale=1.0,
    )
    with ZeroInfinityEngine(
        zero_cfg,
        model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(1)),
        lr=2e-3,
    ) as engine:
        # "pretrained" checkpoint = current weights; fine-tune on a small
        # task distribution (shifted token statistics).
        rngs = spawn_rngs(7, world)
        print(f"fine-tuning {engine.model.num_parameters():,} params on {world} ranks")
        eval_rng = seeded_rng(99)
        eval_ids = eval_rng.integers(0, 64, size=(4, 16))  # task uses ids < 64
        eval_tgt = eval_rng.integers(0, 64, size=(4, 16))
        before = engine.evaluate(eval_ids, eval_tgt)
        for step in range(8):
            batches = [
                (r.integers(0, 64, size=(2, 16)), r.integers(0, 64, size=(2, 16)))
                for r in rngs
            ]
            result = engine.train_step(batches)
            print(f"step {step}  task loss {result.mean_loss:.4f}")
        after = engine.evaluate(eval_ids, eval_tgt)
        print(f"\nheld-out task loss: {before:.4f} -> {after:.4f}")
        assert after < before


if __name__ == "__main__":
    capacity_survey()
    finetune()
