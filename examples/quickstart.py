"""Quickstart: train a GPT model with ZeRO-Infinity on simulated hardware.

Builds a small GPT-style transformer, wraps it in the ZeRO-Infinity engine
with full NVMe offload (parameters, gradients and optimizer state all live
in a file-backed store between uses, exactly like the real system's SSD
spool), trains it on synthetic data across 4 simulated data-parallel ranks,
and prints the loss curve plus a data-movement report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GPTModel,
    OffloadConfig,
    OffloadDevice,
    TransformerConfig,
    ZeroConfig,
    ZeroInfinityEngine,
)
from repro.utils import format_bytes
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 4  # simulated data-parallel ranks
VOCAB = 128
SEQ = 16
STEPS = 10


def main() -> None:
    model_cfg = TransformerConfig(
        num_layers=2,
        hidden_dim=64,
        num_heads=4,
        vocab_size=VOCAB,
        max_seq=SEQ,
        tie_embeddings=True,  # the classic external parameter
        activation_checkpointing=True,
    )
    zero_cfg = ZeroConfig(
        world_size=WORLD,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
        prefetch_depth=2,
        loss_scale=1.0,
    )

    # model_factory + ZeRO stage 3 => parameters are partitioned as they
    # are constructed (Sec. 7.2); the full model never materialises.
    with ZeroInfinityEngine(
        zero_cfg,
        model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0)),
        lr=3e-3,
    ) as engine:
        print(
            f"model: {engine.model.num_parameters():,} parameters,"
            f" partitioned over {WORLD} ranks, spooled to"
            f" {engine.offload.store.directory}"
        )
        data_rngs = spawn_rngs(seed=42, n=WORLD)
        fixed_batches = [
            (
                r.integers(0, VOCAB, size=(2, SEQ)),
                r.integers(0, VOCAB, size=(2, SEQ)),
            )
            for r in data_rngs
        ]
        for step in range(STEPS):
            result = engine.train_step(fixed_batches)
            print(f"step {step:2d}  loss {result.mean_loss:.4f}")

        report = engine.report()
        print("\n--- data movement ---")
        print(f"NVMe read:    {format_bytes(report.nvme_read_bytes)}")
        print(f"NVMe written: {format_bytes(report.nvme_write_bytes)}")
        print(f"parameter gathers/releases: {report.gathers}/{report.releases}")
        print(
            f"prefetch hits: {report.prefetch_hits}"
            f" (misses: {report.prefetch_misses})"
        )
        print(f"pinned staging peak: {format_bytes(report.pinned_peak_bytes)}")
        for op, nbytes in sorted(report.comm_bytes_by_op.items()):
            print(f"collective {op:15s} {format_bytes(nbytes)}")


if __name__ == "__main__":
    main()
