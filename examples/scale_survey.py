"""Scale and throughput survey across cluster sizes and strategies.

Combines the capacity solver (Sec. 3 memory model) with the performance
simulator (Sec. 6 data-movement model) into the planning table an
infrastructure team would actually want: for each cluster size, what is
the largest model each strategy trains, and what throughput does
ZeRO-Infinity sustain on representative Table 1 workloads?

Run:  python examples/scale_survey.py
"""

from repro import Strategy, dgx2_cluster, max_model_size
from repro.analytics.model_zoo import TABLE1_CONFIGS
from repro.core.config import OffloadDevice
from repro.sim import SimWorkload, StepSimulator
from repro.sim.step_model import policy_from_config
from repro.utils import Table, format_count

CLUSTERS = (1, 4, 16, 32)
STRATEGIES = [
    Strategy.DATA_PARALLEL,
    Strategy.ZERO_3,
    Strategy.ZERO_INF_CPU,
    Strategy.ZERO_INF_NVME,
]


def capacity_by_cluster() -> None:
    t = Table(
        ["nodes", "GPUs"] + [str(s) for s in STRATEGIES],
        title="Max trainable model size by strategy and cluster",
    )
    for nodes in CLUSTERS:
        cluster = dgx2_cluster(nodes)
        row = [nodes, cluster.num_gpus]
        for s in STRATEGIES:
            kw = (
                {"tile_factor": 16}
                if s in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME)
                else {}
            )
            row.append(format_count(max_model_size(s, cluster, bsz_per_gpu=1, **kw).max_params))
        t.add_row(row)
    print(t.render())
    print()


def throughput_survey() -> None:
    t = Table(
        ["workload", "nodes", "placement", "TFlops/GPU", "step time", "bottleneck"],
        title="Simulated ZeRO-Infinity throughput (Table 1 workloads)",
        float_fmt="{:.1f}",
    )
    for name in ("10B-1node", "100B-1node", "1T-1node", "1T-32node", "10T-32node"):
        cfg = TABLE1_CONFIGS[name]
        accum = max(1, round(4096 / cfg.total_batch))
        wl = SimWorkload.from_config(cfg, grad_accumulation_steps=accum)
        sim = StepSimulator(
            dgx2_cluster(cfg.num_nodes), wl, policy_from_config(cfg)
        )
        b = sim.simulate()
        streams = {
            "compute": b.compute_time,
            "gpu-gpu": b.gg_time,
            "pcie": b.cg_time,
            "nvme": b.nc_time,
            "cpu": b.cpu_time,
        }
        bottleneck = max(streams, key=streams.get)
        t.add_row(
            [
                name,
                cfg.num_nodes,
                f"p:{cfg.param_device.value}/o:{cfg.optimizer_device.value}",
                b.tflops_per_gpu,
                f"{b.total_time:.1f}s",
                bottleneck,
            ]
        )
    print(t.render())


if __name__ == "__main__":
    capacity_by_cluster()
    throughput_survey()
