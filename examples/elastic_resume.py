"""Elastic training: checkpoint on N ranks, resume on M.

A fine-tuning job starts on a small allocation, checkpoints, and resumes on
a bigger one (or a degraded one after a node failure).  The sharded
checkpoint written by ``save_checkpoint`` is tied to its world size; the
resharder converts it — concatenating every parameter's fp16 shards and
fp32 optimizer shards, stripping the old padding, and re-splitting for the
new layout — so the run continues bit-exactly where it left off.

Run:  python examples/elastic_resume.py
"""

import tempfile

import numpy as np

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.checkpoint_io import reshard_checkpoint
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs
from repro.workloads import MarkovCorpus, per_rank_batches

VOCAB = 64


def factory():
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=VOCAB, max_seq=16
    )
    return GPTModel(cfg, rng=seeded_rng(9))


def engine_for(world: int) -> ZeroInfinityEngine:
    cfg = ZeroConfig(
        world_size=world,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME, optimizer_device=OffloadDevice.NVME
        ),
        loss_scale=1.0,
    )
    return ZeroInfinityEngine(cfg, model_factory=factory, lr=3e-3)


def main() -> None:
    corpus = MarkovCorpus(VOCAB, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        src, dst = f"{tmp}/world2", f"{tmp}/world8"

        # phase 1: a small 2-rank allocation
        with engine_for(2) as engine:
            data = per_rank_batches(corpus, world_size=2, bsz_per_rank=4, seq=16, seed=1)
            for step in range(5):
                r = engine.train_step(next(data))
                print(f"[world=2] step {step}  loss {r.mean_loss:.4f}")
            save_checkpoint(engine, src)
            frozen = engine.gather_state()

        # reshard 2 -> 8 (every parameter's shards re-split for 8 ranks)
        manifest = reshard_checkpoint(src, dst, new_world_size=8)
        print(
            f"\nresharded checkpoint: world {2} -> {manifest['world_size']},"
            f" {len(manifest['param_names'])} parameters\n"
        )

        # phase 2: resume on an 8-rank allocation
        with engine_for(8) as engine:
            load_checkpoint(engine, dst)
            restored = engine.gather_state()
            drift = max(
                float(np.abs(restored[k] - frozen[k]).max()) for k in frozen
            )
            print(f"[world=8] restored exactly (max weight drift: {drift:.1e})")
            data = per_rank_batches(corpus, world_size=8, bsz_per_rank=1, seq=16, seed=2)
            for step in range(5, 8):
                r = engine.train_step(next(data))
                print(f"[world=8] step {step}  loss {r.mean_loss:.4f}")
        assert drift == 0.0


if __name__ == "__main__":
    main()
