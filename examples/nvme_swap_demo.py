"""The infinity offload engine, piece by piece.

A guided tour of the NVMe substrate the ZeRO-Infinity engine is built on
(Sec. 6.3): asynchronous bulk I/O overlapping compute, the bounded pinned
staging pool that serves terabytes through a fixed budget, and the
double-buffered chunked optimizer streaming of Sec. 5.2.2 — each
demonstrated directly against the file-backed tensor store.

Run:  python examples/nvme_swap_demo.py
"""

import time

import numpy as np

from repro.nvme import AsyncIOEngine, ChunkedSwapper, PinnedBufferPool, TensorStore
from repro.optim.adam import adam_step
from repro.utils import format_bytes
from repro.utils.units import MIB


def async_overlap_demo(store: TensorStore) -> None:
    print("--- 1. asynchronous I/O overlapping compute ---")
    layers = {
        f"layer{i}.weight": np.random.default_rng(i).standard_normal(
            1 << 20
        ).astype(np.float32)
        for i in range(4)
    }
    t0 = time.perf_counter()
    handles = [store.write_async(k, v) for k, v in layers.items()]
    # "compute" proceeds while ~16 MB spool to disk in the background
    acc = 0.0
    for v in layers.values():
        acc += float((v * v).sum())
    for h in handles:
        h.wait()
    t1 = time.perf_counter()
    print(
        f"wrote {format_bytes(store.total_bytes)} async while computing"
        f" (sum of squares = {acc:.3e}) in {1e3 * (t1 - t0):.1f} ms"
    )
    read_back = store.read("layer0.weight")
    assert np.array_equal(read_back, layers["layer0.weight"])
    print("round-trip verified bitwise\n")


def pinned_pool_demo(store: TensorStore) -> None:
    print("--- 2. bounded pinned staging pool ---")
    pool = PinnedBufferPool(budget_bytes=2 * MIB, alignment=4096)
    moved = 0
    for i in range(16):  # stage 16 MB through a 2 MB budget
        with pool.acquire(1 << 18, np.float32) as buf:
            buf.array[:] = i
            store.write(f"staged{i}", buf.array)
            moved += buf.array.nbytes
    print(
        f"staged {format_bytes(moved)} through a"
        f" {format_bytes(pool.budget_bytes)} pinned budget:"
        f" peak usage {format_bytes(pool.stats.peak_bytes)},"
        f" buffer reuse hits {pool.stats.reuse_hits}/{pool.stats.acquisitions}"
    )
    assert pool.stats.peak_bytes <= pool.budget_bytes
    print()


def chunked_optimizer_demo(store: TensorStore) -> None:
    print("--- 3. chunked NVMe optimizer step (Sec. 5.2.2) ---")
    n = 1 << 20
    rng = np.random.default_rng(0)
    master = rng.standard_normal(n).astype(np.float32)
    grad = rng.standard_normal(n).astype(np.float32)
    for key, arr in [
        ("opt.master", master),
        ("opt.exp_avg", np.zeros(n, np.float32)),
        ("opt.exp_avg_sq", np.zeros(n, np.float32)),
    ]:
        store.write(key, arr)

    # reference update, fully in memory
    ref_master = master.copy()
    ref_m, ref_v = np.zeros(n, np.float32), np.zeros(n, np.float32)
    adam_step(ref_master, grad, ref_m, ref_v, step=1, lr=1e-3)

    # streamed update: state never resident beyond ~2 chunks per buffer
    pool = PinnedBufferPool(budget_bytes=8 * MIB, alignment=4096)
    swapper = ChunkedSwapper(store, chunk_numel=1 << 16, pool=pool)
    state = {"m": np.zeros(0), "v": np.zeros(0), "off": 0}

    # stream momentum and variance first (they only depend on grad), then
    # master (which consumes the updated moments chunk-aligned from disk)
    def update_m(chunk):
        off = update_m.off
        g = grad[off : off + chunk.size]
        chunk *= 0.9
        chunk += 0.1 * g
        update_m.off += chunk.size
        return chunk

    update_m.off = 0

    def update_v(chunk):
        off = update_v.off
        g = grad[off : off + chunk.size]
        chunk *= 0.999
        chunk += 0.001 * g * g
        update_v.off += chunk.size
        return chunk

    update_v.off = 0
    swapper.apply("opt.exp_avg", update_m)
    swapper.apply("opt.exp_avg_sq", update_v)

    m_full = store.read("opt.exp_avg")
    v_full = store.read("opt.exp_avg_sq")

    def update_master(chunk):
        off = update_master.off
        sl = slice(off, off + chunk.size)
        mhat = m_full[sl] / (1 - 0.9)
        vhat = v_full[sl] / (1 - 0.999)
        chunk -= 1e-3 * mhat / (np.sqrt(vhat) + 1e-8)
        update_master.off += chunk.size
        return chunk

    update_master.off = 0
    swapper.apply("opt.master", update_master)

    streamed = store.read("opt.master")
    err = float(np.abs(streamed - ref_master).max())
    print(
        f"streamed Adam over {format_bytes(3 * 4 * n)} of state in"
        f" {n // (1 << 16)} chunks; max deviation from in-memory update:"
        f" {err:.2e}"
    )
    assert err < 1e-6


if __name__ == "__main__":
    with TensorStore() as store:
        async_overlap_demo(store)
        pinned_pool_demo(store)
        chunked_optimizer_demo(store)
