"""Figure 4, narrated by the real engine.

The paper's Fig. 4 snapshot: "ZeRO-Infinity training a model with two
layers on four data parallel ranks. ... Partitioned parameters are moved
from slow memory to GPU and then collected to form the full layer. After
gradients are computed, they are aggregated, repartitioned, and then
offloaded to slow memory."

This example builds exactly that configuration — two transformer layers,
four ranks, NVMe-resident parameters — instruments the partitioner and
coordinator, runs one training step, and prints the observed event
timeline for the backward pass of layer 0 (the pass the figure depicts).

Run:  python examples/fig4_walkthrough.py
"""

from repro.core import (
    OffloadConfig,
    OffloadDevice,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
)
from repro.nn import GPTModel, TransformerConfig
from repro.utils.rng import seeded_rng, spawn_rngs

WORLD = 4


class EventRecorder:
    """Wraps partitioner/coordinator methods to log the data-plane events."""

    def __init__(self, engine: ZeroInfinityEngine) -> None:
        self.events: list[str] = []
        self.engine = engine
        names = {
            p.unique_id: name for name, p in engine.model.named_parameters()
        }
        part = engine.partitioner
        coord = engine.coordinator
        offload = engine.offload

        orig_gather = part.gather

        def gather(param):
            if param.zero_meta is not None and param.data.size == 0:
                self.events.append(
                    f"fetch+allgather  {names.get(param.unique_id, '?'):28s}"
                    f" ({param.full_numel} elems from {WORLD} shards)"
                )
            return orig_gather(param)

        part.gather = gather  # type: ignore[method-assign]

        orig_release = part.release

        def release(param):
            if param.state.name == "AVAILABLE" and param.zero_meta is not None:
                self.events.append(
                    f"release          {names.get(param.unique_id, '?'):28s}"
                    " (re-partitioned)"
                )
            return orig_release(param)

        part.release = release  # type: ignore[method-assign]

        orig_reduce = coord._reduce_and_stash

        def reduce_and_stash(param, grads):
            self.events.append(
                f"reduce-scatter   {names.get(param.unique_id, '?'):28s}"
                f" -> {WORLD} grad shards -> "
                f"{self.engine.config.offload.grad_device.value}"
            )
            return orig_reduce(param, grads)

        coord._reduce_and_stash = reduce_and_stash  # type: ignore[method-assign]

        orig_prefetch = offload.prefetch

        def prefetch(key, *, rank):
            started = orig_prefetch(key, rank=rank)
            if started:
                self.events.append(f"nc-prefetch      {key} (async NVMe read)")
            return started

        offload.prefetch = prefetch  # type: ignore[method-assign]


def main() -> None:
    cfg = TransformerConfig(
        num_layers=2, hidden_dim=32, num_heads=4, vocab_size=64, max_seq=8
    )
    zcfg = ZeroConfig(
        world_size=WORLD,
        stage=ZeroStage.PARAMETERS,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
        loss_scale=1.0,
    )
    with ZeroInfinityEngine(
        zcfg, model_factory=lambda: GPTModel(cfg, rng=seeded_rng(0)), lr=1e-3
    ) as engine:
        rngs = spawn_rngs(1, WORLD)
        batches = [
            (r.integers(0, 64, (1, 8)), r.integers(0, 64, (1, 8))) for r in rngs
        ]
        engine.train_step(batches)  # records the trace; prefetching arms
        rec = EventRecorder(engine)
        engine.train_step(batches)

        print("Fig. 4 configuration: 2 layers, 4 DP ranks, NVMe offload\n")
        print("event timeline for rank 0's backward through layer 0")
        print("(the slice of the step Fig. 4 illustrates):\n")
        in_bwd0 = False
        shown = 0
        for ev in rec.events:
            if "block0" in ev and ("fetch" in ev or "prefetch" in ev):
                in_bwd0 = True
            if in_bwd0 and shown < 14:
                print("  " + ev)
                shown += 1
        print(
            f"\n(total events in the step: {len(rec.events)} —"
            " every layer repeats this fetch/compute/release/reduce cycle)"
        )


if __name__ == "__main__":
    main()
