#!/usr/bin/env python
"""Static SPMD schedule gate: prove the matrix before anything launches.

Runs the full ``repro check-static`` matrix — stage {2,3} x world
{1,2,4} x {loop,mp} — through the symbolic extractor and model checker,
folds in the repo-wide lint pass, and fails on any finding::

    python tools/static_gate.py                  # verify, exit 1 on findings
    python tools/static_gate.py --budget 30      # also fail past the wall budget
    python tools/static_gate.py --report PATH    # persist the rendered table

The gate is tier-1: it must stay under the wall budget (default 30 s) so
it can run on every change, and it must stay finding-free — a
static-collective-divergence or static-deadlock here means a code change
broke the SPMD schedule before any multiprocess test had a chance to
hang on it.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Wall-clock budget (seconds) for the whole matrix plus lint.
DEFAULT_BUDGET_S = 30.0


def run_gate(budget_s: float, report_path: str | None, lint: bool) -> int:
    from repro.check.static import run_static_check

    report = run_static_check(lint=lint)
    rendered = report.render()
    print(rendered)
    if report_path:
        with open(report_path, "w", encoding="utf-8") as f:
            f.write(rendered + "\n")
        print(f"wrote {report_path}")
    if not report.ok:
        print(
            f"static gate: FAIL ({len(report.findings)} schedule finding(s),"
            f" {len(report.lint_findings)} lint finding(s))"
        )
        return 1
    if budget_s and report.wall_s > budget_s:
        print(
            f"static gate: FAIL (wall {report.wall_s:.1f}s exceeds the"
            f" {budget_s:.0f}s budget; the gate must stay cheap enough to"
            " run on every change)"
        )
        return 1
    print("static gate: OK (schedule proved, lint clean)")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="wall-clock budget in seconds (0 disables the budget check)",
    )
    ap.add_argument(
        "--report",
        default=None,
        help="also write the rendered table to this path",
    )
    ap.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the repo-wide lint pass (schedule verification only)",
    )
    args = ap.parse_args(argv)
    return run_gate(args.budget, args.report, lint=not args.no_lint)


if __name__ == "__main__":
    raise SystemExit(main())
