#!/usr/bin/env python
"""Repo lint CLI: AST checks for repro invariants.

Thin launcher around :mod:`repro.check.lint` so the checks run without an
installed package::

    python tools/lint_repro.py                 # lint src/ against the baseline
    python tools/lint_repro.py --show-all      # include baseline-absorbed debt
    python tools/lint_repro.py --update-baseline

Exit status is non-zero when findings exceed ``tools/lint_baseline.json``.
Suppress a single line with a ``# lint: allow-<rule>`` comment.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.check.lint import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
