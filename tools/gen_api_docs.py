#!/usr/bin/env python
"""Generate docs/api.md: the public API index.

Walks every ``repro`` subpackage, lists the names its ``__init__`` exports
(``__all__``), and records each object's one-line summary from its
docstring.  ``tests/test_api_docs.py`` regenerates the document and fails
when it drifts from the committed copy, so the reference stays current.

Usage:  python tools/gen_api_docs.py [--check]
"""

from __future__ import annotations

import importlib
import inspect
import os
import sys

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.hardware",
    "repro.comm",
    "repro.nvme",
    "repro.nn",
    "repro.optim",
    "repro.core",
    "repro.analytics",
    "repro.baselines",
    "repro.sim",
    "repro.workloads",
    "repro.obs",
    "repro.check",
    "repro.check.static",
    "repro.faults",
    "repro.utils",
]

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "docs", "api.md")


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.splitlines()[0].strip() if doc else ""
    return line


def render() -> str:
    lines = [
        "# API reference (generated)",
        "",
        "Regenerate with `python tools/gen_api_docs.py`; the test suite",
        "fails if this file drifts from the code.",
        "",
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        exported = list(getattr(pkg, "__all__", []))
        lines.append(f"## `{pkg_name}`")
        lines.append("")
        summary = first_line(pkg)
        if summary:
            lines.append(summary)
            lines.append("")
        if not exported:
            lines.append("(no public exports)")
            lines.append("")
            continue
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        for name in exported:
            if name.startswith("__"):
                continue
            obj = getattr(pkg, name, None)
            if obj is None:
                kind, summary = "constant", ""
            elif inspect.isclass(obj):
                kind, summary = "class", first_line(obj)
            elif inspect.isfunction(obj):
                kind, summary = "function", first_line(obj)
            elif inspect.ismodule(obj):
                kind, summary = "module", first_line(obj)
            else:
                kind, summary = type(obj).__name__, ""
            summary = summary.replace("|", "\\|")
            lines.append(f"| `{name}` | {kind} | {summary} |")
        lines.append("")
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    text = render()
    out = os.path.abspath(OUT_PATH)
    if "--check" in argv:
        if not os.path.exists(out):
            print("docs/api.md missing; run tools/gen_api_docs.py", file=sys.stderr)
            return 1
        with open(out) as f:
            if f.read() != text:
                print("docs/api.md is stale; run tools/gen_api_docs.py", file=sys.stderr)
                return 1
        return 0
    with open(out, "w") as f:
        f.write(text)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
