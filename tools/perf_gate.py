#!/usr/bin/env python
"""Performance regression gate over the committed ``BENCH_*.json`` baselines.

Re-measures the overhead contracts and compares the result against the
machine-readable baselines committed at the repo root::

    python tools/perf_gate.py            # measure, compare, exit 1 on drift
    python tools/perf_gate.py --update   # rewrite the baselines instead
    python tools/perf_gate.py --skip-memscope   # perfscope gate only

Gated metrics and tolerances (timing on shared boxes is noisy, so the
bands are deliberately wide — the gate catches order-of-magnitude rot,
not percent-level wobble):

* ``steps_per_s``       — must stay >= ``STEPS_MIN_RATIO`` x baseline;
* ``disabled_overhead`` — must stay under the budget recorded in the
  baseline file (the always-on hooks contract);
* ``enabled_overhead``  — same, against ``enabled_budget``;
* ``stall_fraction``    — must stay within ``STALL_ABS_TOL`` (absolute)
  of the baseline for the fixed bench workload;
* ``tail_reduction``    — the pipelined optimizer must keep cutting the
  ``optimizer_io_tail`` stall by at least the committed target fraction
  (``BENCH_optpipe.json``; a floor, not a drift band).

``benchmarks/bench_perf_gate.py`` runs the same comparison inside the
bench suite and persists the table under ``benchmarks/reports/``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Throughput may degrade to this fraction of baseline before failing.
STEPS_MIN_RATIO = 0.4
#: Absolute stall-fraction drift allowed on the fixed bench workload.
STALL_ABS_TOL = 0.25


def _load(path: str) -> dict | None:
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def measure_perfscope() -> dict:
    from repro.obs.overhead import measure_perfscope_overhead

    r = measure_perfscope_overhead()
    return {
        "step_disabled_s": r.step_disabled_s,
        "step_enabled_s": r.step_enabled_s,
        "steps_per_s": r.steps_per_s,
        "spans_per_step": r.spans_per_step,
        "stall_ops_per_step": r.stall_ops_per_step,
        "noop_call_s": r.noop_call_s,
        "stall_call_s": r.stall_call_s,
        "ledger_build_s": r.ledger_build_s,
        "stall_fraction": r.stall_fraction,
        "overlap_fraction": r.overlap_fraction,
        "disabled_overhead": r.disabled_overhead,
        "enabled_overhead": r.enabled_overhead,
        "disabled_budget": 0.02,
        "enabled_budget": 0.10,
    }


def measure_memscope() -> dict:
    from repro.obs.overhead import measure_memscope_overhead

    r = measure_memscope_overhead()
    return {
        "step_disabled_s": r.step_disabled_s,
        "step_enabled_s": r.step_enabled_s,
        "ops_per_step": r.ops_per_step,
        "noop_call_s": r.noop_call_s,
        "op_call_s": r.op_call_s,
        "disabled_overhead": r.disabled_overhead,
        "enabled_overhead": r.enabled_overhead,
        "disabled_budget": 0.02,
        "enabled_budget": 0.10,
    }


def measure_livetel() -> dict:
    from repro.obs.overhead import measure_live_overhead

    r = measure_live_overhead()
    return {
        "step_disabled_s": r.step_disabled_s,
        "step_enabled_s": r.step_enabled_s,
        "steps_per_s": r.steps_per_s,
        "ops_per_step": r.ops_per_step,
        "samples_per_step": r.samples_per_step,
        "noop_call_s": r.noop_call_s,
        "emit_call_s": r.emit_call_s,
        "disabled_overhead": r.disabled_overhead,
        "enabled_overhead": r.enabled_overhead,
        "disabled_budget": 0.02,
        "enabled_budget": 0.10,
    }


def measure_mp() -> dict:
    from repro.workloads.calibrate import measure_mp_speedup

    return measure_mp_speedup()


def measure_optpipe() -> dict:
    from repro.workloads.calibrate import measure_opt_pipeline

    return measure_opt_pipeline()


def gate_rows(name: str, baseline: dict, measured: dict) -> list[tuple]:
    """(metric, baseline, measured, tolerance description, ok) rows."""
    rows: list[tuple] = []

    base_steps = baseline.get("steps_per_s") or (
        1.0 / baseline["step_disabled_s"] if baseline.get("step_disabled_s") else None
    )
    meas_steps = measured.get("steps_per_s") or (
        1.0 / measured["step_disabled_s"] if measured.get("step_disabled_s") else None
    )
    if base_steps and meas_steps:
        ok = meas_steps >= STEPS_MIN_RATIO * base_steps
        rows.append(
            (
                f"{name}.steps_per_s",
                f"{base_steps:.2f}",
                f"{meas_steps:.2f}",
                f">= {STEPS_MIN_RATIO:g}x baseline",
                ok,
            )
        )

    for key in ("disabled_overhead", "enabled_overhead"):
        budget = baseline.get(key.replace("overhead", "budget"))
        if budget is None or key not in measured:
            continue
        ok = measured[key] < budget
        rows.append(
            (
                f"{name}.{key}",
                f"{baseline.get(key, float('nan')):.4f}",
                f"{measured[key]:.4f}",
                f"< budget {budget:g}",
                ok,
            )
        )

    if "tail_reduction" in baseline and "tail_reduction" in measured:
        # the optimizer-pipeline contract is a floor, not a drift band:
        # the pipelined schedule must keep cutting the I/O tail by at
        # least the committed target fraction
        target = baseline.get("target_reduction", 0.30)
        ok = measured["tail_reduction"] >= target
        rows.append(
            (
                f"{name}.tail_reduction",
                f"{baseline['tail_reduction']:.3f}",
                f"{measured['tail_reduction']:.3f}",
                f">= target {target:g}",
                ok,
            )
        )

    if "stall_fraction" in baseline and "stall_fraction" in measured:
        drift = abs(measured["stall_fraction"] - baseline["stall_fraction"])
        ok = drift <= STALL_ABS_TOL
        rows.append(
            (
                f"{name}.stall_fraction",
                f"{baseline['stall_fraction']:.3f}",
                f"{measured['stall_fraction']:.3f}",
                f"|drift| <= {STALL_ABS_TOL:g}",
                ok,
            )
        )
    return rows


def render_rows(rows: list[tuple]) -> str:
    from repro.utils.tables import Table

    t = Table(
        ["metric", "baseline", "measured", "tolerance", "status"],
        title="Perf gate (committed BENCH_*.json vs this machine)",
    )
    for metric, base, meas, tol, ok in rows:
        t.add_row([metric, base, meas, tol, "ok" if ok else "REGRESSION"])
    return t.render()


def run_gate(
    *, skip_memscope: bool = False, skip_mp: bool = False, update: bool = False
) -> int:
    targets = [
        ("perfscope", "BENCH_perfscope.json", measure_perfscope),
        ("livetel", "BENCH_livetel.json", measure_livetel),
        ("optpipe", "BENCH_optpipe.json", measure_optpipe),
    ]
    if not skip_memscope:
        targets.append(("memscope", "BENCH_memscope.json", measure_memscope))
    if not skip_mp:
        targets.append(("mp", "BENCH_mp.json", measure_mp))

    rows: list[tuple] = []
    missing: list[str] = []
    for name, fname, measure in targets:
        path = os.path.join(REPO_ROOT, fname)
        measured = measure()
        if update:
            with open(path, "w") as f:
                json.dump(measured, f, indent=2)
                f.write("\n")
            print(f"updated {fname}")
            continue
        baseline = _load(path)
        if baseline is None:
            missing.append(fname)
            continue
        rows.extend(gate_rows(name, baseline, measured))

    if update:
        return 0
    print(render_rows(rows))
    for fname in missing:
        print(f"note: no committed {fname} — run with --update to create it")
    failures = [r for r in rows if not r[-1]]
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) out of tolerance")
        return 1
    print(f"\nok: {len(rows)} metric(s) within tolerance")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--update", action="store_true",
        help="rewrite the BENCH_*.json baselines from a fresh measurement",
    )
    ap.add_argument(
        "--skip-memscope", action="store_true",
        help="gate only the perfscope baseline",
    )
    ap.add_argument(
        "--skip-mp", action="store_true",
        help="skip the multiprocessing-backend throughput baseline",
    )
    args = ap.parse_args(argv)
    return run_gate(
        skip_memscope=args.skip_memscope,
        skip_mp=args.skip_mp,
        update=args.update,
    )


if __name__ == "__main__":
    raise SystemExit(main())
